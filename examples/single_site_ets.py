#!/usr/bin/env python
"""Single-site epsilon-transactions: Tables 2 and 3 in motion.

No replication here — just one site running concurrent ETs under
three divergence-control disciplines on the same workload:

* classic 2PL (the synchronous baseline the paper relaxes),
* Table 2 (ORDUP): query read locks compatible with everything,
* Table 3 (COMMU): update/update conflicts relaxed to commutativity.

The printout shows what each relaxation buys: fewer blocked
operations, shorter makespan, identical final state — with each
query's imported inconsistency metered against its epsilon budget.

Run:  python examples/single_site_ets.py
"""

from repro.core.divergence import OptimisticDC, TwoPhaseLockingDC
from repro.core.locks import CLASSIC_2PL, COMMU_TABLE, ORDUP_TABLE
from repro.core.operations import IncrementOp, ReadOp
from repro.core.scheduler import LocalScheduler
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.sim.events import Simulator
from repro.storage.kv import KeyValueStore


def run_workload(label, make_dc):
    reset_tid_counter()
    sim = Simulator(seed=3)
    sched = LocalScheduler(
        sim, make_dc(), KeyValueStore({"till": 0, "safe": 0})
    )
    # A burst of deposits against two accounts, with audits midstream.
    for i in range(10):
        key = "till" if i % 2 else "safe"
        sim.schedule_at(
            i * 0.1,
            lambda k=key: sched.submit(UpdateET([IncrementOp(k, 10)])),
        )
    for t in (0.25, 0.55, 0.85):
        sim.schedule_at(
            t,
            lambda: sched.submit(
                QueryET(
                    [ReadOp("till"), ReadOp("safe")],
                    EpsilonSpec(import_limit=2),
                )
            ),
        )
    sim.run()
    queries = [r for r in sched.completed if r.et.is_query]
    makespan = max(r.finish_time for r in sched.completed)
    total = sched.store.get("till") + sched.store.get("safe")
    print(
        "%-12s blocked=%3d  aborted=%2d  makespan=%5.2f  "
        "query errors=%s  total=%d"
        % (
            label,
            sched.wait_count,
            sched.abort_count,
            makespan,
            [q.inconsistency for q in queries],
            total,
        )
    )
    assert total == 100  # no lost updates under any discipline
    return sched.wait_count, makespan


def main() -> None:
    print("10 deposits + 3 epsilon-2 audits, one site, four disciplines:\n")
    classic_waits, classic_span = run_workload(
        "classic 2PL", lambda: TwoPhaseLockingDC(CLASSIC_2PL)
    )
    ordup_waits, ordup_span = run_workload(
        "Table 2", lambda: TwoPhaseLockingDC(ORDUP_TABLE)
    )
    commu_waits, commu_span = run_workload(
        "Table 3", lambda: TwoPhaseLockingDC(COMMU_TABLE)
    )
    run_workload("optimistic", OptimisticDC)
    print()
    print("Each relaxation admits more interleavings:")
    print(
        "  blocking: classic %d >= Table2 %d >= Table3 %d"
        % (classic_waits, ordup_waits, commu_waits)
    )
    assert classic_waits >= ordup_waits >= commu_waits
    assert commu_span <= classic_span


if __name__ == "__main__":
    main()
