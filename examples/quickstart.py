#!/usr/bin/env python
"""Quickstart: a replicated counter under epsilon-serializability.

Three replica sites keep a counter.  Updates are commutative increments
propagated asynchronously (the COMMU method); queries read one replica
and declare how much inconsistency they tolerate.

The program talks to the system through the shared client verb surface
(``write`` / ``increment`` / ``read`` / ``query`` / ``settle`` ...),
which the live runtime's ``LiveClient`` mirrors verb-for-verb — the
same code ports to real sockets by swapping the constructor and adding
``await``.  Failures from either backend share one taxonomy:
``repro.ETError`` with a stable ``code``.

Run:  python examples/quickstart.py
"""

from repro import (
    Client,
    CommutativeOperations,
    EpsilonSpec,
    ETError,
    IncrementOp,
    QueryET,
    ReadOp,
    ReplicatedSystem,
    SystemConfig,
    UniformLatency,
    UpdateET,
)


def main() -> None:
    # A 3-replica system with 1-4 time units of link latency.
    system = ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(
            n_sites=3,
            seed=7,
            latency=UniformLatency(1.0, 4.0),
            initial=(("counter", 0),),
        ),
    )

    # Ten deposits, submitted at different sites over time.  Each
    # commits locally, immediately — propagation happens in the
    # background through stable queues.
    for i in range(10):
        system.submit_at(
            float(i),
            UpdateET([IncrementOp("counter", 10)]),
            "site%d" % (i % 3),
        )

    # A bounded-inconsistency query: it may observe at most 2
    # concurrent updates' worth of error.
    system.submit_at(
        4.5,
        QueryET([ReadOp("counter")], EpsilonSpec(import_limit=2)),
        "site1",
    )

    # A strict (epsilon = 0) query: serializable, may have to wait.
    system.submit_at(
        4.5,
        QueryET([ReadOp("counter")], EpsilonSpec(import_limit=0)),
        "site2",
    )

    quiescence = system.run_to_quiescence()

    print("quiescence reached at t=%.2f" % quiescence)
    print("replicas converged:   %s" % system.converged())
    print("updates are 1SR:      %s" % system.is_one_copy_serializable())
    print()
    for result in system.results:
        if result.et.is_query:
            print(
                "query at %s: read counter=%s  inconsistency=%d "
                "(limit %s)  waited %d times"
                % (
                    result.site,
                    result.values.get("counter"),
                    result.inconsistency,
                    result.et.spec.import_limit,
                    result.waits,
                )
            )

    # The same system through the shared client verb surface.  The live
    # runtime's LiveClient exposes these exact verbs (``await``-ed), so
    # this block ports to real sockets unchanged in structure.
    alice = Client(system, "site0")
    bob = Client(system, "site2")
    alice.increment("counter", 25)  # local commit, async spread
    alice.decrement("counter", 25)
    bob.settle()  # drain propagation to quiescence

    # Both backends raise the shared ETError taxonomy: catch one type,
    # branch on the stable code (UNAVAILABLE / EPSILON_EXCEEDED /
    # ABORTED).  A live replica cut off from its peers would surface
    # here as code == "UNAVAILABLE" instead of a hang.
    try:
        final = bob.read("counter", epsilon=0)  # serializable read
    except ETError as exc:
        print("strict read failed honestly: code=%s (%s)" % (exc.code, exc))
        final = bob.read("counter")  # fall back to an unbounded read
    print()
    print("final counter value at every replica: %s (expected 100)" % final)
    assert final == 100
    assert system.converged()


if __name__ == "__main__":
    main()
