#!/usr/bin/env python
"""Replicated directory service under RITU (paper sections 3.3, 5.4).

Grapevine and Clearinghouse — the paper's examples of asynchronous
directory propagation — map naturally onto RITU: a name binding is a
timestamped blind write ("rebind host -> address"), so replicas can
apply updates in any order and converge by the Thomas write rule, even
across a network partition.

The multiversion variant gives lookups a choice: read the newest
binding (paying inconsistency units if it is unstable) or insist on the
VTNC-visible — serializable — binding for free.

Run:  python examples/directory_service.py
"""

from repro import (
    EpsilonSpec,
    QueryET,
    ReadOp,
    ReplicatedSystem,
    SystemConfig,
    UniformLatency,
    UpdateET,
    WriteOp,
)
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.failures import FailureInjector, PartitionEvent


def main() -> None:
    system = ReplicatedSystem(
        ReadIndependentUpdates(versioning="multiversion"),
        SystemConfig(
            n_sites=4,
            seed=3,
            latency=UniformLatency(1.0, 5.0),
            retry_interval=4.0,
            initial=(("mail.example", "10.0.0.1"),),
        ),
    )
    injector = FailureInjector(
        system.sim, system.network, system.sites,
        on_heal=system.kick_queues,
    )
    # The two coasts lose contact between t=5 and t=35.
    injector.schedule_partition(
        PartitionEvent(
            (("site0", "site1"), ("site2", "site3")), at=5.0, duration=30.0
        )
    )

    # Admins on both sides of the partition rebind names concurrently.
    system.submit_at(
        8.0, UpdateET([WriteOp("mail.example", "10.0.0.2")]), "site0"
    )
    system.submit_at(
        12.0, UpdateET([WriteOp("mail.example", "10.0.0.3")]), "site3"
    )
    system.submit_at(
        15.0, UpdateET([WriteOp("web.example", "10.0.1.9")]), "site2"
    )

    # Lookups during the partition: a relaxed client takes the newest
    # local binding; a strict client insists on a stable one.
    system.submit_at(
        16.0,
        QueryET([ReadOp("mail.example")], EpsilonSpec(import_limit=2)),
        "site1",
    )
    system.submit_at(
        16.0,
        QueryET([ReadOp("mail.example")], EpsilonSpec(import_limit=0)),
        "site2",
    )

    quiescence = system.run_to_quiescence()

    for result in system.results:
        if not result.et.is_query:
            continue
        kind = "strict" if result.et.spec.is_strict else "relaxed"
        print(
            "%s lookup at %s during partition -> %s (error=%d)"
            % (
                kind,
                result.site,
                result.values.get("mail.example"),
                result.inconsistency,
            )
        )

    print()
    print("partition healed; quiescence at t=%.1f" % quiescence)
    print("replicas converged: %s" % system.converged())
    bindings = system.sites["site0"].values()
    print("final bindings: %s" % bindings)
    # Both sides' writes survive where they do not collide; colliding
    # rebinds resolve to one winner everywhere.
    assert system.converged()
    assert bindings["web.example"] == "10.0.1.9"
    assert bindings["mail.example"] in ("10.0.0.2", "10.0.0.3")


if __name__ == "__main__":
    main()
