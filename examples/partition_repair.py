#!/usr/bin/env python
"""Two ways to survive a partition (paper section 5.3).

A warehouse inventory is replicated on two sides of a network split.
Both sides keep taking orders while disconnected.  The example repairs
the divergence twice:

1. **Offline log merging** — the optimistic-partition-handling recipe
   the paper surveys: collect each side's log, merge by commutativity,
   back out what cannot merge (here: a stocktake overwrite colliding
   with the other side's sales).
2. **Online ESR (COMMU)** — the paper's approach: the same workload
   run through replica control with stable queues; after healing,
   replicas converge by themselves, nothing is backed out, and queries
   during the partition had bounded error the whole time.

Run:  python examples/partition_repair.py
"""

from repro import (
    CommutativeOperations,
    DecrementOp,
    IncrementOp,
    ReplicatedSystem,
    SystemConfig,
    UniformLatency,
    UpdateET,
    WriteOp,
)
from repro.replica.merge import LoggedOp, apply_merged, merge_partition_logs
from repro.sim.failures import FailureInjector, PartitionEvent
from repro.storage.kv import KeyValueStore


def offline_merge_repair() -> None:
    print("== 1. Offline repair: merge the partition logs ==")
    # Common ancestor state at the moment the network split.
    ancestor = {"widgets": 100, "gadgets": 50}

    # East coast sold widgets and restocked gadgets...
    east_log = [
        LoggedOp(101, DecrementOp("widgets", 10)),
        LoggedOp(102, IncrementOp("gadgets", 25)),
        LoggedOp(103, DecrementOp("widgets", 5)),
    ]
    # ...west coast sold both, and ran a stocktake that *overwrote* the
    # widget count — a non-commutative operation.
    west_log = [
        LoggedOp(201, DecrementOp("gadgets", 8)),
        LoggedOp(202, WriteOp("widgets", 80)),
    ]

    result = merge_partition_logs(east_log, west_log)
    print("cross-partition conflicts: %s" % result.cross_conflicts)
    print("backed out transactions:   %s" % sorted(result.backed_out))
    store = apply_merged(KeyValueStore(dict(ancestor)), result)
    print("merged state:              %s" % store.as_dict())
    print("merge work:                %d operation pairs examined" %
          result.ops_examined)
    # The stocktake collided with east's widget sales; the merger backed
    # it out (fewer operations to redo than both sales).
    assert result.backed_out == {202}
    print()


def online_esr_repair() -> None:
    print("== 2. Online repair: ESR replica control through the split ==")
    system = ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(
            n_sites=2,
            seed=2,
            latency=UniformLatency(0.5, 2.0),
            retry_interval=3.0,
            initial=(("widgets", 100), ("gadgets", 50)),
        ),
    )
    injector = FailureInjector(
        system.sim, system.network, system.sites,
        on_heal=system.kick_queues,
    )
    injector.schedule_partition(
        PartitionEvent((("site0",), ("site1",)), at=1.0, duration=20.0)
    )
    # The same commutative traffic, submitted on both sides of the
    # split (the stocktake is expressed as a correction delta, the
    # commutative idiom for COMMU-managed data).
    system.submit_at(2.0, UpdateET([DecrementOp("widgets", 10)]), "site0")
    system.submit_at(3.0, UpdateET([IncrementOp("gadgets", 25)]), "site0")
    system.submit_at(4.0, UpdateET([DecrementOp("widgets", 5)]), "site0")
    system.submit_at(5.0, UpdateET([DecrementOp("gadgets", 8)]), "site1")
    system.submit_at(6.0, UpdateET([DecrementOp("widgets", 5)]), "site1")

    quiescence = system.run_to_quiescence()
    print("partition healed at t=21; quiescence at t=%.1f" % quiescence)
    print("replicas converged:        %s" % system.converged())
    print("updates 1SR:               %s" % system.is_one_copy_serializable())
    print("final state everywhere:    %s" % system.sites["site0"].values())
    print("backed out transactions:   none — every update survived")
    assert system.converged()
    assert system.sites["site0"].store.get("widgets") == 80
    assert system.sites["site0"].store.get("gadgets") == 67


def main() -> None:
    offline_merge_repair()
    online_esr_repair()


if __name__ == "__main__":
    main()
