#!/usr/bin/env python
"""Travel booking saga under COMPE (paper sections 4, 4.2).

A trip books a flight seat, a hotel room, and a rental car as three
update ETs forming a saga.  Each step commits optimistically and
propagates asynchronously; if a later step fails, the earlier steps are
compensated at every replica (backward replica control).

The example shows both saga outcomes, and the conservative accounting
queries get: while a saga is open, its steps keep their
potential-compensation charge raised, so a concurrent availability
query knows exactly how much of what it read might still be undone.

``--live`` runs the same story against a real 3-replica TCP cluster
(method ``compe``): saga steps are ``update(..., saga=...)`` calls,
the abort is a ``decide("abort", saga=...)`` whose reply names every
compensated step tid, and a booking that fails at submission time
(``abort=True``) surfaces as a typed ``COMPENSATED`` failure.

Run:  python examples/travel_saga.py
      python examples/travel_saga.py --live
"""

from repro import (
    DecrementOp,
    EpsilonSpec,
    QueryET,
    ReadOp,
    ReplicatedSystem,
    SystemConfig,
    UniformLatency,
    UpdateET,
)
from repro.replica.compe import CompensationBased

INVENTORY = (("flight_seats", 10), ("hotel_rooms", 5), ("rental_cars", 3))


def build():
    return ReplicatedSystem(
        CompensationBased(decision_delay=2.0),
        SystemConfig(
            n_sites=3,
            seed=5,
            latency=UniformLatency(0.5, 2.0),
            initial=INVENTORY,
        ),
    )


def run_saga(system, saga_id, fail_at=None):
    """Book one unit of each resource; step ``fail_at`` aborts."""
    steps = [
        (UpdateET([DecrementOp("flight_seats", 1)]), fail_at == 0),
        (UpdateET([DecrementOp("hotel_rooms", 1)]), fail_at == 1),
        (UpdateET([DecrementOp("rental_cars", 1)]), fail_at == 2),
    ]
    outcomes = []
    system._pending_ets += 1

    def done(results):
        system._pending_ets -= 1
        outcomes.extend(results)

    system.method.submit_saga(saga_id, steps, "site0", done)
    return outcomes


def main() -> None:
    print("== Successful booking saga ==")
    system = build()
    run_saga(system, "trip-1")
    # A concurrent availability query with room for uncertainty.
    system.submit_at(
        1.0,
        QueryET(
            [ReadOp("flight_seats"), ReadOp("hotel_rooms"),
             ReadOp("rental_cars")],
            EpsilonSpec(import_limit=3),
        ),
        "site1",
    )
    system.run_to_quiescence()
    query = [r for r in system.results if r.et.is_query][0]
    print(
        "availability query saw %s with %d potentially-compensatable "
        "updates imported" % (query.values, query.inconsistency)
    )
    final = system.sites["site2"].values()
    print("final inventory everywhere: %s" % final)
    assert final == {
        "flight_seats": 9, "hotel_rooms": 4, "rental_cars": 2,
    }
    assert system.converged()

    print()
    print("== Saga whose last step fails (no rental cars) ==")
    system = build()
    run_saga(system, "trip-2", fail_at=2)
    system.run_to_quiescence()
    stats = system.method.stats
    final = system.sites["site1"].values()
    print(
        "compensations: %d direct, %d rollback+replay"
        % (stats.direct_compensations, stats.rollback_replays)
    )
    print("final inventory everywhere: %s" % final)
    # The flight and hotel bookings were compensated at every replica:
    # the trip never happened.
    assert final == {
        "flight_seats": 10, "hotel_rooms": 5, "rental_cars": 3,
    }
    assert system.converged()
    print("all replicas restored — backward replica control worked")


def main_live() -> None:
    """The same travel saga on a real TCP cluster (COMPE engine)."""
    import asyncio

    from repro.live import LiveCluster, LiveETFailed

    async def run() -> None:
        cluster = LiveCluster(n_sites=3, method="compe")
        await cluster.start()
        try:
            booking = await cluster.client(cluster.names[0])
            audit = await cluster.client(cluster.names[1])
            for key, stock in INVENTORY:
                await booking.increment(key, stock)
            await cluster.settle()

            print("== Successful booking saga (live) ==")
            for key, _ in INVENTORY:
                reply = await booking.update(
                    [DecrementOp(key, 1)], saga="trip-1"
                )
                print("  booked %s (tid %s)" % (key, reply["tid"]))
            # A concurrent availability query at another replica: the
            # open saga's steps are potentially-compensatable, so a
            # bounded read must budget for importing them.
            result = await audit.query(
                [key for key, _ in INVENTORY],
                spec=EpsilonSpec(import_limit=3),
            )
            print(
                "  availability query saw %s with %d potentially-"
                "compensatable updates imported"
                % (result.values, result.inconsistency)
            )
            reply = await booking.decide("commit", saga="trip-1")
            print("  committed saga steps: %s" % (reply["decided"],))
            await cluster.settle()
            values = (await cluster.site_values())[cluster.names[2]]
            assert values == {
                "flight_seats": 9, "hotel_rooms": 4, "rental_cars": 2,
            }, values
            print("  final inventory everywhere: %s" % values)

            print()
            print("== Saga whose last step fails (live) ==")
            for key in ("flight_seats", "hotel_rooms"):
                await booking.update([DecrementOp(key, 1)], saga="trip-2")
            try:
                # No rental cars: the last step aborts at submission.
                # It applies optimistically, is undone by backward
                # recovery, and fails with the typed COMPENSATED code.
                await booking.update(
                    [DecrementOp("rental_cars", 1)],
                    saga="trip-2",
                    abort=True,
                )
            except LiveETFailed as exc:
                assert exc.code == "COMPENSATED", exc.code
                print(
                    "  car rental failed: %s (undone tids: %s)"
                    % (exc.code, ", ".join(exc.compensated_tids))
                )
            reply = await booking.decide("abort", saga="trip-2")
            print(
                "  aborted the saga; compensated steps: %s"
                % (reply["compensated"],)
            )
            await cluster.settle()
            converged = await cluster.converged()
            values = (await cluster.site_values())[cluster.names[0]]
            assert converged and values == {
                "flight_seats": 9, "hotel_rooms": 4, "rental_cars": 2,
            }, (converged, values)
            print("  final inventory everywhere: %s" % values)
            print(
                "all replicas restored over TCP — backward replica "
                "control worked"
            )
            await booking.close()
            await audit.close()
        finally:
            await cluster.stop()

    asyncio.run(run())


if __name__ == "__main__":
    import sys

    if "--live" in sys.argv[1:]:
        main_live()
    else:
        main()
