#!/usr/bin/env python
"""Federated bank branches: the paper's autonomy motivation (section 1).

Four branches each hold replicas of all account balances.  Branches are
autonomous — deposits and withdrawals commit locally and propagate
asynchronously (COMMU), so a slow inter-branch link never blocks a
teller.  Meanwhile:

* a *fast audit* runs with an inconsistency budget — it may be off by
  at most ``epsilon`` concurrent transactions, and the system tells it
  exactly how much error it imported;
* a *strict audit* (epsilon 0) is serializable: it observes a state
  equivalent to some serial execution, waiting if it must.

The example also contrasts ORDUP on the same workload: ordered updates
admit non-commutative operations (interest multiplication!) which
COMMU must reject.

Run:  python examples/bank_branches.py
"""

from repro import (
    CommutativeOperations,
    EpsilonSpec,
    IncrementOp,
    DecrementOp,
    MultiplyOp,
    OrderedUpdates,
    QueryET,
    ReadOp,
    ReplicatedSystem,
    SystemConfig,
    UniformLatency,
    UpdateET,
)
from repro.replica.commu import NonCommutativeError

ACCOUNTS = ("alice", "bob", "carol")
BRANCHES = 4


def build(method):
    return ReplicatedSystem(
        method,
        SystemConfig(
            n_sites=BRANCHES,
            seed=11,
            latency=UniformLatency(2.0, 8.0),  # slow WAN between branches
            initial=tuple((acct, 1000) for acct in ACCOUNTS),
        ),
    )


def teller_traffic(system):
    """Deposits and withdrawals at every branch, over one 'day'."""
    rng_schedule = [
        (0.5, "site0", IncrementOp("alice", 200)),
        (1.0, "site1", DecrementOp("bob", 50)),
        (1.5, "site2", IncrementOp("carol", 75)),
        (2.0, "site3", DecrementOp("alice", 100)),
        (2.5, "site0", IncrementOp("bob", 300)),
        (3.0, "site1", DecrementOp("carol", 25)),
        (3.5, "site2", IncrementOp("alice", 40)),
        (4.0, "site3", IncrementOp("bob", 10)),
    ]
    for time, branch, op in rng_schedule:
        system.submit_at(time, UpdateET([op]), branch)


def main() -> None:
    print("== COMMU: autonomous branches, commutative money movement ==")
    system = build(CommutativeOperations())
    teller_traffic(system)

    # Fast audit mid-day with an error budget of 3 transactions.
    audit_ops = [ReadOp(acct) for acct in ACCOUNTS]
    system.submit_at(
        2.2, QueryET(audit_ops, EpsilonSpec(import_limit=3)), "site0"
    )
    # Strict end-of-day audit.
    system.submit_at(
        6.0, QueryET(audit_ops, EpsilonSpec(import_limit=0)), "site2"
    )

    quiescence = system.run_to_quiescence()
    for result in system.results:
        if not result.et.is_query:
            continue
        total = sum(result.values.values())
        kind = "strict" if result.et.spec.is_strict else "fast"
        print(
            "%s audit at %s: total=%d, imported error=%d, waited=%d"
            % (kind, result.site, total, result.inconsistency, result.waits)
        )
    expected = 3000 + 200 - 50 + 75 - 100 + 300 - 25 + 40 + 10
    balances = system.sites["site0"].values()
    print(
        "quiescence t=%.1f  converged=%s  total=%d (expected %d)"
        % (quiescence, system.converged(), sum(balances.values()), expected)
    )
    assert sum(balances.values()) == expected

    print()
    print("== COMMU rejects non-commutative interest posting ==")
    try:
        system.submit(UpdateET([MultiplyOp("alice", 2)]), "site0")
    except NonCommutativeError as exc:
        print("rejected as expected: %s" % exc)

    print()
    print("== ORDUP: same day plus 5% interest, ordered updates ==")
    system = build(OrderedUpdates())
    teller_traffic(system)
    # Interest posting multiplies balances — non-commutative, but ORDUP
    # executes every update in one global order at every branch.
    system.submit_at(
        5.0, UpdateET([MultiplyOp(acct, 1.05) for acct in ACCOUNTS]), "site0"
    )
    system.run_to_quiescence()
    print(
        "converged=%s  1SR=%s  alice=%.2f"
        % (
            system.converged(),
            system.is_one_copy_serializable(),
            system.sites["site3"].store.get("alice"),
        )
    )
    assert system.converged()
    assert system.is_one_copy_serializable()


if __name__ == "__main__":
    main()
