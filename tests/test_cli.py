"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.harness.experiments import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in EXPERIMENTS:
            assert eid in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "T1", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "paper log (1)" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["run", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert "NOPE" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunFailure:
    def test_raising_experiment_gives_nonzero_exit(self, capsys, monkeypatch):
        def boom():
            raise RuntimeError("synthetic experiment failure")

        monkeypatch.setitem(EXPERIMENTS, "T2", boom)
        assert main(["run", "T2"]) == 1
        err = capsys.readouterr().err
        assert "T2" in err and "synthetic experiment failure" in err

    def test_failure_does_not_abort_remaining_ids(self, capsys, monkeypatch):
        monkeypatch.setitem(
            EXPERIMENTS, "T2", lambda: (_ for _ in ()).throw(ValueError("x"))
        )
        assert main(["run", "T2", "T3"]) == 1
        captured = capsys.readouterr()
        assert "Table 3" in captured.out


class TestRunWithOutput:
    def test_saves_files(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["run", "T2", "T3", "-o", str(out)]) == 0
        assert (out / "T2.txt").exists()
        assert "Table 3" in (out / "T3.txt").read_text()

    def test_no_output_without_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "T2"]) == 0
        assert list(tmp_path.iterdir()) == []
