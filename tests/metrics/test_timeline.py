"""Tests for the ASCII timeline renderer."""

import pytest

from repro.core.history import History
from repro.core.operations import IncrementOp, ReadOp
from repro.metrics.timeline import render_timeline


def _histories():
    h0, h1 = History(), History()
    h0.record(1, IncrementOp("x", 1), "s0", time=0.0)
    h0.record(2, IncrementOp("x", 1), "s0", time=5.0)
    h1.record(1, IncrementOp("x", 1), "s1", time=2.0)
    h1.record(3, ReadOp("x"), "s1", time=4.0)
    return {"s0": h0, "s1": h1}


class TestRenderTimeline:
    def test_all_sites_have_lanes(self):
        text = render_timeline(_histories(), width=10)
        assert "s0 |" in text and "s1 |" in text

    def test_events_appear_with_kind_letters(self):
        text = render_timeline(_histories(), width=10)
        assert "W1" in text
        assert "r3" in text

    def test_lanes_aligned(self):
        text = render_timeline(_histories(), width=10)
        lanes = [l for l in text.splitlines() if "|" in l]
        assert len({len(l) for l in lanes}) == 1

    def test_empty_histories(self):
        assert render_timeline({"s0": History()}) == "(empty timeline)"

    def test_window_filtering(self):
        text = render_timeline(_histories(), width=10, start=3.0, end=6.0)
        assert "W2" in text  # t=5 inside the window
        assert "r3" in text  # t=4 inside
        # The t=0 event falls outside the window.
        lanes = [l for l in text.splitlines() if l.startswith("s0")]
        assert "W1" not in lanes[0]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline(_histories(), width=0)

    def test_write_beats_read_in_same_bucket(self):
        h = History()
        h.record(1, ReadOp("x"), "s", time=1.0)
        h.record(2, IncrementOp("x", 1), "s", time=1.01)
        text = render_timeline({"s": h}, width=1)
        assert "W2" in text and "r1" not in text

    def test_real_system_renders(self):
        from repro import (
            CommutativeOperations,
            IncrementOp,
            ReplicatedSystem,
            SystemConfig,
            UpdateET,
        )
        from repro.core.transactions import reset_tid_counter

        reset_tid_counter()
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2, seed=1)
        )
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.run_to_quiescence()
        text = render_timeline(
            {name: s.history for name, s in system.sites.items()}
        )
        assert "site0" in text and "site1" in text
