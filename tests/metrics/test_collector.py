"""Unit tests for metrics aggregation."""

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    EpsilonSpec,
    ETResult,
    ETStatus,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.metrics.collector import (
    divergence_of,
    percentile,
    summarize,
)


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_out_of_range_p(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


def _update_result(latency, status=ETStatus.COMMITTED):
    et = UpdateET([IncrementOp("x", 1)])
    return ETResult(et, status=status, start_time=0.0, finish_time=latency)


def _query_result(latency, inconsistency=0, limit=None, waits=0):
    spec = EpsilonSpec() if limit is None else EpsilonSpec(import_limit=limit)
    et = QueryET([ReadOp("x")], spec)
    return ETResult(
        et,
        start_time=0.0,
        finish_time=latency,
        inconsistency=inconsistency,
        waits=waits,
    )


class TestSummarize:
    def test_counts_by_status(self):
        results = [
            _update_result(1.0),
            _update_result(1.0, ETStatus.ABORTED),
            _update_result(1.0, ETStatus.COMPENSATED),
        ]
        m = summarize(results, duration=10.0)
        assert m.total_ets == 3
        assert m.committed == 1
        assert m.aborted == 1
        assert m.compensated == 1

    def test_throughput(self):
        m = summarize([_update_result(1.0)] * 5, duration=10.0)
        assert m.throughput == pytest.approx(0.5)

    def test_latency_split_by_kind(self):
        results = [_update_result(2.0), _query_result(4.0)]
        m = summarize(results, duration=10.0)
        assert m.update_latency_mean == pytest.approx(2.0)
        assert m.query_latency_mean == pytest.approx(4.0)

    def test_inconsistency_stats(self):
        results = [
            _query_result(1.0, inconsistency=0),
            _query_result(1.0, inconsistency=4),
        ]
        m = summarize(results, duration=10.0)
        assert m.inconsistency_mean == pytest.approx(2.0)
        assert m.inconsistency_max == 4

    def test_within_bound_fraction(self):
        results = [
            _query_result(1.0, inconsistency=1, limit=2),
            _query_result(1.0, inconsistency=3, limit=2),
        ]
        m = summarize(results, duration=10.0)
        assert m.within_bound_fraction == pytest.approx(0.5)

    def test_waits_accumulate(self):
        results = [_query_result(1.0, waits=2), _query_result(1.0, waits=3)]
        m = summarize(results, duration=10.0)
        assert m.waits == 5

    def test_empty_run(self):
        m = summarize([], duration=0.0)
        assert m.total_ets == 0
        assert m.throughput == 0.0
        # No queries -> no bound compliance to report.  A default of
        # 1.0 here would inflate "in_bound" aggregates across sweeps
        # that include query-free runs.
        assert m.within_bound_fraction is None
        assert m.as_row()["in_bound"] is None

    def test_update_only_run_has_no_bound_fraction(self):
        m = summarize([_update_result(1.0)], duration=2.0)
        assert m.within_bound_fraction is None

    def test_as_row_is_flat(self):
        m = summarize([_update_result(1.0)], duration=2.0)
        row = m.as_row()
        assert row["ets"] == 1
        assert isinstance(row["thruput"], float)


class TestDivergence:
    def test_identical_sites_zero(self):
        values = {"s0": {"a": 5}, "s1": {"a": 5}}
        assert divergence_of(values) == 0.0

    def test_numeric_spread(self):
        values = {"s0": {"a": 1}, "s1": {"a": 4}, "s2": {"a": 2}}
        assert divergence_of(values) == 3.0

    def test_sums_over_keys(self):
        values = {"s0": {"a": 1, "b": 10}, "s1": {"a": 3, "b": 10}}
        assert divergence_of(values) == 2.0

    def test_non_numeric_counts_one_per_diff(self):
        values = {"s0": {"a": "x"}, "s1": {"a": "y"}}
        assert divergence_of(values) == 1.0

    def test_missing_key_counts(self):
        values = {"s0": {"a": 1}, "s1": {}}
        assert divergence_of(values) == 1.0

    def test_single_site_zero(self):
        assert divergence_of({"s0": {"a": 1}}) == 0.0
