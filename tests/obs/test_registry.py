"""Registry tests: instrument semantics and Prometheus exposition.

The exposition tests pin the text-format invariants a scraper relies
on: label-value escaping, cumulative (monotone) histogram buckets
ending in ``+Inf``, and counters that never move backwards between
scrapes.
"""

import json
import math
import re

import pytest

from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = Registry()
        c = reg.counter("ops_total", "ops")
        c.inc()
        c.inc(2)
        assert reg.get_sample("ops_total") == 3

    def test_negative_inc_rejected(self):
        reg = Registry()
        c = reg.counter("ops_total", "ops")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_to_never_goes_backwards(self):
        reg = Registry()
        c = reg.counter("fsync_total", "fsyncs")
        c.set_to(10)
        c.set_to(7)  # a stale mirror read must not regress the series
        assert reg.get_sample("fsync_total") == 10

    def test_monotonic_across_scrapes(self):
        """A counter sample never decreases from one scrape to the next."""
        reg = Registry()
        c = reg.counter("events_total", "events", labels=("kind",))
        child = c.labels(kind="x")
        previous = -1.0
        for step in (1, 3, 0, 5):  # 0: scrape with no traffic in between
            for _ in range(step):
                child.inc()
            text = reg.render_prometheus()
            match = re.search(
                r'repro_events_total\{kind="x"\} (\d+)', text
            )
            assert match, text
            value = float(match.group(1))
            assert value >= previous
            previous = value

    def test_labels_validated(self):
        reg = Registry()
        c = reg.counter("errs_total", "errors", labels=("peer",))
        with pytest.raises(ValueError):
            c.labels(host="x")  # wrong label name

    def test_kind_collision_rejected(self):
        reg = Registry()
        reg.counter("thing", "as counter")
        with pytest.raises(ValueError):
            reg.gauge("thing", "as gauge")


class TestGauge:
    def test_set_and_dec(self):
        reg = Registry()
        g = reg.gauge("depth", "queue depth")
        g.set(5)
        g.dec(2)
        assert reg.get_sample("depth") == 3

    def test_set_max_ratchets(self):
        reg = Registry()
        g = reg.gauge("epsilon_max", "high water")
        g.set_max(4)
        g.set_max(2)
        assert reg.get_sample("epsilon_max") == 4


class TestHistogram:
    def test_observations_land_in_buckets(self):
        reg = Registry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.cumulative() == [1, 2, 3]
        assert h.count == 3
        assert h.sum == pytest.approx(2.55)

    def test_bucket_counts_are_monotone_in_exposition(self):
        """_bucket values must be cumulative: non-decreasing in le order
        and the +Inf bucket must equal _count."""
        reg = Registry()
        h = reg.histogram(
            "waits", "wait counts", buckets=DEFAULT_COUNT_BUCKETS
        )
        for v in (0, 0, 1, 4, 7, 30, 1000):
            h.observe(v)
        text = reg.render_prometheus()
        counts = [
            int(m.group(2))
            for m in re.finditer(
                r'repro_waits_bucket\{le="([^"]+)"\} (\d+)', text
            )
        ]
        assert counts, text
        assert counts == sorted(counts)
        inf = re.search(r'repro_waits_bucket\{le="\+Inf"\} (\d+)', text)
        total = re.search(r"repro_waits_count (\d+)", text)
        assert inf and total
        assert inf.group(1) == total.group(1) == "7"

    def test_unsorted_buckets_rejected(self):
        reg = Registry()
        with pytest.raises(ValueError):
            reg.histogram("bad", "bad", buckets=(1.0, 0.5))


class TestPrometheusExposition:
    def test_help_and_type_lines(self):
        reg = Registry()
        reg.counter("ops_total", "operations processed").inc()
        text = reg.render_prometheus()
        assert "# HELP repro_ops_total operations processed\n" in text
        assert "# TYPE repro_ops_total counter\n" in text

    def test_label_value_escaping(self):
        """Backslash, double quote, and newline must all be escaped —
        any of them raw would corrupt the exposition line."""
        reg = Registry()
        c = reg.counter("odd_total", "odd labels", labels=("name",))
        c.labels(name='a"b\\c\nd').inc()
        text = reg.render_prometheus()
        assert 'name="a\\"b\\\\c\\nd"' in text
        # The sample must still be one well-formed line: the raw
        # newline in the label value may not split it.
        sample_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_odd_total")
        ]
        assert len(sample_lines) == 1
        assert re.fullmatch(
            r'repro_odd_total\{name="(?:[^"\\]|\\.)*"\} 1',
            sample_lines[0],
        )

    def test_help_escaping(self):
        reg = Registry()
        reg.gauge("g", "line one\nline two").set(1)
        text = reg.render_prometheus()
        assert "# HELP repro_g line one\\nline two\n" in text

    def test_const_labels_on_every_sample(self):
        reg = Registry(const_labels={"site": "site0"})
        reg.gauge("depth", "d").set(1)
        h = reg.histogram("lat", "l", buckets=(1.0,))
        h.observe(0.5)
        text = reg.render_prometheus()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'site="site0"' in line, line

    def test_empty_registry_renders_empty(self):
        assert Registry().render_prometheus() == ""

    def test_to_dict_round_trips_as_json(self):
        reg = Registry(const_labels={"site": "s"})
        reg.counter("c_total", "c", labels=("peer",)).labels(
            peer="p"
        ).inc()
        reg.histogram("h", "h", buckets=(1.0,)).observe(0.2)
        data = json.loads(json.dumps(reg.to_dict()))
        assert data["repro_c_total"]["type"] == "counter"
        sample = data["repro_c_total"]["samples"][0]
        assert sample["labels"] == {"peer": "p", "site": "s"}
        assert sample["value"] == 1
        hist = data["repro_h"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"]["1"] == 1


class TestNullRegistry:
    def test_absorbs_every_call_shape(self):
        c = NULL_REGISTRY.counter("x_total", "x", labels=("a",))
        c.labels(a="1").inc()
        c.inc()  # also callable without labels
        g = NULL_REGISTRY.gauge("g", "g")
        g.set(3)
        g.set_max(4)
        h = NULL_REGISTRY.histogram("h", "h")
        h.observe(0.5)
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.to_dict() == {}

    def test_threadsafe_registry_works(self):
        reg = Registry(threadsafe=True)
        c = reg.counter("n_total", "n")
        for _ in range(10):
            c.inc()
        assert reg.get_sample("n_total") == 10

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )
        assert not any(math.isinf(b) for b in DEFAULT_LATENCY_BUCKETS)
