"""Trace recorder tests: event stamping, bounds, JSONL round-trip."""

import itertools

from repro.obs.trace import (
    TraceRecorder,
    UPDATE_SPAN_KINDS,
    dump_events_jsonl,
    load_trace_jsonl,
    merge_traces,
)


def _fake_clock(start=0.0, step=1.0):
    counter = itertools.count()
    return lambda: start + step * next(counter)


class TestRecorder:
    def test_events_are_stamped(self):
        rec = TraceRecorder(site="site0", clock=_fake_clock())
        rec.event("update-submit", tid="site0:1")
        rec.event("update-apply", tid="site0:1")
        first, second = rec.snapshot()
        assert first == {
            "ts": 0.0,
            "kind": "update-submit",
            "site": "site0",
            "tid": "site0:1",
        }
        assert second["ts"] > first["ts"]

    def test_disabled_recorder_is_free(self):
        rec = TraceRecorder(enabled=False)
        rec.event("query")
        assert len(rec) == 0
        assert rec.recorded == 0

    def test_bounded_buffer_counts_drops(self):
        rec = TraceRecorder(maxlen=2, clock=_fake_clock())
        for i in range(5):
            rec.event("drain", i=i)
        assert len(rec) == 2
        assert rec.recorded == 5
        assert rec.dropped == 3
        # Oldest events were evicted; the latest survive.
        assert [e["i"] for e in rec.snapshot()] == [3, 4]

    def test_span_kinds_cover_update_lifecycle(self):
        assert UPDATE_SPAN_KINDS == (
            "update-submit",
            "update-apply",
            "update-ack",
            "drain",
        )


class TestJsonlRoundTrip:
    def test_recorder_dump_and_load(self, tmp_path):
        rec = TraceRecorder(site="s1", clock=_fake_clock())
        rec.event("update-submit", tid="s1:1", keys=["x"])
        rec.event("query", method="commu", inconsistency=2, limit=5)
        path = tmp_path / "trace.jsonl"
        assert rec.dump_jsonl(path) == 2
        loaded = load_trace_jsonl(path)
        assert loaded == rec.snapshot()

    def test_merged_dump_round_trips_in_timestamp_order(self, tmp_path):
        clock = _fake_clock()  # shared: interleaves the two recorders
        a = TraceRecorder(site="a", clock=clock)
        b = TraceRecorder(site="b", clock=clock)
        a.event("update-submit")
        b.event("update-apply")
        a.event("update-ack")
        merged = merge_traces([a, b])
        assert [e["ts"] for e in merged] == sorted(
            e["ts"] for e in merged
        )
        path = tmp_path / "merged.jsonl"
        assert dump_events_jsonl(merged, path) == 3
        loaded = load_trace_jsonl(path)
        assert loaded == merged
        assert [e["site"] for e in loaded] == ["a", "b", "a"]

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ts": 1, "kind": "drain"}\n\n')
        assert load_trace_jsonl(path) == [{"ts": 1, "kind": "drain"}]
