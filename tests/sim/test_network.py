"""Unit tests for the simulated network."""

import pytest

from repro.sim.events import Simulator
from repro.sim.network import (
    ConstantLatency,
    ExponentialLatency,
    Network,
    UniformLatency,
)


@pytest.fixture
def sim():
    return Simulator(seed=7)


class TestLatencyModels:
    def test_constant(self, sim):
        assert ConstantLatency(3.0).sample(sim) == 3.0

    def test_uniform_within_bounds(self, sim):
        model = UniformLatency(1.0, 2.0)
        for _ in range(50):
            assert 1.0 <= model.sample(sim) <= 2.0

    def test_exponential_above_floor(self, sim):
        model = ExponentialLatency(mean=1.0, floor=0.5)
        for _ in range(50):
            assert model.sample(sim) >= 0.5


class TestDelivery:
    def test_message_arrives_after_latency(self, sim):
        net = Network(sim, ConstantLatency(2.5))
        arrived = []
        net.send("a", "b", "hello", lambda p: arrived.append((sim.now, p)))
        sim.run()
        assert arrived == [(2.5, "hello")]

    def test_per_link_latency_override(self, sim):
        net = Network(sim, ConstantLatency(10.0))
        net.set_link_latency("a", "b", ConstantLatency(1.0))
        times = []
        net.send("a", "b", None, lambda p: times.append(sim.now))
        net.send("a", "c", None, lambda p: times.append(sim.now))
        sim.run()
        assert times == [1.0, 10.0]

    def test_loss_rate_validation(self, sim):
        with pytest.raises(ValueError):
            Network(sim, loss_rate=1.0)
        with pytest.raises(ValueError):
            Network(sim, loss_rate=-0.1)

    def test_lossy_network_drops_some(self, sim):
        net = Network(sim, ConstantLatency(1.0), loss_rate=0.5)
        delivered = []
        for _ in range(100):
            net.send("a", "b", None, lambda p: delivered.append(p))
        sim.run()
        assert 0 < len(delivered) < 100
        assert net.stats.lost == 100 - len(delivered)

    def test_on_drop_invoked_for_lost_messages(self, sim):
        net = Network(sim, ConstantLatency(1.0), loss_rate=0.99)
        dropped = []
        for _ in range(50):
            net.send("a", "b", "m", lambda p: None, lambda p: dropped.append(p))
        sim.run()
        assert len(dropped) == net.stats.lost


class TestPartitions:
    def test_partitioned_sites_cannot_communicate(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        net.partition([("a",), ("b",)])
        delivered, dropped = [], []
        net.send("a", "b", None, delivered.append, dropped.append)
        sim.run()
        assert not delivered and len(dropped) == 1
        assert net.stats.blocked_by_partition == 1

    def test_same_group_still_communicates(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        net.partition([("a", "b"), ("c",)])
        delivered = []
        net.send("a", "b", None, delivered.append)
        sim.run()
        assert len(delivered) == 1

    def test_heal_restores_connectivity(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        net.partition([("a",), ("b",)])
        net.heal()
        delivered = []
        net.send("a", "b", None, delivered.append)
        sim.run()
        assert len(delivered) == 1

    def test_partition_mid_flight_drops(self, sim):
        net = Network(sim, ConstantLatency(5.0))
        delivered, dropped = [], []
        net.send("a", "b", None, delivered.append, dropped.append)
        sim.schedule(1.0, lambda: net.partition([("a",), ("b",)]))
        sim.run()
        assert not delivered and len(dropped) == 1

    def test_is_reachable(self, sim):
        net = Network(sim)
        assert net.is_reachable("a", "b")
        net.partition([("a",), ("b",)])
        assert not net.is_reachable("a", "b")


class TestSiteFailures:
    def test_down_destination_drops(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        net.site_down("b")
        delivered, dropped = [], []
        net.send("a", "b", None, delivered.append, dropped.append)
        sim.run()
        assert not delivered and len(dropped) == 1

    def test_down_source_drops(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        net.site_down("a")
        dropped = []
        net.send("a", "b", None, lambda p: None, dropped.append)
        sim.run()
        assert len(dropped) == 1

    def test_crash_mid_flight_drops(self, sim):
        net = Network(sim, ConstantLatency(5.0))
        delivered, dropped = [], []
        net.send("a", "b", None, delivered.append, dropped.append)
        sim.schedule(1.0, lambda: net.site_down("b"))
        sim.run()
        assert not delivered and len(dropped) == 1

    def test_recovery_restores(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        net.site_down("b")
        net.site_up("b")
        delivered = []
        net.send("a", "b", None, delivered.append)
        sim.run()
        assert len(delivered) == 1


class TestBandwidth:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Network(sim, bandwidth=0)
        with pytest.raises(ValueError):
            Network(sim, bandwidth=-1.0)

    def test_transmission_time_added(self, sim):
        # bandwidth 0.5 units/time -> a size-1 message takes 2 time
        # units to serialize, on top of 1 unit propagation.
        net = Network(sim, ConstantLatency(1.0), bandwidth=0.5)
        times = []
        net.send("a", "b", None, lambda p: times.append(sim.now))
        sim.run()
        assert times == [3.0]

    def test_queueing_behind_earlier_traffic(self, sim):
        net = Network(sim, ConstantLatency(1.0), bandwidth=0.5)
        times = []
        net.send("a", "b", 1, lambda p: times.append(sim.now))
        net.send("a", "b", 2, lambda p: times.append(sim.now))
        sim.run()
        # Second message serializes behind the first: 4 + 1 latency.
        assert times == [3.0, 5.0]

    def test_distinct_links_do_not_queue(self, sim):
        net = Network(sim, ConstantLatency(1.0), bandwidth=0.5)
        times = []
        net.send("a", "b", 1, lambda p: times.append(("b", sim.now)))
        net.send("a", "c", 2, lambda p: times.append(("c", sim.now)))
        sim.run()
        assert sorted(times) == [("b", 3.0), ("c", 3.0)]

    def test_message_size_scales_transmission(self, sim):
        net = Network(sim, ConstantLatency(1.0), bandwidth=1.0)
        times = []
        net.send("a", "b", None, lambda p: times.append(sim.now), size=4.0)
        sim.run()
        assert times == [5.0]

    def test_idle_link_resets_queueing(self, sim):
        net = Network(sim, ConstantLatency(1.0), bandwidth=1.0)
        times = []
        net.send("a", "b", 1, lambda p: times.append(sim.now))
        # Second send long after the first drained: no queueing.
        sim.schedule(10.0, lambda: net.send(
            "a", "b", 2, lambda p: times.append(sim.now)
        ))
        sim.run()
        assert times == [2.0, 12.0]

    def test_infinite_bandwidth_is_default(self, sim):
        net = Network(sim, ConstantLatency(1.0))
        times = []
        for _ in range(5):
            net.send("a", "b", None, lambda p: times.append(sim.now))
        sim.run()
        assert times == [1.0] * 5
