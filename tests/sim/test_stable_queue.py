"""Unit and property tests for stable queues (at-least-once delivery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.events import Simulator
from repro.sim.network import ConstantLatency, Network
from repro.sim.stable_queue import StableQueue


def _channel(sim, net, fifo=False, retry=2.0):
    received = []
    queue = StableQueue(
        sim, net, "a", "b", received.append, retry_interval=retry, fifo=fifo
    )
    return queue, received


class TestBasicDelivery:
    def test_single_message_delivered_once(self):
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net)
        queue.enqueue("m1")
        sim.run()
        assert received == ["m1"]
        assert queue.drained()

    def test_many_messages_all_delivered(self):
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net)
        for i in range(20):
            queue.enqueue(i)
        sim.run()
        assert sorted(received) == list(range(20))

    def test_stats_track_delivery(self):
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net)
        queue.enqueue("m")
        sim.run()
        assert queue.stats.enqueued == 1
        assert queue.stats.delivered == 1


class TestLossRecovery:
    def test_delivery_despite_loss(self):
        sim = Simulator(seed=3)
        net = Network(sim, ConstantLatency(1.0), loss_rate=0.4)
        queue, received = _channel(sim, net)
        for i in range(30):
            queue.enqueue(i)
        sim.run()
        assert sorted(received) == list(range(30))
        assert queue.drained()

    def test_duplicates_suppressed(self):
        sim = Simulator(seed=3)
        net = Network(sim, ConstantLatency(1.0), loss_rate=0.4)
        queue, received = _channel(sim, net)
        for i in range(30):
            queue.enqueue(i)
        sim.run()
        # Exactly-once at the application layer regardless of retries.
        assert len(received) == 30

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.floats(min_value=0.0, max_value=0.8),
        n=st.integers(min_value=1, max_value=25),
    )
    def test_property_exactly_once_under_any_loss(self, seed, loss, n):
        sim = Simulator(seed=seed)
        net = Network(sim, ConstantLatency(1.0), loss_rate=loss)
        queue, received = _channel(sim, net)
        for i in range(n):
            queue.enqueue(i)
        sim.run(max_events=200_000)
        assert sorted(received) == list(range(n))
        assert queue.drained()


class TestPartitionRecovery:
    def test_delivery_after_partition_heals(self):
        sim = Simulator(seed=5)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net, retry=2.0)
        net.partition([("a",), ("b",)])
        queue.enqueue("m")
        sim.run(until=10.0)
        assert received == []
        net.heal()
        sim.run()
        assert received == ["m"]

    def test_kick_forces_immediate_retry(self):
        sim = Simulator(seed=5)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net, retry=1000.0)
        net.partition([("a",), ("b",)])
        queue.enqueue("m")
        sim.run(until=5.0)
        net.heal()
        queue.kick()
        sim.run(until=10.0)
        assert received == ["m"]


class TestCrashRecovery:
    def test_pause_resume_preserves_messages(self):
        sim = Simulator(seed=5)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net)
        queue.pause()
        queue.enqueue("m1")
        queue.enqueue("m2")
        sim.run(until=20.0)
        assert received == []
        queue.resume()
        sim.run()
        assert sorted(received) == ["m1", "m2"]

    def test_receiver_crash_then_recover(self):
        sim = Simulator(seed=5)
        net = Network(sim, ConstantLatency(1.0))
        queue, received = _channel(sim, net, retry=2.0)
        net.site_down("b")
        queue.enqueue("m")
        sim.run(until=6.0)
        assert received == []
        net.site_up("b")
        sim.run()
        assert received == ["m"]


class TestFIFO:
    def test_fifo_preserves_order_under_loss(self):
        sim = Simulator(seed=11)
        net = Network(sim, ConstantLatency(1.0), loss_rate=0.3)
        queue, received = _channel(sim, net, fifo=True)
        for i in range(15):
            queue.enqueue(i)
        sim.run(max_events=200_000)
        assert received == list(range(15))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_property_fifo_order(self, seed, loss):
        sim = Simulator(seed=seed)
        net = Network(sim, ConstantLatency(1.0), loss_rate=loss)
        queue, received = _channel(sim, net, fifo=True)
        for i in range(12):
            queue.enqueue(i)
        sim.run(max_events=200_000)
        assert received == list(range(12))
