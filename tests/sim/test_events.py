"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.events import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(2.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_call_now_runs_at_current_instant(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: sim.call_now(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append(1))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancelled_flag(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("early"))
        sim.schedule(10.0, lambda: seen.append("late"))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert seen == ["early"]
        assert sim.now == 5.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append("late"))
        sim.run(until=5.0)
        sim.run()
        assert seen == ["late"]

    def test_max_events_bounds_execution(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4
        assert sim.pending == 6

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_quiescence(self):
        sim = Simulator()
        assert sim.is_quiescent()
        sim.schedule(1.0, lambda: None)
        assert not sim.is_quiescent()
        sim.run()
        assert sim.is_quiescent()


class TestDeterminism:
    def test_same_seed_same_randomness(self):
        a = Simulator(seed=42)
        b = Simulator(seed=42)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seed_different_randomness(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert a.rng.random() != b.rng.random()
