"""Unit tests for ordering services."""

import pytest

from repro.sim.clocks import CentralOrderServer, LamportClock


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock(0)
        assert clock.tick() == (1, 0)
        assert clock.tick() == (2, 0)

    def test_witness_jumps_past_remote(self):
        clock = LamportClock(0)
        stamp = clock.witness((10, 3))
        assert stamp == (11, 0)
        assert clock.time == 11

    def test_witness_of_older_stamp_still_ticks(self):
        clock = LamportClock(0)
        clock.tick()
        clock.tick()
        assert clock.witness((1, 9)) == (3, 0)

    def test_stamps_totally_ordered_across_sites(self):
        a, b = LamportClock(0), LamportClock(1)
        sa, sb = a.tick(), b.tick()
        assert sa != sb
        assert (sa < sb) or (sb < sa)

    def test_site_index_breaks_ties(self):
        assert LamportClock(0).tick() < LamportClock(1).tick()

    def test_negative_site_index_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(-1)

    def test_causality_monotone(self):
        """send -> receive never decreases the receiver's next stamp."""
        a, b = LamportClock(0), LamportClock(1)
        sent = a.tick()
        received = b.witness(sent)
        assert received > sent


class TestCentralOrderServer:
    def test_gap_free_sequence(self):
        server = CentralOrderServer()
        orders = [server.next_order() for _ in range(5)]
        assert orders == [(i, 0) for i in range(1, 6)]

    def test_issued_tracks_highest(self):
        server = CentralOrderServer()
        assert server.issued == 0
        server.next_order()
        server.next_order()
        assert server.issued == 2
