"""Unit tests for replica sites and failure injection."""

import pytest

from repro.core.operations import IncrementOp, ReadOp, WriteOp
from repro.sim.events import Simulator
from repro.sim.failures import CrashEvent, FailureInjector, PartitionEvent
from repro.sim.network import ConstantLatency, Network
from repro.sim.site import Site, SiteConfig


@pytest.fixture
def site():
    return Site("s0", Simulator(seed=1))


class TestLocalExecution:
    def test_apply_op_updates_store(self, site):
        site.apply_op(1, IncrementOp("x", 5))
        assert site.store.get("x") == 5

    def test_apply_op_records_history(self, site):
        site.apply_op(1, WriteOp("x", 3))
        assert len(site.history) == 1
        assert site.history.events[0].tid == 1

    def test_logged_apply_goes_through_oplog(self, site):
        site.apply_op(1, IncrementOp("x", 5), logged=True)
        assert len(site.oplog) == 1
        assert site.store.get("x") == 5

    def test_read_returns_default_for_missing(self, site):
        assert site.read(1, "nope") == 0

    def test_values_reports_store_contents(self, site):
        site.apply_op(1, WriteOp("x", 3))
        assert site.values() == {"x": 3}


class TestCrashModel:
    def test_crashed_site_rejects_work(self, site):
        site.crash()
        with pytest.raises(RuntimeError):
            site.apply_op(1, WriteOp("x", 1))
        with pytest.raises(RuntimeError):
            site.read(1, "x")

    def test_store_survives_crash(self, site):
        site.apply_op(1, WriteOp("x", 3))
        site.crash()
        site.recover()
        assert site.store.get("x") == 3

    def test_hooks_fire_once(self, site):
        crashes, recoveries = [], []
        site.on_crash.append(lambda: crashes.append(1))
        site.on_recover.append(lambda: recoveries.append(1))
        site.crash()
        site.crash()  # idempotent
        site.recover()
        site.recover()  # idempotent
        assert crashes == [1] and recoveries == [1]


class TestFailureInjector:
    def _rig(self):
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(1.0))
        sites = {"s0": Site("s0", sim), "s1": Site("s1", sim)}
        return sim, net, sites

    def test_crash_event_schedule(self):
        sim, net, sites = self._rig()
        injector = FailureInjector(sim, net, sites)
        injector.schedule_crash(CrashEvent("s0", at=5.0, duration=3.0))
        sim.run(until=6.0)
        assert sites["s0"].crashed
        assert not net.is_reachable("s1", "s0")
        sim.run()
        assert not sites["s0"].crashed
        assert net.is_reachable("s1", "s0")

    def test_partition_event_schedule(self):
        sim, net, sites = self._rig()
        healed = []
        injector = FailureInjector(
            sim, net, sites, on_heal=lambda: healed.append(sim.now)
        )
        injector.schedule_partition(
            PartitionEvent((("s0",), ("s1",)), at=2.0, duration=4.0)
        )
        sim.run(until=3.0)
        assert net.is_partitioned("s0", "s1")
        sim.run()
        assert not net.is_partitioned("s0", "s1")
        assert healed == [6.0]

    def test_apply_schedule_mixed(self):
        sim, net, sites = self._rig()
        injector = FailureInjector(sim, net, sites)
        injector.apply_schedule([
            CrashEvent("s0", at=1.0, duration=1.0),
            PartitionEvent((("s0",), ("s1",)), at=3.0, duration=1.0),
        ])
        sim.run()
        assert injector.crash_count == 1
        assert injector.partition_count == 1

    def test_apply_schedule_rejects_unknown(self):
        sim, net, sites = self._rig()
        injector = FailureInjector(sim, net, sites)
        with pytest.raises(TypeError):
            injector.apply_schedule(["not an event"])

    def test_random_crashes_deterministic(self):
        sim1, net1, sites1 = self._rig()
        events1 = FailureInjector(sim1, net1, sites1).random_crashes(
            horizon=100.0, rate_per_site=0.05, mean_downtime=5.0
        )
        sim2, net2, sites2 = self._rig()
        events2 = FailureInjector(sim2, net2, sites2).random_crashes(
            horizon=100.0, rate_per_site=0.05, mean_downtime=5.0
        )
        assert events1 == events2
