"""Durable queue tests: exactly-once FIFO channels that survive restarts."""

import json

import pytest

from repro.live.durable_queue import DurableInbox, DurableOutbox


class TestOutbox:
    def test_append_assigns_sequence_numbers(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        assert outbox.append("a") == 1
        assert outbox.append("b") == 2
        assert outbox.pending() == [(1, "a"), (2, "b")]
        outbox.close()

    def test_ack_advances_frontier(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        for payload in "abc":
            outbox.append(payload)
        outbox.ack(1)
        assert outbox.pending() == [(2, "b"), (3, "c")]
        assert outbox.frontier == 1
        outbox.ack(2)
        outbox.ack(3)
        assert outbox.drained()
        outbox.close()

    def test_out_of_order_ack_does_not_skip_frontier(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        for payload in "abc":
            outbox.append(payload)
        outbox.ack(3)
        # 1 and 2 still pending: the durable frontier must not pass them.
        assert outbox.frontier == 0
        assert outbox.pending() == [(1, "a"), (2, "b")]
        outbox.close()

    def test_pending_survives_restart(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        for i in range(5):
            outbox.append({"n": i})
        outbox.ack(1)
        outbox.ack(2)
        outbox.close()

        reloaded = DurableOutbox(path)
        assert reloaded.frontier == 2
        assert [seq for seq, _ in reloaded.pending()] == [3, 4, 5]
        # New appends continue the sequence, no reuse.
        assert reloaded.append("later") == 6
        reloaded.close()

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        outbox.append("whole")
        outbox.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "payl')  # crash mid-append

        reloaded = DurableOutbox(path)
        assert reloaded.pending() == [(1, "whole")]
        # The torn record's seqno is reused because it was never durable.
        assert reloaded.append("retry") == 2
        reloaded.close()


class TestCrashAtomicity:
    """A replica killed mid-append leaves a truncated or corrupt tail
    record; recovery must skip exactly that record and keep every
    previously acknowledged entry."""

    def test_inbox_truncated_tail_keeps_acked_entries(self, tmp_path):
        path = tmp_path / "peer.log"
        inbox = DurableInbox(path)
        for i in range(1, 4):
            inbox.record(i, {"n": i})  # all three were acked upstream
        inbox.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "payload": {"n"')  # killed here

        recovered = DurableInbox(path)
        assert recovered.frontier == 3
        assert [p["n"] for _, p in recovered.replay()] == [1, 2, 3]
        # The torn seqno was never acked, so its reuse is correct.
        assert recovered.record(4, {"n": 4}) is True
        recovered.close()

    def test_inbox_corrupt_json_tail_is_skipped(self, tmp_path):
        path = tmp_path / "peer.log"
        inbox = DurableInbox(path)
        inbox.record(1, "kept")
        inbox.close()
        with path.open("ab") as handle:
            handle.write(b"\x00\xffgarbage not json\n")

        recovered = DurableInbox(path)
        assert recovered.replay() == [(1, "kept")]
        assert recovered.frontier == 1
        recovered.close()

    def test_structurally_corrupt_tail_is_skipped(self, tmp_path):
        """Valid JSON that is not a whole queue record (e.g. a partial
        buffer flush) must be treated like a torn tail, not crash
        recovery."""
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        outbox.append("kept")
        outbox.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": "not-an-int"}\n')

        recovered = DurableOutbox(path)
        assert recovered.pending() == [(1, "kept")]
        assert recovered.append("next") == 2
        recovered.close()

    def test_outbox_truncated_tail_keeps_acked_frontier(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        for i in range(3):
            outbox.append({"n": i})
        outbox.ack(1)
        outbox.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "pa')  # crash mid-append

        recovered = DurableOutbox(path)
        assert recovered.frontier == 1  # acked work survives
        assert [seq for seq, _ in recovered.pending()] == [2, 3]
        assert recovered.append({"n": "retry"}) == 4
        recovered.close()


class TestInbox:
    def test_record_and_replay(self, tmp_path):
        inbox = DurableInbox(tmp_path / "peer.log")
        assert inbox.record(1, "a") is True
        assert inbox.record(2, "b") is True
        assert inbox.replay() == [(1, "a"), (2, "b")]
        inbox.close()

    def test_duplicates_refused_but_flagged(self, tmp_path):
        inbox = DurableInbox(tmp_path / "peer.log")
        inbox.record(1, "a")
        assert inbox.record(1, "a") is False
        assert inbox.duplicate(1) is True
        assert inbox.duplicate(2) is False
        # The log holds exactly one copy.
        lines = (tmp_path / "peer.log").read_text().splitlines()
        assert len(lines) == 1
        inbox.close()

    def test_gap_refused(self, tmp_path):
        inbox = DurableInbox(tmp_path / "peer.log")
        inbox.record(1, "a")
        assert inbox.record(3, "c") is False  # 2 was never received
        assert inbox.frontier == 1
        inbox.close()

    def test_replay_after_restart(self, tmp_path):
        path = tmp_path / "peer.log"
        inbox = DurableInbox(path)
        for i in range(1, 4):
            inbox.record(i, {"n": i})
        inbox.close()

        reloaded = DurableInbox(path)
        assert reloaded.frontier == 3
        assert [payload["n"] for _, payload in reloaded.replay()] == [1, 2, 3]
        assert reloaded.duplicate(3) is True
        assert reloaded.record(4, {"n": 4}) is True
        reloaded.close()


class TestGroupCommit:
    def test_append_many_assigns_contiguous_seqs(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        assert outbox.append_many(["a", "b", "c"]) == [1, 2, 3]
        assert outbox.append("d") == 4
        assert [seq for seq, _ in outbox.pending()] == [1, 2, 3, 4]
        outbox.close()

    def test_append_many_is_durable_as_one_batch(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        outbox.append_many([{"n": i} for i in range(5)])
        outbox.close()

        reloaded = DurableOutbox(path)
        assert [p["n"] for _, p in reloaded.pending()] == [0, 1, 2, 3, 4]
        reloaded.close()

    def test_record_many_advances_frontier(self, tmp_path):
        inbox = DurableInbox(tmp_path / "peer.log")
        assert inbox.record_many([(1, "a"), (2, "b"), (3, "c")]) == 3
        assert inbox.frontier == 3
        assert inbox.replay() == [(1, "a"), (2, "b"), (3, "c")]
        inbox.close()

    def test_record_many_rejects_gaps(self, tmp_path):
        """The batch receive path filters duplicates and stops at the
        first gap *before* calling; a non-contiguous batch reaching
        the log is a programming error, refused before any write."""
        inbox = DurableInbox(tmp_path / "peer.log")
        inbox.record(1, "a")
        with pytest.raises(ValueError):
            inbox.record_many([(2, "b"), (4, "d")])
        assert inbox.frontier == 1
        # Nothing from the refused batch hit the log.
        assert len((tmp_path / "peer.log").read_text().splitlines()) == 1
        inbox.close()

    def test_fsync_interval_rate_limits(self, tmp_path):
        """With a long interval only the first group append syncs; the
        queue keeps working and stays durable via flush."""
        outbox = DurableOutbox(
            tmp_path / "peer.log", fsync=True, fsync_interval=3600.0
        )
        outbox.append_many(["a", "b"])
        outbox.append_many(["c", "d"])
        outbox.close()  # close fsyncs unconditionally

        reloaded = DurableOutbox(tmp_path / "peer.log")
        assert [seq for seq, _ in reloaded.pending()] == [1, 2, 3, 4]
        reloaded.close()


class TestCumulativeAck:
    def test_ack_through_truncates_covered_range(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        outbox.append_many(list("abcde"))
        assert outbox.ack_through(3) == [1, 2, 3]
        assert outbox.frontier == 3
        assert [seq for seq, _ in outbox.pending()] == [4, 5]
        outbox.close()

    def test_ack_through_is_idempotent(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        outbox.append_many(list("abc"))
        outbox.ack_through(2)
        assert outbox.ack_through(2) == []
        assert outbox.ack_through(1) == []  # stale ack: no regression
        assert outbox.frontier == 2
        outbox.close()

    def test_ack_through_never_passes_appended_work(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        outbox.append_many(list("ab"))
        outbox.ack_through(99)  # a confused peer cannot fast-forward us
        assert outbox.frontier == 2
        assert outbox.append("c") == 3
        outbox.close()

    def test_cumulative_frontier_survives_restart(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        outbox.append_many([{"n": i} for i in range(6)])
        outbox.ack_through(4)
        outbox.close()

        reloaded = DurableOutbox(path)
        assert reloaded.frontier == 4
        assert [seq for seq, _ in reloaded.pending()] == [5, 6]
        reloaded.close()


class TestGroupCommitCrash:
    """Kill the receiver between the sender's batch append and the
    acknowledgement: recovery must re-send the whole batch, and the
    receiver-side dedup must keep the application at exactly-once."""

    def test_unacked_batch_is_resent_never_dropped(self, tmp_path):
        out_path = tmp_path / "out.log"
        outbox = DurableOutbox(out_path)
        outbox.append_many([{"n": i} for i in range(8)])
        # Receiver durably recorded the first half of the window, then
        # died before any ack made it back.
        inbox = DurableInbox(tmp_path / "in.log")
        inbox.record_many(
            [(seq, payload) for seq, payload in outbox.pending()[:4]]
        )
        inbox.close()
        # Sender crashes too (no volatile state survives).
        outbox.close()

        recovered_out = DurableOutbox(out_path)
        recovered_in = DurableInbox(tmp_path / "in.log")
        # Everything unacked is pending again: at-least-once.
        assert [seq for seq, _ in recovered_out.pending()] == list(
            range(1, 9)
        )
        # The re-sent batch dedups its first half, applies the rest.
        applied = []
        fresh = []
        for seq, payload in recovered_out.pending():
            if recovered_in.duplicate(seq):
                continue
            fresh.append((seq, payload))
        recovered_in.record_many(fresh)
        applied = [p["n"] for _, p in fresh]
        assert applied == [4, 5, 6, 7]  # second half only: exactly-once
        # The receiver's cumulative frontier now acks the whole window.
        covered = recovered_out.ack_through(recovered_in.frontier)
        assert covered == list(range(1, 9))
        assert recovered_out.drained()
        recovered_out.close()
        recovered_in.close()

    def test_torn_tail_inside_group_append_drops_whole_suffix(
        self, tmp_path
    ):
        """A crash mid-group-write can tear the last record; recovery
        keeps the intact prefix and the sender re-sends the rest."""
        path = tmp_path / "in.log"
        inbox = DurableInbox(path)
        inbox.record_many([(1, "a"), (2, "b")])
        inbox.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "payload": "c"}\n{"seq": 4, "pa')

        recovered = DurableInbox(path)
        assert recovered.frontier == 3  # intact prefix of the torn batch
        assert recovered.record_many([(4, "d")]) == 1
        recovered.close()


class TestChannelContract:
    def test_at_least_once_plus_dedup_is_exactly_once(self, tmp_path):
        """Retry storms deliver each payload to the application once."""
        outbox = DurableOutbox(tmp_path / "out.log")
        inbox = DurableInbox(tmp_path / "in.log")
        applied = []
        for i in range(10):
            outbox.append(i)
        # The sender retries everything three times (acks were lost).
        for _ in range(3):
            for seq, payload in outbox.pending():
                if inbox.duplicate(seq):
                    outbox.ack(seq)
                elif inbox.record(seq, payload):
                    applied.append(payload)
                    outbox.ack(seq)
        assert applied == list(range(10))
        assert outbox.drained()
        outbox.close()
        inbox.close()


class TestFsyncWindow:
    """The fsync_interval rate limit must never weaken a durability
    claim: ``sync()`` closes the window before any acknowledgement."""

    def test_appends_inside_window_leave_log_dirty(self, tmp_path):
        outbox = DurableOutbox(
            tmp_path / "out.log", fsync=True, fsync_interval=3600.0
        )
        outbox.append("a")  # may ride the initial fsync or not;
        outbox.append("b")  # a second append inside the window cannot.
        assert outbox.dirty
        assert outbox.sync() is True
        assert not outbox.dirty
        # Nothing new since the forced fsync: sync is now a no-op.
        assert outbox.sync() is False
        outbox.close()

    def test_sync_actually_calls_os_fsync(self, tmp_path, monkeypatch):
        import repro.live.durable_queue as dq

        calls = []
        real_fsync = dq.os.fsync
        monkeypatch.setattr(
            dq.os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        inbox = DurableInbox(
            tmp_path / "in.log", fsync=True, fsync_interval=3600.0
        )
        baseline = len(calls)
        inbox.record(1, "a")
        inbox.record(2, "b")
        n_before = len(calls)
        assert inbox.sync() is True
        assert len(calls) == n_before + 1
        assert inbox.fsync_count >= baseline + 1
        inbox.close()

    def test_sync_noop_without_fsync(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "out.log", fsync=False)
        outbox.append("a")
        assert outbox.sync() is False
        assert not outbox.dirty
        assert outbox.fsync_count == 0
        outbox.close()

    def test_observability_counters_accumulate(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "out.log", fsync=True)
        outbox.append({"k": 1})
        outbox.append_many([{"k": 2}, {"k": 3}])
        assert outbox.fsync_count >= 2  # one per group append
        assert outbox.fsync_seconds >= 0.0
        assert outbox.bytes_written > 0
        outbox.close()

    def test_close_syncs_dirty_tail(self, tmp_path):
        path = tmp_path / "out.log"
        outbox = DurableOutbox(path, fsync=True, fsync_interval=3600.0)
        outbox.append("a")
        outbox.append("b")
        before = outbox.fsync_count
        dirty = outbox.dirty
        outbox.close()
        assert not dirty or outbox.fsync_count > before
        assert not outbox.dirty
