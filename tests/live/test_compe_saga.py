"""COMPE over TCP: the compensation log and crash-safe backward recovery.

Bottom-up coverage of the saga tentpole: the durable compensation-log
format (append gating, torn-tail tolerance, retirement compaction),
the engine contract that replica state is a pure function of
(checkpoint, inbox replay) — exercised by crashing a replay at *every*
record boundary and re-replaying the full inbox over the surviving
log — the late-decision race (a third replica hears the verdict before
the update it decides), checkpoint/restore of the full COMPE tables,
and cluster-level crash/restart and disk-wipe rejoin around an abort
storm.
"""

import asyncio

import pytest

from repro.core.operations import DecrementOp, IncrementOp, WriteOp
from repro.live import CompensationLog, LiveCluster, LiveETFailed
from repro.live.engine import make_engine
from repro.replica.mset import MSet, MSetKind


def run(coro):
    return asyncio.run(coro)


FAST = dict(heartbeat_interval=0.1, suspect_after=0.4)
PEERS = ("site0", "site1", "site2")


# ---------------------------------------------------------------------------
# The durable compensation log.
# ---------------------------------------------------------------------------


class TestCompensationLog:
    def _log(self, tmp_path, **kwargs):
        return CompensationLog(tmp_path / "compensation.log", **kwargs)

    def test_round_trip_survives_reopen(self, tmp_path):
        log = self._log(tmp_path)
        ops = [["dec", "k", 1]]
        assert log.log_undo("site0:1", ops, ("k",), "saga-a")
        assert log.log_decision("site0:1", "abort")
        log.sync()
        log.close()

        reopened = self._log(tmp_path)
        assert reopened.undo_ops("site0:1") == ops
        assert reopened.decided("site0:1") == "abort"
        reopened.close()

    def test_duplicate_appends_are_gated(self, tmp_path):
        log = self._log(tmp_path)
        assert log.log_undo("site0:1", [["dec", "k", 1]], ("k",))
        assert not log.log_undo("site0:1", [["dec", "k", 1]], ("k",))
        assert log.log_decision("site0:1", "commit")
        assert not log.log_decision("site0:1", "commit")
        # The first decision is final: a conflicting replay is ignored.
        assert not log.log_decision("site0:1", "abort")
        assert log.decided("site0:1") == "commit"
        assert log.live_records == 2
        log.close()

    def test_torn_tail_reads_as_intact_prefix(self, tmp_path):
        log = self._log(tmp_path)
        log.log_undo("site0:1", [["dec", "k", 1]], ("k",))
        log.log_undo("site0:2", [["dec", "k", 2]], ("k",))
        log.sync()
        log.close()
        path = tmp_path / "compensation.log"
        raw = path.read_bytes()
        # Crash mid-append: the last record is half-written.
        path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])

        reopened = self._log(tmp_path)
        assert reopened.undo_ops("site0:1") == [["dec", "k", 1]]
        assert reopened.undo_ops("site0:2") is None
        reopened.close()

    def test_compaction_keeps_undecided_prunes_decided(self, tmp_path):
        log = self._log(tmp_path)
        for i in range(6):
            log.log_undo("site0:%d" % i, [["dec", "k", i]], ("k",))
        for i in range(4):
            log.log_decision("site0:%d" % i, "commit")
        assert sorted(log.undecided_tids()) == ["site0:4", "site0:5"]
        assert log.reclaimable() > 0
        log.compact_retired()
        # The running process still gates duplicates of retired tids
        # through its in-memory decisions map...
        assert log.decided("site0:0") == "commit"
        assert not log.log_decision("site0:0", "commit")
        log.close()

        reopened = self._log(tmp_path)
        # ...but on disk only undecided tids survive: retired records
        # are re-derivable from checkpoint + inbox replay, so recovery
        # re-learns those verdicts from the replayed decision MSets.
        assert sorted(reopened.undecided_tids()) == ["site0:4", "site0:5"]
        assert reopened.undo_ops("site0:5") == [["dec", "k", 5]]
        assert reopened.decided("site0:0") is None
        assert reopened.live_records == 2
        reopened.close()

    def test_records_total_counts_lifetime_appends(self, tmp_path):
        log = self._log(tmp_path)
        base = log.records_total
        log.log_undo("site0:1", [["dec", "k", 1]], ("k",))
        log.log_decision("site0:1", "commit")
        log.log_decision("site0:1", "commit")  # gated, not appended
        assert log.records_total == base + 2
        log.close()


# ---------------------------------------------------------------------------
# Crash-at-every-boundary engine recovery.
#
# The server's recovery contract: engine state is rebuilt by replaying
# the durable inbox from scratch through a fresh engine that reopened
# the surviving compensation log.  A crash can land between any two
# accepts — so for every prefix of a saga's MSet sequence we "crash"
# (drop the engine, keep the log) and re-replay the FULL sequence,
# asserting the recovered replica matches one that never crashed.
# ---------------------------------------------------------------------------


def _saga_msets(engine):
    """One saga of two steps plus a third-party abort, as delivered
    MSets: U1, U2, then decisions in reverse submission order."""
    u1 = engine.make_mset(
        "site0:1", (DecrementOp("a", 1),), info=(("saga", "s1"),)
    )
    u2 = engine.make_mset(
        "site0:2", (DecrementOp("b", 2),), info=(("saga", "s1"),)
    )
    d2 = MSet(
        "site1:1", MSetKind.ABORT, (), origin="site1",
        info=(("decides", "site0:2"),),
    )
    d1 = MSet(
        "site1:2", MSetKind.ABORT, (), origin="site1",
        info=(("decides", "site0:1"),),
    )
    return [u1, u2, d2, d1]


async def _seeded_engine(data_dir):
    engine = make_engine("compe", "site0", PEERS)
    engine.attach_storage(data_dir)
    await engine.accept(
        engine.make_mset("seed:1", (IncrementOp("a", 10),)), local=True
    )
    await engine.accept(
        engine.make_mset("seed:2", (IncrementOp("b", 10),)), local=True
    )
    return engine


def _observable(engine):
    return {
        "values": dict(engine.store.as_dict()),
        "decided": dict(engine._decided),
        "compensated": engine.compensated_tids(),
        "compensations": engine.compensation_count,
        "sagas": engine.saga_members("s1"),
    }


class TestCrashAtEveryBoundary:
    def test_replay_recovers_from_any_crash_point(self, tmp_path):
        async def scenario():
            reference_dir = tmp_path / "reference"
            reference_dir.mkdir()
            reference = await _seeded_engine(reference_dir)
            msets = _saga_msets(reference)
            for mset in msets:
                await reference.accept(mset)
            want = _observable(reference)
            reference.close()
            # The abort storm undid both steps: back to the seeds.
            assert want["values"] == {"a": 10, "b": 10}
            assert want["compensations"] == 2

            for crash_after in range(len(msets) + 1):
                crash_dir = tmp_path / ("crash%d" % crash_after)
                crash_dir.mkdir()
                first = await _seeded_engine(crash_dir)
                plan = _saga_msets(first)
                for mset in plan[:crash_after]:
                    await first.accept(mset)
                first.close()  # crash: in-memory state gone, log kept

                recovered = await _seeded_engine(crash_dir)
                for mset in plan:  # full durable-inbox replay
                    await recovered.accept(mset)
                got = _observable(recovered)
                recovered.close()
                assert got == want, "crash after %d" % crash_after

        run(scenario())

    def test_undo_logged_but_update_unapplied(self, tmp_path):
        """The narrowest window: the undo record hit the log but the
        crash came before the update was accepted (no inbox record).
        Replay delivers the update normally; the pre-logged undo step
        must not double-append or corrupt the tables."""

        async def scenario():
            engine = await _seeded_engine(tmp_path)
            u1 = engine.make_mset(
                "site0:1", (DecrementOp("a", 1),), info=(("saga", "s1"),)
            )
            engine.compensation_log.log_undo(
                "site0:1", [["inc", "a", 1]], ("a",), "s1"
            )
            engine.close()

            recovered = await _seeded_engine(tmp_path)
            await recovered.accept(u1)
            assert recovered.store.as_dict()["a"] == 9
            assert recovered.saga_members("s1") == ["site0:1"]
            assert recovered.compensation_log.live_records >= 1
            d1 = MSet(
                "site1:1", MSetKind.ABORT, (), origin="site1",
                info=(("decides", "site0:1"),),
            )
            await recovered.accept(d1)
            assert recovered.store.as_dict()["a"] == 10
            assert recovered.compensation_count == 1
            recovered.close()

        run(scenario())

    def test_decision_before_update_replay_order(self, tmp_path):
        """A third replica can hear the verdict (decider's channel)
        before the update (origin's channel) — in live delivery and in
        recovery replay alike.  Both orders end identically."""

        async def scenario():
            engine = await _seeded_engine(tmp_path)
            msets = _saga_msets(engine)
            u1, u2, d2, d1 = msets
            for mset in (d1, d2, u1, u2):  # decisions first
                await engine.accept(mset)
            got = _observable(engine)
            engine.close()
            assert got["values"] == {"a": 10, "b": 10}
            assert got["compensations"] == 2
            assert sorted(got["compensated"]) == ["site0:1", "site0:2"]

        run(scenario())

    def test_checkpoint_restore_round_trips_compe_tables(self, tmp_path):
        async def scenario():
            engine = await _seeded_engine(tmp_path)
            msets = _saga_msets(engine)
            # Stop mid-story: one step undecided, one compensated.
            for mset in msets[:3]:
                await engine.accept(mset)
            image = await engine.checkpoint()
            clone = make_engine("compe", "site0", PEERS)
            await clone.restore(image)
            assert await clone.checkpoint() == image
            assert _observable(clone) == _observable(engine)
            # The restored replica still resolves the open step.
            await clone.accept(msets[3])
            await engine.accept(msets[3])
            assert _observable(clone) == _observable(engine)
            engine.close()

        run(scenario())

    def test_compe_rejects_uncompensatable_operations(self):
        engine = make_engine("compe", "site0", PEERS)
        with pytest.raises(ValueError):
            engine.validate_update([WriteOp("k", "v")])
        engine.validate_update([IncrementOp("k", 1)])


# ---------------------------------------------------------------------------
# Cluster-level crash/restart and wipe/rejoin around an abort storm.
# ---------------------------------------------------------------------------


class TestSagaClusterRecovery:
    def test_crash_between_steps_and_decision(self, tmp_path):
        """The victim crashes holding acked-but-undecided saga steps;
        after restart the abort decision still compensates them."""

        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method="compe", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                victim = cluster.names[-1]
                client = await cluster.client(cluster.names[0])
                await client.increment("acct", 100)
                s1 = await client.update(
                    [DecrementOp("acct", 30)], saga="pay"
                )
                s2 = await client.update(
                    [DecrementOp("acct", 10)], saga="pay"
                )
                await cluster.settle()

                await cluster.kill(victim)
                reply = await client.decide("abort", saga="pay")
                assert sorted(reply["compensated"]) == sorted(
                    [s1["tid"], s2["tid"]]
                )
                await cluster.restart(victim)
                await cluster.settle(timeout=30)
                assert await cluster.converged()
                values = await cluster.site_values()
                assert values[victim]["acct"] == 100
                # The restarted victim compensated each step exactly
                # once — recovery replay did not double-apply.
                stats = await cluster.site_stats()
                assert stats[victim]["compensations"] == 2
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_wipe_mid_storm_rejoins_with_compe_state(self, tmp_path):
        """Disk wipe destroys the victim's compensation log mid-storm;
        the snapshot install must carry the full COMPE tables so later
        decisions and duplicate replays stay correct."""

        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method="compe", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                victim = cluster.names[-1]
                client = await cluster.client(cluster.names[0])
                await client.increment("acct", 100)
                steps = []
                for saga in ("s-a", "s-b"):
                    for _ in range(2):
                        reply = await client.update(
                            [DecrementOp("acct", 5)], saga=saga
                        )
                        steps.append(reply["tid"])
                await cluster.settle()
                await client.decide("abort", saga="s-a")

                await cluster.wipe(victim)
                await client.decide("abort", saga="s-b")
                await cluster.restart(victim)
                await cluster.wait_caught_up(victim, timeout=30)
                await cluster.settle(timeout=30)

                assert await cluster.converged()
                values = await cluster.site_values()
                assert values[victim]["acct"] == 100
                assert cluster.servers[victim].catchup_installs >= 1
                # Re-issuing both decisions at the healed victim moves
                # nothing: its installed decision table gates replays.
                vclient = await cluster.client(victim)
                before = (await cluster.site_stats())[victim][
                    "compensations"
                ]
                for saga in ("s-a", "s-b"):
                    retry = await vclient.decide("abort", saga=saga)
                    assert retry["decided"] == []
                after = (await cluster.site_stats())[victim][
                    "compensations"
                ]
                assert after == before
                await vclient.close()
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_abort_update_is_honest_after_restart(self, tmp_path):
        """abort=True reports COMPENSATED with the undone tid, and the
        effect is invisible everywhere — including a replica that was
        down when it happened."""

        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method="compe", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                victim = cluster.names[-1]
                client = await cluster.client(cluster.names[0])
                await client.increment("acct", 50)
                await cluster.settle()
                await cluster.kill(victim)
                with pytest.raises(LiveETFailed) as failure:
                    await client.update(
                        [DecrementOp("acct", 50)], abort=True
                    )
                assert failure.value.code == "COMPENSATED"
                assert len(failure.value.compensated_tids) == 1
                await cluster.restart(victim)
                await cluster.settle(timeout=30)
                assert await cluster.converged()
                values = await cluster.site_values()
                assert values[victim]["acct"] == 50
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())
