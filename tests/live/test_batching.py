"""Batched, pipelined propagation: end-to-end behaviour tests.

The channel hot path now drains backlogs as multi-MSet ``mset-batch``
frames with a window of batches in flight and cumulative acks.  These
tests exercise that machinery through real sockets: backlogs actually
travel as batches (observable via the ack high-water mark jumping in
steps), extreme knob settings still converge, the legacy single-mset
frame interoperates with a batching receiver, and the ``settle`` verb
blocks server-side instead of clients polling stats.
"""

import asyncio

import pytest

from repro.core.transactions import EpsilonSpec
from repro.live import FaultPlan, LiveCluster
from repro.live.protocol import (
    encode_mset,
    read_frame,
    write_frame,
)
from repro.replica.mset import MSet
from repro.core.operations import IncrementOp


def run(coro):
    return asyncio.run(coro)


KEYS = ["acct0", "acct1", "acct2", "acct3"]


async def _backlogged_drain(cluster, plan, n_updates):
    """Commit a backlog at site0 behind a partition, heal, settle."""
    writer = cluster.names[0]
    client = await cluster.client(writer)
    plan.partition([[writer], cluster.names[1:]])
    for i in range(n_updates):
        await client.increment(KEYS[i % len(KEYS)], 1)
    plan.heal_all()
    await cluster.settle(timeout=60)
    return writer


class TestBatchedDrain:
    @pytest.mark.parametrize("batch_size,window", [(1, 1), (8, 2), (64, 4)])
    def test_backlog_drains_and_converges(self, batch_size, window):
        async def scenario():
            plan = FaultPlan(0)
            cluster = LiveCluster(
                n_sites=3,
                method="commu",
                faults=plan,
                batch_size=batch_size,
                window=window,
                server_options={"retry_base": 0.005, "retry_max": 0.02},
            )
            await cluster.start()
            try:
                await _backlogged_drain(cluster, plan, 60)
                assert await cluster.converged()
                values = (await cluster.site_values())["site0"]
                assert sum(values.get(k, 0) for k in KEYS) == 60
            finally:
                await cluster.stop()

        run(scenario())

    def test_ack_high_water_reaches_backlog_and_counts_msets(self):
        async def scenario():
            plan = FaultPlan(0)
            cluster = LiveCluster(
                n_sites=3,
                method="commu",
                faults=plan,
                batch_size=16,
                window=4,
                server_options={"retry_base": 0.005, "retry_max": 0.02},
            )
            await cluster.start()
            try:
                writer = await _backlogged_drain(cluster, plan, 48)
                stats = (await cluster.site_stats())[writer]
                for peer, info in stats["peers"].items():
                    assert info["ack_high_water"] == 48, peer
                    assert info["acked_msets"] == 48, peer
                    assert info["ack_ms"] is not None, peer
                assert stats["ack_high_water"] == {
                    "site1": 48,
                    "site2": 48,
                }
                assert stats["drained"] is True
            finally:
                await cluster.stop()

        run(scenario())

    def test_tiny_window_large_backlog_still_exact(self):
        """window=1, batch=2 forces many ack round trips; the counters
        must still come out exactly once."""

        async def scenario():
            plan = FaultPlan(0)
            cluster = LiveCluster(
                n_sites=2,
                method="commu",
                faults=plan,
                batch_size=2,
                window=1,
                server_options={"retry_base": 0.005, "retry_max": 0.02},
            )
            await cluster.start()
            try:
                await _backlogged_drain(cluster, plan, 30)
                values = await cluster.site_values()
                for site, snapshot in values.items():
                    assert (
                        sum(snapshot.get(k, 0) for k in KEYS) == 30
                    ), site
            finally:
                await cluster.stop()

        run(scenario())

    def test_batching_survives_lossy_links(self):
        """Drops and reorders under batching: stall-and-resend from the
        cumulative frontier must still deliver exactly once."""
        from repro.live import LinkFaults

        async def scenario():
            plan = FaultPlan(
                3, default=LinkFaults(drop=0.15, reorder=0.2, duplicate=0.1)
            )
            cluster = LiveCluster(
                n_sites=3,
                method="commu",
                faults=plan,
                batch_size=8,
                window=3,
                server_options={
                    "retry_base": 0.01,
                    "retry_max": 0.05,
                    "ack_timeout": 0.2,
                },
            )
            await cluster.start()
            try:
                clients = [
                    await cluster.client(name) for name in cluster.names
                ]
                await asyncio.gather(
                    *(
                        clients[i % 3].increment(KEYS[i % len(KEYS)], 1)
                        for i in range(90)
                    )
                )
                await cluster.settle(timeout=60)
                assert await cluster.converged()
                values = (await cluster.site_values())["site0"]
                assert sum(values.get(k, 0) for k in KEYS) == 90
            finally:
                await cluster.stop()

        run(scenario())


class TestWireInterop:
    def test_legacy_single_mset_sender_accepted(self):
        """An old peer that only speaks single-``mset`` frames gets
        cumulative acks back and its update is applied."""

        async def scenario():
            cluster = LiveCluster(n_sites=2, method="commu")
            await cluster.start()
            try:
                host, port = cluster.addrs["site0"]
                reader, writer = await asyncio.open_connection(host, port)
                # Impersonate site1's channel with the legacy frame.
                await write_frame(
                    writer, {"type": "peer-hello", "src": "site1"}
                )
                mset = MSet(
                    tid="site1:1",
                    ops=(IncrementOp("acct0", 5),),
                    origin="site1",
                )
                await write_frame(
                    writer,
                    {
                        "type": "mset",
                        "src": "site1",
                        "seq": 1,
                        "mset": encode_mset(mset),
                    },
                )
                ack = await asyncio.wait_for(read_frame(reader), timeout=5)
                assert ack == {"type": "ack", "seq": 1}
                writer.close()
                client = await cluster.client("site0")
                assert await client.read("acct0") == 5
            finally:
                await cluster.stop()

        run(scenario())

    def test_duplicate_batch_reacked_not_reapplied(self):
        """A re-sent batch (lost ack) is acknowledged at the frontier
        without double-applying."""

        async def scenario():
            cluster = LiveCluster(n_sites=2, method="commu")
            await cluster.start()
            try:
                host, port = cluster.addrs["site0"]
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(
                    writer, {"type": "peer-hello", "src": "site1"}
                )
                msets = [
                    {
                        "seq": seq,
                        "mset": encode_mset(
                            MSet(
                                tid="site1:%d" % seq,
                                ops=(IncrementOp("acct0", 1),),
                                origin="site1",
                            )
                        ),
                    }
                    for seq in (1, 2, 3)
                ]
                batch = {
                    "type": "mset-batch",
                    "src": "site1",
                    "msets": msets,
                }
                for _ in range(3):  # original + two retries
                    await write_frame(writer, batch)
                    ack = await asyncio.wait_for(
                        read_frame(reader), timeout=5
                    )
                    assert ack == {"type": "ack", "seq": 3}
                writer.close()
                client = await cluster.client("site0")
                assert await client.read("acct0") == 3
            finally:
                await cluster.stop()

        run(scenario())

    def test_gapped_batch_acks_frontier_only(self):
        """A batch starting past the frontier is not applied; the
        cumulative ack tells the sender where to resume."""

        async def scenario():
            cluster = LiveCluster(n_sites=2, method="commu")
            await cluster.start()
            try:
                host, port = cluster.addrs["site0"]
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(
                    writer, {"type": "peer-hello", "src": "site1"}
                )
                batch = {
                    "type": "mset-batch",
                    "src": "site1",
                    "msets": [
                        {
                            "seq": 5,  # frontier is 0: seqs 1-4 missing
                            "mset": encode_mset(
                                MSet(
                                    tid="site1:5",
                                    ops=(IncrementOp("acct0", 1),),
                                    origin="site1",
                                )
                            ),
                        }
                    ],
                }
                await write_frame(writer, batch)
                ack = await asyncio.wait_for(read_frame(reader), timeout=5)
                assert ack == {"type": "ack", "seq": 0}
                writer.close()
                client = await cluster.client("site0")
                assert await client.read("acct0") == 0  # never applied
            finally:
                await cluster.stop()

        run(scenario())


class TestSettleVerb:
    def test_settle_returns_immediately_when_drained(self):
        async def scenario():
            cluster = LiveCluster(n_sites=2, method="commu")
            await cluster.start()
            try:
                client = await cluster.client("site0")
                reply = await client.settle()
                assert reply["drained"] is True
                assert reply["waited"] is False
            finally:
                await cluster.stop()

        run(scenario())

    def test_settle_waits_for_backlog(self):
        async def scenario():
            plan = FaultPlan(0)
            cluster = LiveCluster(
                n_sites=2,
                method="commu",
                faults=plan,
                server_options={"retry_base": 0.005, "retry_max": 0.02},
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                plan.partition([["site0"], ["site1"]])
                await client.increment("acct0", 1)
                settle_task = asyncio.ensure_future(
                    client.settle(timeout=30)
                )
                await asyncio.sleep(0.1)
                assert not settle_task.done()  # blocked on the backlog
                plan.heal_all()
                reply = await settle_task
                assert reply["drained"] is True
                assert reply["waited"] is True
                assert reply["ack_high_water"] == {"site1": 1}
            finally:
                await cluster.stop()

        run(scenario())

    def test_settle_times_out_against_a_dead_peer(self):
        async def scenario():
            plan = FaultPlan(0)
            cluster = LiveCluster(
                n_sites=2, method="commu", faults=plan
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                plan.partition([["site0"], ["site1"]])
                await client.increment("acct0", 1)
                with pytest.raises(Exception) as excinfo:
                    await client.settle(timeout=0.5)
                assert "settle timed out" in str(excinfo.value)
            finally:
                await cluster.stop()

        run(scenario())

    def test_query_reports_degraded_flag(self):
        async def scenario():
            plan = FaultPlan(0)
            cluster = LiveCluster(
                n_sites=2,
                method="commu",
                faults=plan,
                heartbeat_interval=0.05,
                suspect_after=0.2,
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                healthy = await client.query(
                    ["acct0"], EpsilonSpec(import_limit=10)
                )
                assert healthy.degraded is False
                plan.partition([["site0"], ["site1"]])
                await asyncio.sleep(0.5)  # let the detector trip
                outcome = await client.query(
                    ["acct0"], EpsilonSpec(import_limit=10)
                )
                assert outcome.degraded is True
                assert outcome["degraded"] is True  # dict-style too
            finally:
                await cluster.stop()

        run(scenario())
