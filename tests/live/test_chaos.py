"""Chaos-harness integration tests: the paper's invariants under a
seeded schedule of drops, delays, duplications, reordering, one
partition, and one crash/restart — all on a real TCP cluster.

These are the acceptance tests for the robustness subsystem: a run is
correct iff no acknowledged update is lost, no query exceeds its
epsilon budget, the partitioned replica degrades honestly (bounded
queries answer, ``epsilon = 0`` fails fast with ``UNAVAILABLE``), and
all replicas converge to identical state once faults heal.
"""

import asyncio
import time

import pytest

from repro.live import (
    ChaosConfig,
    FaultPlan,
    LinkFaults,
    LiveCluster,
    LiveETFailed,
    run_chaos,
)


def run(coro):
    return asyncio.run(coro)


#: compact but complete schedule: every fault type plus partition+crash.
SMOKE_CONFIG = ChaosConfig(
    seed=7,
    n_sites=3,
    method="commu",
    n_updates=60,
    n_queries=20,
    workload_duration=3.0,
    drop=0.08,
    duplicate=0.05,
    reorder=0.10,
    delay_max=0.01,
    partition_at=0.2,
    partition_duration=1.6,
    crash=True,
    crash_at=2.1,
    crash_duration=0.4,
    settle_timeout=60.0,
)


class TestChaosInvariants:
    def test_seeded_chaos_run_holds_every_invariant(self, tmp_path):
        report = run(run_chaos(SMOKE_CONFIG, data_dir=tmp_path))
        assert report.violations() == [], report.render()
        # The schedule actually injected damage — a chaos run against
        # an accidentally-clean transport proves nothing.
        assert report.fault_counts["dropped"] > 0
        assert report.fault_counts["duplicated"] > 0
        assert report.fault_counts["delayed"] > 0
        assert report.fault_counts["blocked"] > 0  # the partition bit
        # The probes ran: honest degradation was actually observed.
        elapsed, code = report.strict_probe
        assert code == "UNAVAILABLE"
        assert elapsed < 1.0
        assert report.partition_bounded_ok is True
        assert report.converged

    def test_chaos_persists_observability_artifacts(self, tmp_path):
        """With ``artifacts_dir`` the run leaves per-site Prometheus
        text, combined metrics JSON, and the merged lifecycle trace on
        disk, and the trace-derived checks populate the report: the
        partition shows up as degraded gauge flips and bounded queries
        never recorded inconsistency above their limit."""
        import json

        from repro.obs.trace import load_trace_jsonl

        artifacts = tmp_path / "artifacts"
        report = run(
            run_chaos(
                SMOKE_CONFIG,
                data_dir=tmp_path / "data",
                artifacts_dir=artifacts,
            )
        )
        assert report.violations() == [], report.render()
        assert report.degraded_flips >= 1
        assert report.trace_epsilon_breaches == []

        for site in ("site0", "site1", "site2"):
            prom = (artifacts / ("%s.prom" % site)).read_text()
            assert "# TYPE repro_applied_msets_total counter" in prom
            assert 'site="%s"' % site in prom
        combined = json.loads((artifacts / "metrics.json").read_text())
        assert set(combined) == {"site0", "site1", "site2"}
        assert "repro_epsilon_last" in combined["site0"]
        events = load_trace_jsonl(artifacts / "trace.jsonl")
        kinds = {e["kind"] for e in events}
        assert {"update-submit", "update-apply", "update-ack"} <= kinds
        assert "degraded" in kinds
        # Merged trace is in global timestamp order.
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_same_seed_same_fault_pressure(self):
        """The deterministic part of the harness: two plans with one
        seed issue identical per-link fate streams."""
        spec = LinkFaults(drop=0.2, duplicate=0.1, delay_max=0.005)
        one = FaultPlan(seed=SMOKE_CONFIG.seed, default=spec)
        two = FaultPlan(seed=SMOKE_CONFIG.seed, default=spec)
        stream_one = [one.frame_fate("site0", "site1") for _ in range(64)]
        stream_two = [two.frame_fate("site0", "site1") for _ in range(64)]
        assert stream_one == stream_two


class TestDegradedMode:
    def test_partition_degrades_honestly_and_recovers(self, tmp_path):
        """During a partition: epsilon>0 reads answer with bounded
        error, epsilon=0 reads fail typed-UNAVAILABLE in under a
        second; after heal, strict reads work again."""

        async def scenario():
            plan = FaultPlan(seed=1)  # no rate faults: pure partition
            cluster = LiveCluster(
                n_sites=3,
                method="commu",
                data_dir=tmp_path,
                faults=plan,
                heartbeat_interval=0.1,
                suspect_after=0.4,
            )
            await cluster.start()
            try:
                c2 = await cluster.client("site2")
                await c2.increment("x", 1)
                await cluster.settle(timeout=30)

                cluster.partition([["site2"], ["site0", "site1"]])
                await asyncio.sleep(0.8)  # > suspect_after: detector trips

                # Updates keep committing at the isolated replica...
                await c2.increment("x", 1)
                # ...bounded reads keep answering with honest error...
                value = await c2.read("x", epsilon=100)
                assert value == 2
                # ...and strict reads refuse fast instead of hanging.
                t0 = time.monotonic()
                with pytest.raises(LiveETFailed) as excinfo:
                    await c2.read("x", epsilon=0, timeout=5.0)
                assert time.monotonic() - t0 < 1.0
                assert excinfo.value.code == "UNAVAILABLE"
                assert excinfo.value.unavailable

                # Health is visible in stats.
                stats = await c2.stats()
                assert stats["degraded"] is True
                assert stats["peers"]["site0"]["alive"] is False
                assert stats["peers"]["site0"]["staleness"] >= 0.4

                cluster.heal()
                await cluster.settle(timeout=30)
                assert await cluster.converged()
                # Strict service restored once peers are back.
                assert await c2.read("x", epsilon=0) == 2
                stats = await c2.stats()
                assert stats["degraded"] is False
            finally:
                await cluster.stop()

        run(scenario())

    def test_strict_query_in_flight_when_partition_starts(self, tmp_path):
        """A strict query already blocked on divergence control gets
        aborted with UNAVAILABLE when the partition is detected — not
        left hanging until the 30 s query timeout."""

        async def scenario():
            plan = FaultPlan(seed=2)
            cluster = LiveCluster(
                n_sites=3,
                method="commu",
                data_dir=tmp_path,
                faults=plan,
                heartbeat_interval=0.1,
                suspect_after=0.4,
            )
            await cluster.start()
            try:
                c2 = await cluster.client("site2")
                # Sever first so the peers' acks can never release the
                # update's lock-counters...
                cluster.partition([["site2"], ["site0", "site1"]])
                await c2.increment("x", 1)
                # ...then issue the strict query while the detector has
                # not yet tripped: it blocks, then aborts on detection.
                t0 = time.monotonic()
                with pytest.raises(LiveETFailed) as excinfo:
                    await c2.read("x", epsilon=0, timeout=10.0)
                elapsed = time.monotonic() - t0
                assert excinfo.value.code == "UNAVAILABLE"
                assert elapsed < 2.0  # detection + abort, not timeout
                cluster.heal()
                await cluster.settle(timeout=30)
            finally:
                await cluster.stop()

        run(scenario())
