"""Wire codec interop matrix: binary↔binary, binary↔JSON-only peer,
and a mixed-codec cluster under fault pressure — all must converge to
identical applied state, because the codec is transport dressing, not
semantics.

Also pins the wire-vs-durable-log split (channel logs stay JSON lines
no matter what the wire negotiated) and the decode-before-record
ordering: a malformed binary batch must drop the connection *without*
poisoning the inbox log, so a restart replays cleanly.
"""

import asyncio
import json

import pytest

from repro.live import FaultPlan, LiveCluster
from repro.live.protocol import (
    ProtocolError,
    encode_bin_batch_frame,
    payload_blob,
    read_frame,
    write_frame,
)


def run(coro):
    return asyncio.run(coro)


async def _booted(tmp_path, **kwargs):
    cluster = LiveCluster(
        n_sites=kwargs.pop("n_sites", 3),
        method="commu",
        data_dir=tmp_path,
        **kwargs,
    )
    await cluster.start()
    return cluster


async def _drive(cluster, site="site0", n=30):
    client = await cluster.client(site)
    for i in range(n):
        await client.increment("k%d" % (i % 5), i)
    await client.close()
    await cluster.settle(timeout=30)


class TestInteropMatrix:
    def test_binary_to_binary_converges_and_negotiates(self, tmp_path):
        async def scenario():
            cluster = await _booted(tmp_path)
            try:
                # Drive from every site so every outbound channel
                # carries traffic (a full mesh only propagates from
                # the origin).
                for site in ("site0", "site1", "site2"):
                    await _drive(cluster, site=site, n=10)
                assert await cluster.converged()
                stats = await cluster.site_stats()
                for site, stat in stats.items():
                    assert stat["wire"] == "bin1"
                    for peer, info in stat["peers"].items():
                        assert info["wire"] == "bin1", (site, peer)
                # The fast path actually carried the stream: every
                # replica relayed pre-encoded bytes to each peer.
                for site, server in cluster.servers.items():
                    for peer in server.peer_names:
                        assert (
                            server.registry.get_sample(
                                "frames_relayed_total", peer=peer
                            )
                            > 0
                        )
                        assert (
                            server.registry.get_sample(
                                "propagation_frames_total",
                                peer=peer,
                                wire_codec="bin1",
                            )
                            > 0
                        )
            finally:
                await cluster.stop()

        run(scenario())

    def test_binary_peer_falls_back_to_json_only_peer(self, tmp_path):
        """One JSON-pinned replica in a binary cluster: every channel
        touching it stays JSON, the rest go binary, state converges."""

        async def scenario():
            cluster = await _booted(
                tmp_path,
                server_overrides={"site1": {"wire": "json"}},
            )
            try:
                await _drive(cluster, site="site1")
                await _drive(cluster, site="site0", n=10)
                assert await cluster.converged()
                stats = await cluster.site_stats()
                # site1 never advertises nor accepts binary.
                assert stats["site1"]["wire"] == "json"
                for info in stats["site1"]["peers"].values():
                    assert info["wire"] == "json"
                # Binary peers negotiated bin1 among themselves but
                # fell back to JSON toward site1.
                assert stats["site0"]["peers"]["site1"]["wire"] == "json"
                assert stats["site0"]["peers"]["site2"]["wire"] == "bin1"
                assert stats["site2"]["peers"]["site1"]["wire"] == "json"
                assert stats["site2"]["peers"]["site0"]["wire"] == "bin1"
                site0 = cluster.servers["site0"]
                assert (
                    site0.registry.get_sample(
                        "propagation_frames_total",
                        peer="site1",
                        wire_codec="json",
                    )
                    > 0
                )
            finally:
                await cluster.stop()

        run(scenario())

    def test_mixed_cluster_under_faults_converges(self, tmp_path):
        """Drops, duplicates, and reordering on every link of a mixed
        bin1/json cluster: retransmission and cumulative acks are
        codec-independent, and all replicas end bit-identical."""
        from repro.live.faults import LinkFaults

        async def scenario():
            plan = FaultPlan(
                seed=11,
                default=LinkFaults(
                    drop=0.10, duplicate=0.08, reorder=0.15,
                    delay_max=0.005,
                ),
            )
            cluster = await _booted(
                tmp_path,
                faults=plan,
                server_overrides={"site2": {"wire": "json"}},
            )
            try:
                clients = {
                    site: await cluster.client(site)
                    for site in ("site0", "site1", "site2")
                }
                for i in range(40):
                    site = "site%d" % (i % 3)
                    await clients[site].increment("shared", 1)
                for client in clients.values():
                    await client.close()
                # Heal the rate faults: retransmission finishes the job.
                plan.set_default(LinkFaults())
                await cluster.settle(timeout=60)
                assert await cluster.converged()
                values = await cluster.site_values()
                assert values["site0"]["shared"] == 40
            finally:
                await cluster.stop()

        run(scenario())


class TestWireVsDurableLog:
    def test_channel_logs_stay_json_lines_after_binary_propagation(
        self, tmp_path
    ):
        """The binary codec exists only on the wire: after a binary
        run, every outbox/inbox log line is plain JSON, bit-identical
        to a full ``json.dumps`` of its record."""

        async def scenario():
            cluster = await _booted(tmp_path, n_sites=2, fsync=False)
            try:
                await _drive(cluster, n=10)
                stats = await cluster.site_stats()
                assert stats["site0"]["peers"]["site1"]["wire"] == "bin1"
            finally:
                await cluster.stop()

        run(scenario())
        checked = 0
        for log in tmp_path.glob("site*/**/*.log"):
            for line in log.read_text().splitlines():
                record = json.loads(line)  # raises if the log went binary
                if "payload" in record:
                    canonical = json.dumps(
                        {"seq": record["seq"], "payload": record["payload"]},
                        separators=(",", ":"),
                    )
                    assert line == canonical
                    checked += 1
        assert checked > 0, "no channel log records found under %s" % tmp_path

    def test_restart_replays_binary_propagated_records(self, tmp_path):
        """Records that arrived via binary frames must recover exactly
        like JSON-era records (same log format, same replay path)."""

        async def scenario():
            cluster = await _booted(tmp_path, n_sites=2)
            try:
                await _drive(cluster, n=15)
                before = await cluster.site_values()
                await cluster.kill("site1")
                await cluster.restart("site1")
                await cluster.settle(timeout=30)
                assert await cluster.converged()
                after = await cluster.site_values()
                assert after["site1"] == before["site1"]
            finally:
                await cluster.stop()

        run(scenario())


class TestMalformedBinaryBatch:
    def _bad_blob(self):
        # Valid JSON, valid envelope — but the mset inside carries the
        # poisoned amount the decoder sweep rejects.
        return payload_blob(
            {
                "mset": {
                    "tid": "site1:1",
                    "kind": "update",
                    "ops": [{"t": "inc", "key": "x", "amount": "NaN"}],
                    "origin": "site1",
                    "order": None,
                    "txn": None,
                    "info": [],
                }
            }
        )

    def test_malformed_mset_drops_connection_without_poisoning_log(
        self, tmp_path
    ):
        async def scenario():
            cluster = await _booted(tmp_path, n_sites=2)
            try:
                # Quiet the real peer so the forged frames own the seqs.
                await cluster.kill("site1")
                server = cluster.servers["site0"]
                frontier = server.inboxes["site1"].frontier
                host, port = cluster.addrs["site0"]
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(
                    writer, {"type": "peer-hello", "src": "site1"}
                )
                writer.write(
                    encode_bin_batch_frame(
                        "site1", [(frontier + 1, self._bad_blob())]
                    )
                )
                await writer.drain()
                # The server must sever the connection (EOF to us)...
                assert await read_frame(reader) is None
                writer.close()
                # ...count the drop...
                assert (
                    server.registry.get_sample(
                        "frames_dropped_total", reason="malformed_mset"
                    )
                    == 1
                )
                # ...and never durably record the malformed entry.
                assert server.inboxes["site1"].frontier == frontier

                # Decode-before-record: a restart replays the inbox
                # log without tripping over a poisoned record.
                await cluster.kill("site0")
                await cluster.restart("site0")
                assert (
                    cluster.servers["site0"].inboxes["site1"].frontier
                    == frontier
                )
            finally:
                await cluster.stop()

        run(scenario())

    def test_garbage_binary_frame_counted_as_protocol_error(self, tmp_path):
        async def scenario():
            cluster = await _booted(tmp_path, n_sites=2)
            try:
                host, port = cluster.addrs["site0"]
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(
                    writer, {"type": "peer-hello", "src": "site1"}
                )
                # Binary flag set, unknown kind byte: ProtocolError at
                # the framing layer.
                writer.write(b"\x80\x00\x00\x04\x7fjnk")
                await writer.drain()
                assert await read_frame(reader) is None
                writer.close()
                server = cluster.servers["site0"]
                assert (
                    server.registry.get_sample(
                        "frames_dropped_total", reason="protocol_error"
                    )
                    == 1
                )
            finally:
                await cluster.stop()

        run(scenario())
