"""Sharding subsystem tests: hash routing, the epoch-versioned shard
map, cross-group query merging, WRONG_SHARD refusals, and live
epoch-fenced shard migration (clean and with a crash mid-transfer).

The routing function is a wire contract — clients hash keys in other
processes — so its values are pinned both as golden constants and by
re-deriving them in a subprocess.
"""

import asyncio
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.core.operations import IncrementOp, WriteOp
from repro.live import (
    LiveClient,
    LiveETFailed,
    ShardMap,
    ShardedCluster,
    key_shard,
)
from repro.live.chaos import MigrateConfig, run_migrate
from repro.live.shard import group_keys_by_shard


def run(coro):
    return asyncio.run(coro)


SRC_DIR = pathlib.Path(repro.__file__).parents[1]


class TestKeyShard:
    def test_golden_values(self):
        # crc32 is stable across platforms and Python versions; these
        # constants are the published routing contract.
        assert key_shard("acct0", 3) == 1
        assert key_shard("note", 3) == 0
        assert key_shard("k000", 3) == 2
        assert key_shard("acct0", 4) == 2
        assert key_shard("k001", 4) == 3

    def test_every_key_lands_in_range(self):
        for n in (1, 2, 3, 5, 8):
            for i in range(200):
                assert 0 <= key_shard("key%d" % i, n) < n

    def test_stable_across_processes(self):
        # The hash must not depend on PYTHONHASHSEED or any other
        # per-process state: a fresh interpreter derives the same
        # shard for the same key.
        keys = ["acct0", "note", "k000", "k001"]
        script = (
            "from repro.live.shard import key_shard\n"
            "print(','.join(str(key_shard(k, 4)) for k in %r))" % keys
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        env["PYTHONHASHSEED"] = "99"
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert out == ",".join(str(key_shard(k, 4)) for k in keys)

    def test_group_keys_by_shard_partitions(self):
        keys = ["key%d" % i for i in range(40)]
        grouped = group_keys_by_shard(keys, 4)
        assert sorted(k for ks in grouped.values() for k in ks) == sorted(keys)
        for shard, shard_keys in grouped.items():
            assert all(key_shard(k, 4) == shard for k in shard_keys)


class TestShardMap:
    MAP = ShardMap(
        3,
        (
            (("127.0.0.1", 7001), ("127.0.0.1", 7002)),
            (("127.0.0.1", 7003), ("127.0.0.1", 7004)),
        ),
    )

    def test_roundtrip(self):
        assert ShardMap.from_dict(self.MAP.to_dict()) == self.MAP

    def test_shard_of_matches_key_shard(self):
        for key in ("acct0", "note", "k000"):
            assert self.MAP.shard_of(key) == key_shard(key, 2)

    def test_with_group_bumps_epoch_and_swaps_one_group(self):
        moved = self.MAP.with_group(1, [("127.0.0.1", 7009)])
        assert moved.epoch == self.MAP.epoch + 1
        assert moved.groups[0] == self.MAP.groups[0]
        assert moved.groups[1] == ((("127.0.0.1", 7009)),)

    def test_from_dict_rejects_garbage(self):
        with pytest.raises((ValueError, TypeError, KeyError)):
            ShardMap.from_dict({"epoch": "x", "shards": None})


class TestShardedRouting:
    def test_read_many_merges_across_three_shards(self, tmp_path):
        async def scenario():
            cluster = ShardedCluster(
                n_shards=3, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            try:
                router = cluster.router()
                # acct0 / note / k000 hash to shards 1 / 0 / 2: one
                # logical read spans every group.
                await router.increment("acct0", 100)
                await router.write("note", "hello")
                await router.append("k000", "x")
                merged = await router.read_many(["acct0", "note", "k000"])
                result = await router.query(["acct0", "note", "k000"])
                await router.settle()
                strict = await router.read("acct0", epsilon=0)
                stats = await router.stats()
                return merged, result, strict, stats
            finally:
                await cluster.stop()

        merged, result, strict, stats = run(scenario())
        assert merged == {"acct0": 100, "note": "hello", "k000": ["x"]}
        assert strict == 100
        assert result.inconsistency >= 0 and not result.degraded
        # Every shard annotates its stats with its slice of the map.
        assert sorted(
            reply["shard"]["index"] for reply in stats.values()
        ) == [0, 1, 2]

    def test_update_spanning_shards_applies_everywhere(self, tmp_path):
        async def scenario():
            cluster = ShardedCluster(
                n_shards=3, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            try:
                router = cluster.router()
                reply = await router.update(
                    [IncrementOp("acct0", 5), WriteOp("note", True)]
                )
                await router.settle()
                return reply, await router.values()
            finally:
                await cluster.stop()

        reply, values = run(scenario())
        assert reply["applied"] == 2
        assert sorted(reply["shards"]) == [0, 1]
        assert values["acct0"] == 5 and values["note"] is True

    def test_wrong_shard_refused_with_map_hint(self, tmp_path):
        async def scenario():
            cluster = ShardedCluster(
                n_shards=3, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            try:
                group0 = cluster.groups[0]
                host, port = group0.addrs[group0.names[0]]
                client = await LiveClient.connect(
                    host, port, reconnect=False
                )
                try:
                    with pytest.raises(LiveETFailed) as exc_info:
                        # acct0 belongs to shard 1; shard 0 must refuse
                        # rather than silently accept the write.
                        await client.increment("acct0", 1)
                finally:
                    await client.close()
                return exc_info.value
            finally:
                await cluster.stop()

        exc = run(scenario())
        assert exc.wrong_shard
        hint = exc.frame["map"]
        assert hint["epoch"] == 0 and len(hint["shards"]) == 3


class TestMigration:
    def test_clean_migrate_preserves_data_and_bumps_epoch(self, tmp_path):
        async def scenario():
            cluster = ShardedCluster(
                n_shards=2, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            try:
                router = cluster.router()
                for i in range(12):
                    await router.increment("key%d" % i, 1)
                await router.settle()
                old_group = cluster.groups[1]
                old_addr = old_group.addrs[old_group.names[0]]

                new_map = await cluster.migrate(1)

                # The router still holds the epoch-0 map: its next
                # touch of shard 1 is refused WRONG_SHARD with the new
                # map attached, adopted transparently, and retried.
                assert router.map.epoch == 0
                values = await router.read_many(
                    ["key%d" % i for i in range(12)]
                )
                await router.increment("acct0", 1)  # acct0 -> shard 1
                await router.settle()

                stale = await LiveClient.connect(
                    *old_addr, reconnect=False
                )
                try:
                    with pytest.raises(LiveETFailed) as refusal:
                        await stale.read("acct0")
                finally:
                    await stale.close()

                converged = await cluster.converged()
                return (
                    new_map, router, values, refusal.value, converged,
                    await router.values(),
                )
            finally:
                await cluster.stop()

        new_map, router, values, refusal, converged, final = run(scenario())
        assert new_map.epoch == 1
        assert router.map.epoch == 1 and router.map_refreshes >= 1
        assert all(values["key%d" % i] == 1 for i in range(12))
        assert refusal.wrong_shard
        assert converged
        assert final["acct0"] == 1

    def test_restart_after_migration_boots_current_generation(
        self, tmp_path
    ):
        """The shard manifest must steer a restarted cluster to the
        migrated generation's data — booting the retired generation
        would resurrect pre-migration state and orphan acked writes."""

        async def first_life():
            cluster = ShardedCluster(
                n_shards=2, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            try:
                router = cluster.router()
                for i in range(8):
                    await router.increment("acct%d" % i, 1)
                await router.settle()
                await cluster.migrate(1)
                # Post-migration acked writes live only in the new
                # generation's logs.
                await router.increment("acct4", 10)  # acct4 -> shard 1
                await router.settle()
                return cluster.epoch
            finally:
                await cluster.stop()

        async def second_life():
            cluster = ShardedCluster(
                n_shards=2, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            try:
                router = cluster.router()
                values = await router.read_many(
                    ["acct%d" % i for i in range(8)]
                )
                return cluster.epoch, values
            finally:
                await cluster.stop()

        epoch_before = run(first_life())
        epoch_after, values = run(second_life())
        assert values["acct4"] == 11
        assert sum(values.values()) == 18
        # Fresh ports under a fresh boot: the published epoch moves
        # past anything a pre-restart router could be holding.
        assert epoch_after > epoch_before

    def test_mismatched_shard_count_is_refused(self, tmp_path):
        async def scenario():
            cluster = ShardedCluster(
                n_shards=2, replicas=2, data_dir=tmp_path
            )
            await cluster.start()
            await cluster.stop()

        run(scenario())
        with pytest.raises(ValueError, match="2 shards"):
            ShardedCluster(n_shards=3, replicas=2, data_dir=tmp_path)

    def test_crash_during_migration_loses_nothing(self, tmp_path):
        config = MigrateConfig(
            seed=13,
            n_shards=2,
            replicas=2,
            n_updates_before=16,
            n_updates_during=12,
            n_updates_after=12,
            crash_during=True,
        )
        report = run(run_migrate(config, data_dir=tmp_path))
        assert report.violations() == [], report.render()
        assert report.epoch_after > report.epoch_before
        # The replacement group really rebuilt itself through the
        # snapshot-transfer machinery (one install per replica).
        assert report.new_group_installs >= config.replicas
        assert report.router_map_refreshes >= 1
