"""Wire protocol tests: framing and payload codecs."""

import asyncio
import json
import random
import struct

import pytest

from repro.core.operations import (
    AppendOp,
    DecrementOp,
    DivideOp,
    IncrementOp,
    MultiplyOp,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
)
from repro.core.transactions import EpsilonSpec, UNLIMITED
from repro.live.protocol import (
    MAX_BATCH_ENTRIES,
    MAX_FRAME,
    SUPPORTED_WIRES,
    WIRE_BIN1,
    ProtocolError,
    decode_batch_frame,
    decode_bin_frame,
    decode_mset,
    decode_op,
    decode_ops,
    decode_spec,
    encode_batch_frame,
    encode_bin_ack_frame,
    encode_bin_batch_frame,
    encode_frame,
    encode_mset,
    encode_op,
    encode_ops,
    encode_spec,
    negotiate_wire,
    payload_blob,
    read_frame,
    write_frames,
)
from repro.replica.mset import MSet


def _feed(*payloads: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for payload in payloads:
        reader.feed_data(payload)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame({"type": "ping", "n": 7})

        async def scenario():
            return await read_frame(_feed(frame))

        assert asyncio.run(scenario()) == {"type": "ping", "n": 7}

    def test_many_frames_in_sequence(self):
        frames = [encode_frame({"i": i}) for i in range(5)]

        async def scenario():
            reader = _feed(*frames)
            return [await read_frame(reader) for _ in range(6)]

        got = asyncio.run(scenario())
        assert got[:5] == [{"i": i} for i in range(5)]
        assert got[5] is None  # clean EOF after the last frame

    def test_eof_mid_frame_is_none(self):
        frame = encode_frame({"big": "x" * 100})

        async def scenario():
            return await read_frame(_feed(frame[:20]))

        assert asyncio.run(scenario()) is None

    def test_oversized_length_rejected(self):
        header = struct.pack(">I", MAX_FRAME + 1)

        async def scenario():
            return await read_frame(_feed(header))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_undecodable_body_rejected(self):
        junk = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"

        async def scenario():
            return await read_frame(_feed(junk))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_non_object_payload_rejected(self):
        frame = struct.pack(">I", 7) + b"[1,2,3]"

        async def scenario():
            return await read_frame(_feed(frame))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())


class TestOperationCodec:
    OPS = [
        ReadOp("k"),
        WriteOp("k", "v"),
        WriteOp("k", None),
        IncrementOp("k", 3),
        DecrementOp("k", 1.5),
        MultiplyOp("k", 2),
        DivideOp("k", 4),
        AppendOp("log", {"event": "x"}),
        TimestampedWriteOp("k", 9, (3, "site1")),
    ]

    @pytest.mark.parametrize("op", OPS, ids=lambda o: type(o).__name__)
    def test_roundtrip(self, op):
        decoded = decode_op(encode_op(op))
        assert type(decoded) is type(op)
        assert decoded.key == op.key

    def test_batch_roundtrip_preserves_order(self):
        decoded = decode_ops(encode_ops(self.OPS))
        assert [type(op) for op in decoded] == [type(op) for op in self.OPS]

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode_op({"t": "frobnicate", "key": "k"})

    def test_missing_key_rejected(self):
        with pytest.raises(ProtocolError):
            decode_op({"t": "inc"})


class TestSpecCodec:
    def test_unlimited_encodes_as_null(self):
        data = encode_spec(EpsilonSpec())
        assert data == {"import": None, "export": None, "value": None}
        spec = decode_spec(data)
        assert spec.import_limit == UNLIMITED
        assert spec.value_limit == UNLIMITED

    def test_finite_limits_roundtrip(self):
        spec = EpsilonSpec(import_limit=3, export_limit=0, value_limit=2.5)
        back = decode_spec(encode_spec(spec))
        assert back.import_limit == 3
        assert back.export_limit == 0
        assert back.value_limit == 2.5

    def test_missing_spec_is_unlimited(self):
        spec = decode_spec(None)
        assert spec.import_limit == UNLIMITED


class TestMSetCodec:
    def test_roundtrip(self):
        mset = MSet(
            tid="site0:4",
            kind="update",
            ops=(IncrementOp("x", 2), AppendOp("log", "e")),
            origin="site0",
            order=(17,),
            txn_number=4,
            info=(("reads", ["x"]),),
        )
        back = decode_mset(encode_mset(mset))
        assert back.tid == "site0:4"
        assert back.origin == "site0"
        assert back.order == (17,)
        assert back.txn_number == 4
        assert [type(op) for op in back.ops] == [IncrementOp, AppendOp]
        assert dict(back.info)["reads"] == ["x"]

    def test_orderless_mset_roundtrip(self):
        mset = MSet(tid="site1:1", ops=(WriteOp("y", 5),), origin="site1")
        back = decode_mset(encode_mset(mset))
        assert back.order is None
        assert back.ops[0].value == 5


class TestBatchFrames:
    def _mset_payload(self, n):
        return encode_mset(
            MSet(
                tid="site0:%d" % n,
                ops=(IncrementOp("x", n),),
                origin="site0",
            )
        )

    def test_roundtrip(self):
        entries = [(seq, self._mset_payload(seq)) for seq in (4, 5, 6)]
        frame = encode_batch_frame("site0", entries)
        assert frame["type"] == "mset-batch"
        assert frame["src"] == "site0"
        back = decode_batch_frame(frame)
        assert [seq for seq, _ in back] == [4, 5, 6]
        assert decode_mset(back[0][1]).ops[0].amount == 4

    def test_survives_the_wire(self):
        entries = [(1, self._mset_payload(1)), (2, self._mset_payload(2))]
        frame = encode_batch_frame("site0", entries)

        async def scenario():
            return await read_frame(_feed(encode_frame(frame)))

        assert decode_batch_frame(asyncio.run(scenario())) == tuple(
            (seq, payload) for seq, payload in entries
        )

    def test_empty_batch_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_batch_frame("site0", [])

    def test_empty_batch_rejected_on_decode(self):
        with pytest.raises(ProtocolError):
            decode_batch_frame(
                {"type": "mset-batch", "src": "site0", "msets": []}
            )
        with pytest.raises(ProtocolError):
            decode_batch_frame({"type": "mset-batch", "src": "site0"})

    def test_oversize_batch_rejected_both_ways(self):
        entries = [(i, {"tid": "t%d" % i}) for i in range(1, MAX_BATCH_ENTRIES + 2)]
        with pytest.raises(ProtocolError):
            encode_batch_frame("site0", entries)
        with pytest.raises(ProtocolError):
            decode_batch_frame(
                {
                    "type": "mset-batch",
                    "src": "site0",
                    "msets": [
                        {"seq": seq, "mset": payload}
                        for seq, payload in entries
                    ],
                }
            )

    def test_legacy_mset_frame_decodes_as_one_entry_batch(self):
        """Mixed-version interop: an old peer's single-mset frame goes
        through the same receive entry point as a batch."""
        payload = self._mset_payload(9)
        frame = {"type": "mset", "src": "site1", "seq": 9, "mset": payload}
        assert decode_batch_frame(frame) == ((9, payload),)

    def test_malformed_entries_rejected(self):
        for bad in (
            [{"seq": "x", "mset": {}}],  # non-int seq
            [{"seq": 1, "mset": "nope"}],  # non-dict mset
            [{"seq": 1}],  # missing mset
            ["not-a-dict"],
        ):
            with pytest.raises(ProtocolError):
                decode_batch_frame(
                    {"type": "mset-batch", "src": "s", "msets": bad}
                )

    def test_batch_frame_respects_max_frame(self):
        """A batch whose encoding exceeds MAX_FRAME is refused at the
        framing layer (senders budget batches well under the cap)."""
        big = "v" * (MAX_FRAME // 4)
        frame = encode_batch_frame(
            "site0", [(i, {"blob": big}) for i in range(1, 6)]
        )
        with pytest.raises(ProtocolError):
            encode_frame(frame)

    def test_write_frames_coalesces_on_the_wire(self):
        """Several frames written as one burst read back individually."""
        frames = [{"i": i} for i in range(4)]

        class _Sink:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            async def drain(self):
                pass

        async def scenario():
            sink = _Sink()
            await write_frames(sink, frames)
            assert len(sink.chunks) == 1  # single buffered write
            reader = _feed(b"".join(sink.chunks))
            return [await read_frame(reader) for _ in range(5)]

        got = asyncio.run(scenario())
        assert got == frames + [None]

class TestBinaryFraming:
    """The bin1 codec: struct envelopes around opaque payload blobs."""

    def _blob(self, n):
        return payload_blob(
            {
                "mset": encode_mset(
                    MSet(
                        tid="site0:%d" % n,
                        ops=(IncrementOp("x", n),),
                        origin="site0",
                    )
                )
            }
        )

    def test_batch_roundtrip_over_the_wire(self):
        entries = [(seq, self._blob(seq)) for seq in (4, 5, 6)]
        data = encode_bin_batch_frame("site0", entries)

        async def scenario():
            return await read_frame(_feed(data))

        frame = asyncio.run(scenario())
        assert frame["type"] == "mset-batch"
        assert frame["src"] == "site0"
        assert list(frame["blobs"]) == entries
        # The relayed blob is bit-identical JSON: decoding it yields
        # exactly the payload the sender encoded.
        payload = json.loads(frame["blobs"][0][1])
        assert decode_mset(payload["mset"]).ops[0].amount == 4

    def test_ack_roundtrip_over_the_wire(self):
        async def scenario():
            return await read_frame(_feed(encode_bin_ack_frame(712)))

        assert asyncio.run(scenario()) == {"type": "ack", "seq": 712}

    def test_binary_and_json_frames_interleave(self):
        """Frames are self-describing: a reader handles a mid-stream
        codec switch with no negotiation state."""
        stream = (
            encode_frame({"type": "ping"})
            + encode_bin_ack_frame(3)
            + encode_frame({"type": "hb", "src": "s"})
            + encode_bin_batch_frame("s", [(1, self._blob(1))])
        )

        async def scenario():
            reader = _feed(stream)
            return [await read_frame(reader) for _ in range(5)]

        got = asyncio.run(scenario())
        assert [f and f.get("type") for f in got] == [
            "ping", "ack", "hb", "mset-batch", None,
        ]

    def test_empty_batch_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_bin_batch_frame("site0", [])

    def test_oversize_batch_rejected_both_ways(self):
        blob = b"{}"
        entries = [(i, blob) for i in range(1, MAX_BATCH_ENTRIES + 2)]
        with pytest.raises(ProtocolError):
            encode_bin_batch_frame("site0", entries)

    def test_oversize_frame_rejected_on_encode(self):
        big = b"x" * (MAX_FRAME // 2)
        with pytest.raises(ProtocolError):
            encode_bin_batch_frame("site0", [(1, big), (2, big), (3, big)])

    def test_oversized_binary_length_rejected(self):
        header = struct.pack(">I", 0x80000000 | (MAX_FRAME + 1))

        async def scenario():
            return await read_frame(_feed(header))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_eof_mid_binary_body_is_none(self):
        data = encode_bin_batch_frame("site0", [(1, self._blob(1))])

        async def scenario():
            return await read_frame(_feed(data[: len(data) - 3]))

        assert asyncio.run(scenario()) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            decode_bin_frame(b"\x7fjunk")

    def test_empty_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_bin_frame(b"")

    def test_truncated_ack_rejected(self):
        body = encode_bin_ack_frame(9)[4:]
        with pytest.raises(ProtocolError):
            decode_bin_frame(body[:-2])

    def test_truncations_rejected(self):
        data = encode_bin_batch_frame(
            "site0", [(1, self._blob(1)), (2, self._blob(2))]
        )
        body = data[4:]
        # Every strict prefix of the body is either a truncated header,
        # src, entry header, or blob — all must raise, never crash.
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                decode_bin_frame(body[:cut])

    def test_trailing_bytes_rejected(self):
        data = encode_bin_batch_frame("site0", [(1, self._blob(1))])
        with pytest.raises(ProtocolError):
            decode_bin_frame(data[4:] + b"!")

    def test_zero_entry_count_rejected(self):
        body = struct.pack(">BHI", 1, 1, 0) + b"s"
        with pytest.raises(ProtocolError):
            decode_bin_frame(body)

    def test_huge_entry_count_rejected(self):
        body = struct.pack(">BHI", 1, 1, MAX_BATCH_ENTRIES + 1) + b"s"
        with pytest.raises(ProtocolError):
            decode_bin_frame(body)


class TestWireNegotiation:
    def test_picks_supported_codec(self):
        assert negotiate_wire(["bin1"]) == WIRE_BIN1
        assert negotiate_wire(["future9", "bin1"]) == WIRE_BIN1
        assert negotiate_wire(list(SUPPORTED_WIRES)) == WIRE_BIN1

    def test_no_overlap_stays_json(self):
        assert negotiate_wire(["future9"]) is None
        assert negotiate_wire([]) is None

    def test_malformed_advert_is_tolerated(self):
        # Old peers / future extensions must never turn the hello into
        # an error: wrong types mean "no advert", not a protocol fault.
        for advert in (None, "bin1", 7, {"bin1": True}, True):
            assert negotiate_wire(advert) is None


class TestDecoderHardening:
    """Regression pins for the decoder bugfix sweep: malformed peer
    payloads must raise ProtocolError, never slip through as corrupt
    values or escape as untyped exceptions."""

    def test_string_amount_rejected(self):
        # Previously IncrementOp(amount='NaN') decoded "successfully"
        # and poisoned the store value on first apply.
        with pytest.raises(ProtocolError):
            decode_op({"t": "inc", "key": "k", "amount": "NaN"})

    def test_bool_amount_rejected(self):
        with pytest.raises(ProtocolError):
            decode_op({"t": "inc", "key": "k", "amount": True})

    def test_non_finite_amount_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ProtocolError):
                decode_op({"t": "dec", "key": "k", "amount": bad})

    @pytest.mark.parametrize("tag", ["inc", "dec", "mul", "div"])
    def test_all_arithmetic_tags_validate_amount(self, tag):
        with pytest.raises(ProtocolError):
            decode_op({"t": tag, "key": "k", "amount": [1]})

    def test_missing_amount_defaults_to_zero(self):
        assert decode_op({"t": "inc", "key": "k"}).amount == 0

    def test_wrong_arity_ts_rejected(self):
        # Previously ts=[1] decoded to timestamp=(1,), which compares
        # nonsensically against every well-formed (time, site) pair.
        for bad in ([1], [1, 2, 3], [], "12", 7):
            with pytest.raises(ProtocolError):
                decode_op(
                    {"t": "tswrite", "key": "k", "value": 1, "ts": bad}
                )

    def test_non_dict_op_rejected(self):
        for bad in (["t", "inc"], "inc", 3, None):
            with pytest.raises(ProtocolError):
                decode_op(bad)

    def test_non_sequence_ops_rejected(self):
        with pytest.raises(ProtocolError):
            decode_ops({"t": "inc"})

    def test_malformed_info_pair_rejected(self):
        # Previously raised a bare ValueError (dict() on a 1-tuple),
        # escaping the receive loop's ProtocolError handling.
        data = encode_mset(
            MSet(tid="t", ops=(WriteOp("k", 1),), origin="s")
        )
        data["info"] = [["a"]]
        with pytest.raises(ProtocolError):
            decode_mset(data)

    def test_malformed_mset_fields_rejected(self):
        base = encode_mset(
            MSet(tid="t", ops=(WriteOp("k", 1),), origin="s")
        )
        for field, bad in (
            ("ops", {"not": "a list"}),
            ("ops", [["not-a-dict"]]),
            ("order", "abc-not-a-seq-wait-it-is"),
            ("order", 7),
            ("info", 3),
            ("info", [["a", "b", "c"]]),
            ("kind", 7),
            ("origin", ["s"]),
        ):
            data = dict(base)
            data[field] = bad
            if field == "order" and isinstance(bad, str):
                # strings are sequences; the typed check must still
                # refuse them explicitly
                with pytest.raises(ProtocolError):
                    decode_mset(data)
                continue
            with pytest.raises(ProtocolError):
                decode_mset(data)

    def test_non_dict_mset_rejected(self):
        for bad in (None, [], "mset", 9):
            with pytest.raises(ProtocolError):
                decode_mset(bad)

    def test_non_numeric_epsilon_limit_rejected(self):
        with pytest.raises(ProtocolError):
            decode_spec({"import": "lots"})
        with pytest.raises(ProtocolError):
            decode_spec({"value": [1]})


class TestCodecProperties:
    """Seeded-random roundtrip properties and byte-mutation fuzz."""

    def _random_op(self, rng):
        key = "k%d" % rng.randrange(20)
        choice = rng.randrange(7)
        if choice == 0:
            return ReadOp(key)
        if choice == 1:
            return WriteOp(key, rng.choice([None, 1, "v", [1, 2], {"a": 1}]))
        if choice == 2:
            return IncrementOp(key, rng.randrange(-100, 100))
        if choice == 3:
            return DecrementOp(key, rng.random() * 50)
        if choice == 4:
            return MultiplyOp(key, rng.randrange(1, 5))
        if choice == 5:
            return AppendOp(key, {"n": rng.randrange(10)})
        return TimestampedWriteOp(
            key, rng.randrange(100), (rng.randrange(50), "s%d" % rng.randrange(4))
        )

    def _random_mset(self, rng, n):
        ops = tuple(self._random_op(rng) for _ in range(rng.randrange(1, 6)))
        return MSet(
            tid="s%d:%d" % (rng.randrange(4), n),
            kind=rng.choice(["update", "commit"]),
            ops=ops,
            origin="s%d" % rng.randrange(4),
            order=rng.choice([None, (rng.randrange(100),)]),
            txn_number=rng.choice([None, n]),
            info=rng.choice([(), (("reads", ["x"]),)]),
        )

    def test_op_roundtrip_property(self):
        rng = random.Random(0xC0DEC)
        for _ in range(300):
            op = self._random_op(rng)
            back = decode_op(encode_op(op))
            assert type(back) is type(op)
            assert back.key == op.key
            assert encode_op(back) == encode_op(op)

    def test_mset_roundtrip_property(self):
        rng = random.Random(0xC0DEC + 1)
        for n in range(100):
            mset = self._random_mset(rng, n)
            back = decode_mset(encode_mset(mset))
            assert encode_mset(back) == encode_mset(mset)

    def test_spec_roundtrip_property(self):
        rng = random.Random(0xC0DEC + 2)
        for _ in range(100):
            spec = EpsilonSpec(
                import_limit=rng.choice([UNLIMITED, 0, 1, 2.5, 100]),
                export_limit=rng.choice([UNLIMITED, 0, 3]),
                value_limit=rng.choice([UNLIMITED, 0.5, 7]),
            )
            back = decode_spec(encode_spec(spec))
            assert encode_spec(back) == encode_spec(spec)

    def test_batch_frame_roundtrip_property_both_codecs(self):
        rng = random.Random(0xC0DEC + 3)
        for _ in range(30):
            entries = [
                (seq, encode_mset(self._random_mset(rng, seq)))
                for seq in range(1, rng.randrange(2, 12))
            ]
            # JSON form
            back = decode_batch_frame(encode_batch_frame("s0", entries))
            assert list(back) == entries
            # binary form relays canonical payload bytes bit-for-bit
            blobs = [
                (seq, payload_blob({"mset": mset})) for seq, mset in entries
            ]
            frame = decode_bin_frame(
                encode_bin_batch_frame("s0", blobs)[4:]
            )
            assert list(frame["blobs"]) == blobs
            decoded = [
                (seq, json.loads(blob)["mset"])
                for seq, blob in frame["blobs"]
            ]
            assert decoded == entries

    def test_byte_mutation_fuzz_never_crashes_untyped(self):
        """Flipping arbitrary bytes in valid frames must only ever
        produce a frame, None (EOF), or ProtocolError — anything else
        would kill a connection task with an unhandled exception."""
        rng = random.Random(0xF022)
        mset = encode_mset(
            MSet(tid="s0:1", ops=(IncrementOp("x", 1),), origin="s0")
        )
        seeds = [
            encode_frame({"type": "ack", "seq": 7}),
            encode_frame(
                encode_batch_frame("s0", [(1, mset), (2, mset)])
            ),
            encode_bin_ack_frame(7),
            encode_bin_batch_frame(
                "s0", [(1, payload_blob({"mset": mset}))]
            ),
        ]

        async def poke(data):
            return await read_frame(_feed(data))

        for _ in range(400):
            data = bytearray(rng.choice(seeds))
            for _ in range(rng.randrange(1, 4)):
                data[rng.randrange(len(data))] = rng.randrange(256)
            try:
                frame = asyncio.run(poke(bytes(data)))
            except ProtocolError:
                continue
            assert frame is None or isinstance(frame, dict)
