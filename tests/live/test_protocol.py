"""Wire protocol tests: framing and payload codecs."""

import asyncio
import struct

import pytest

from repro.core.operations import (
    AppendOp,
    DecrementOp,
    DivideOp,
    IncrementOp,
    MultiplyOp,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
)
from repro.core.transactions import EpsilonSpec, UNLIMITED
from repro.live.protocol import (
    MAX_BATCH_ENTRIES,
    MAX_FRAME,
    ProtocolError,
    decode_batch_frame,
    decode_mset,
    decode_op,
    decode_ops,
    decode_spec,
    encode_batch_frame,
    encode_frame,
    encode_mset,
    encode_op,
    encode_ops,
    encode_spec,
    read_frame,
    write_frames,
)
from repro.replica.mset import MSet


def _feed(*payloads: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for payload in payloads:
        reader.feed_data(payload)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame({"type": "ping", "n": 7})

        async def scenario():
            return await read_frame(_feed(frame))

        assert asyncio.run(scenario()) == {"type": "ping", "n": 7}

    def test_many_frames_in_sequence(self):
        frames = [encode_frame({"i": i}) for i in range(5)]

        async def scenario():
            reader = _feed(*frames)
            return [await read_frame(reader) for _ in range(6)]

        got = asyncio.run(scenario())
        assert got[:5] == [{"i": i} for i in range(5)]
        assert got[5] is None  # clean EOF after the last frame

    def test_eof_mid_frame_is_none(self):
        frame = encode_frame({"big": "x" * 100})

        async def scenario():
            return await read_frame(_feed(frame[:20]))

        assert asyncio.run(scenario()) is None

    def test_oversized_length_rejected(self):
        header = struct.pack(">I", MAX_FRAME + 1)

        async def scenario():
            return await read_frame(_feed(header))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_undecodable_body_rejected(self):
        junk = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"

        async def scenario():
            return await read_frame(_feed(junk))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_non_object_payload_rejected(self):
        frame = struct.pack(">I", 7) + b"[1,2,3]"

        async def scenario():
            return await read_frame(_feed(frame))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())


class TestOperationCodec:
    OPS = [
        ReadOp("k"),
        WriteOp("k", "v"),
        WriteOp("k", None),
        IncrementOp("k", 3),
        DecrementOp("k", 1.5),
        MultiplyOp("k", 2),
        DivideOp("k", 4),
        AppendOp("log", {"event": "x"}),
        TimestampedWriteOp("k", 9, (3, "site1")),
    ]

    @pytest.mark.parametrize("op", OPS, ids=lambda o: type(o).__name__)
    def test_roundtrip(self, op):
        decoded = decode_op(encode_op(op))
        assert type(decoded) is type(op)
        assert decoded.key == op.key

    def test_batch_roundtrip_preserves_order(self):
        decoded = decode_ops(encode_ops(self.OPS))
        assert [type(op) for op in decoded] == [type(op) for op in self.OPS]

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode_op({"t": "frobnicate", "key": "k"})

    def test_missing_key_rejected(self):
        with pytest.raises(ProtocolError):
            decode_op({"t": "inc"})


class TestSpecCodec:
    def test_unlimited_encodes_as_null(self):
        data = encode_spec(EpsilonSpec())
        assert data == {"import": None, "export": None, "value": None}
        spec = decode_spec(data)
        assert spec.import_limit == UNLIMITED
        assert spec.value_limit == UNLIMITED

    def test_finite_limits_roundtrip(self):
        spec = EpsilonSpec(import_limit=3, export_limit=0, value_limit=2.5)
        back = decode_spec(encode_spec(spec))
        assert back.import_limit == 3
        assert back.export_limit == 0
        assert back.value_limit == 2.5

    def test_missing_spec_is_unlimited(self):
        spec = decode_spec(None)
        assert spec.import_limit == UNLIMITED


class TestMSetCodec:
    def test_roundtrip(self):
        mset = MSet(
            tid="site0:4",
            kind="update",
            ops=(IncrementOp("x", 2), AppendOp("log", "e")),
            origin="site0",
            order=(17,),
            txn_number=4,
            info=(("reads", ["x"]),),
        )
        back = decode_mset(encode_mset(mset))
        assert back.tid == "site0:4"
        assert back.origin == "site0"
        assert back.order == (17,)
        assert back.txn_number == 4
        assert [type(op) for op in back.ops] == [IncrementOp, AppendOp]
        assert dict(back.info)["reads"] == ["x"]

    def test_orderless_mset_roundtrip(self):
        mset = MSet(tid="site1:1", ops=(WriteOp("y", 5),), origin="site1")
        back = decode_mset(encode_mset(mset))
        assert back.order is None
        assert back.ops[0].value == 5


class TestBatchFrames:
    def _mset_payload(self, n):
        return encode_mset(
            MSet(
                tid="site0:%d" % n,
                ops=(IncrementOp("x", n),),
                origin="site0",
            )
        )

    def test_roundtrip(self):
        entries = [(seq, self._mset_payload(seq)) for seq in (4, 5, 6)]
        frame = encode_batch_frame("site0", entries)
        assert frame["type"] == "mset-batch"
        assert frame["src"] == "site0"
        back = decode_batch_frame(frame)
        assert [seq for seq, _ in back] == [4, 5, 6]
        assert decode_mset(back[0][1]).ops[0].amount == 4

    def test_survives_the_wire(self):
        entries = [(1, self._mset_payload(1)), (2, self._mset_payload(2))]
        frame = encode_batch_frame("site0", entries)

        async def scenario():
            return await read_frame(_feed(encode_frame(frame)))

        assert decode_batch_frame(asyncio.run(scenario())) == tuple(
            (seq, payload) for seq, payload in entries
        )

    def test_empty_batch_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_batch_frame("site0", [])

    def test_empty_batch_rejected_on_decode(self):
        with pytest.raises(ProtocolError):
            decode_batch_frame(
                {"type": "mset-batch", "src": "site0", "msets": []}
            )
        with pytest.raises(ProtocolError):
            decode_batch_frame({"type": "mset-batch", "src": "site0"})

    def test_oversize_batch_rejected_both_ways(self):
        entries = [(i, {"tid": "t%d" % i}) for i in range(1, MAX_BATCH_ENTRIES + 2)]
        with pytest.raises(ProtocolError):
            encode_batch_frame("site0", entries)
        with pytest.raises(ProtocolError):
            decode_batch_frame(
                {
                    "type": "mset-batch",
                    "src": "site0",
                    "msets": [
                        {"seq": seq, "mset": payload}
                        for seq, payload in entries
                    ],
                }
            )

    def test_legacy_mset_frame_decodes_as_one_entry_batch(self):
        """Mixed-version interop: an old peer's single-mset frame goes
        through the same receive entry point as a batch."""
        payload = self._mset_payload(9)
        frame = {"type": "mset", "src": "site1", "seq": 9, "mset": payload}
        assert decode_batch_frame(frame) == ((9, payload),)

    def test_malformed_entries_rejected(self):
        for bad in (
            [{"seq": "x", "mset": {}}],  # non-int seq
            [{"seq": 1, "mset": "nope"}],  # non-dict mset
            [{"seq": 1}],  # missing mset
            ["not-a-dict"],
        ):
            with pytest.raises(ProtocolError):
                decode_batch_frame(
                    {"type": "mset-batch", "src": "s", "msets": bad}
                )

    def test_batch_frame_respects_max_frame(self):
        """A batch whose encoding exceeds MAX_FRAME is refused at the
        framing layer (senders budget batches well under the cap)."""
        big = "v" * (MAX_FRAME // 4)
        frame = encode_batch_frame(
            "site0", [(i, {"blob": big}) for i in range(1, 6)]
        )
        with pytest.raises(ProtocolError):
            encode_frame(frame)

    def test_write_frames_coalesces_on_the_wire(self):
        """Several frames written as one burst read back individually."""
        frames = [{"i": i} for i in range(4)]

        class _Sink:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            async def drain(self):
                pass

        async def scenario():
            sink = _Sink()
            await write_frames(sink, frames)
            assert len(sink.chunks) == 1  # single buffered write
            reader = _feed(b"".join(sink.chunks))
            return [await read_frame(reader) for _ in range(5)]

        got = asyncio.run(scenario())
        assert got == frames + [None]
