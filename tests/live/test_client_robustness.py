"""Client robustness: timeouts, reconnect, failover, and the
no-leaked-future guarantee on failed sends."""

import asyncio
import socket

import pytest

import repro.live.client as client_module
from repro.live import LiveCluster, LiveETFailed
from repro.live.client import LiveClient, RequestTimeout
from repro.live.server import ReplicaServer


def run(coro):
    return asyncio.run(coro)


def _free_port() -> int:
    """A port that was free a moment ago (nothing listens on it)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestFailedSendLeavesNoOrphanFuture:
    def test_send_failure_pops_the_waiting_future(
        self, tmp_path, monkeypatch
    ):
        """A request whose send raises must not leak its future in
        ``_waiting`` (the leak would pin memory and could mismatch a
        later response to the wrong caller)."""

        async def scenario():
            cluster = LiveCluster(n_sites=1, method="commu", data_dir=tmp_path)
            await cluster.start()
            try:
                client = await cluster.client("site0", reconnect=False)
                real_write_frame = client_module.write_frame
                calls = {"n": 0}

                async def flaky_write_frame(writer, obj):
                    if obj.get("type") == "request":
                        calls["n"] += 1
                        if calls["n"] == 1:
                            raise ConnectionResetError("boom mid-send")
                    await real_write_frame(writer, obj)

                monkeypatch.setattr(
                    client_module, "write_frame", flaky_write_frame
                )
                with pytest.raises(ConnectionError):
                    await client.ping()
                assert client._waiting == {}
                # The connection itself survived (nothing was written):
                # the next request must work and clean up after itself.
                reply = await client.ping()
                assert reply["site"] == "site0"
                assert client._waiting == {}
            finally:
                await cluster.stop()

        run(scenario())


class TestRequestTimeout:
    def test_unanswered_request_times_out(self):
        """A server that accepts but never replies must not hang the
        client past its per-request deadline."""

        async def scenario():
            async def black_hole(reader, writer):
                try:
                    while await reader.read(4096):
                        pass
                finally:
                    writer.close()

            server = await asyncio.start_server(
                black_hole, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                client = await LiveClient.connect("127.0.0.1", port)
                with pytest.raises(RequestTimeout):
                    await client.request("ping", timeout=0.2)
                assert client._waiting == {}
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())


class TestReconnect:
    def test_client_redials_a_restarted_server(self, tmp_path):
        async def scenario():
            server = ReplicaServer(
                "solo", peers=["solo"], data_dir=tmp_path / "a"
            )
            port = await server.bind("127.0.0.1", 0)
            client = await LiveClient.connect(
                "127.0.0.1", port, request_timeout=5.0
            )
            assert (await client.ping())["site"] == "solo"
            await server.stop()

            # Same address, fresh process-equivalent: reconnect works.
            server2 = ReplicaServer(
                "solo", peers=["solo"], data_dir=tmp_path / "b"
            )
            await server2.bind("127.0.0.1", port)
            try:
                assert (await client.ping())["site"] == "solo"
                assert client.reconnects >= 1
            finally:
                await client.close()
                await server2.stop()

        run(scenario())

    def test_no_reconnect_when_disabled(self, tmp_path):
        async def scenario():
            server = ReplicaServer(
                "solo", peers=["solo"], data_dir=tmp_path
            )
            port = await server.bind("127.0.0.1", 0)
            client = await LiveClient.connect(
                "127.0.0.1", port, reconnect=False
            )
            await client.ping()
            await server.stop()
            await asyncio.sleep(0.05)
            with pytest.raises((ConnectionError, LiveETFailed)):
                await client.ping()
            await client.close()

        run(scenario())


class TestFailover:
    def test_dead_primary_fails_over_to_live_replica(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(n_sites=1, method="commu", data_dir=tmp_path)
            await cluster.start()
            try:
                dead = _free_port()
                host, live = cluster.addrs["site0"]
                client = await LiveClient.connect(
                    "127.0.0.1",
                    dead,
                    failover=[(host, live)],
                    request_timeout=5.0,
                )
                reply = await client.ping()
                assert reply["site"] == "site0"
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_updates_are_not_retried_by_default(self, tmp_path):
        """An update that dies on the wire surfaces the error rather
        than risking double-application via blind re-submission."""

        async def scenario():
            server = ReplicaServer(
                "solo", peers=["solo"], data_dir=tmp_path
            )
            port = await server.bind("127.0.0.1", 0)
            client = await LiveClient.connect("127.0.0.1", port)
            await client.increment("x", 1)
            await server.stop()
            await asyncio.sleep(0.05)
            with pytest.raises((ConnectionError, OSError)):
                await client.increment("x", 1)
            await client.close()

        run(scenario())
