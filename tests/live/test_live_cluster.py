"""Integration tests: 3-replica live clusters over localhost TCP.

The acceptance scenario for the live runtime: boot real asyncio
servers, drive hundreds of genuinely concurrent update ETs alongside
epsilon-bounded queries, and check the paper's guarantees hold under
real concurrency — every query's observed inconsistency stays within
its epsilon budget, and at quiescence all replicas converge to
one-copy serializable state.  A separate scenario kills a replica
mid-run and restarts it, exercising durable-queue recovery.
"""

import asyncio
import random

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import EpsilonSpec
from repro.live import LiveCluster, LiveETFailed


def run(coro):
    return asyncio.run(coro)


N_UPDATES = 210  # >= 200 concurrent update ETs per acceptance criteria
KEYS = ["acct0", "acct1", "acct2", "acct3"]


async def _drive_workload(cluster, method):
    """Concurrent updates + epsilon-bounded queries against a cluster."""
    clients = [await cluster.client(name) for name in cluster.names]
    rng = random.Random(42)
    violations = []

    async def one_update(i):
        client = clients[i % len(clients)]
        await client.increment(KEYS[i % len(KEYS)], 1)

    async def one_query(i):
        # A spread of inconsistency budgets, including strict (0).
        epsilon = (0, 1, 2, 5, 10)[i % 5]
        client = clients[(i + 1) % len(clients)]
        outcome = await client.query(
            [KEYS[i % len(KEYS)]], EpsilonSpec(import_limit=epsilon)
        )
        if outcome["inconsistency"] > epsilon:
            violations.append((epsilon, outcome["inconsistency"]))

    jobs = [one_update(i) for i in range(N_UPDATES)]
    jobs += [one_query(i) for i in range(40)]
    rng.shuffle(jobs)
    await asyncio.gather(*jobs)
    assert violations == [], (
        "queries exceeded their epsilon budget: %r" % violations
    )

    await cluster.settle(timeout=60)
    assert await cluster.converged(), "replicas diverged at quiescence"
    values = await cluster.site_values()
    for name, state in values.items():
        total = sum(state.get(key, 0) for key in KEYS)
        assert total == N_UPDATES, (
            "%s lost updates: %r sums to %d" % (name, state, total)
        )


class TestConvergenceUnderLoad:
    @pytest.mark.parametrize("method", ["commu", "ordup"])
    def test_concurrent_updates_and_bounded_queries(self, method, tmp_path):
        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method=method, data_dir=tmp_path
            )
            await cluster.start()
            try:
                await _drive_workload(cluster, method)
            finally:
                await cluster.stop()

        run(scenario())

    def test_rowa_sync_baseline_converges(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(n_sites=3, method="rowa", data_dir=tmp_path)
            await cluster.start()
            try:
                clients = [
                    await cluster.client(name) for name in cluster.names
                ]
                await asyncio.gather(
                    *(
                        clients[i % 3].increment("x", 1)
                        for i in range(30)
                    )
                )
                # Synchronous commit: already converged, no settling needed
                # beyond the committed writes themselves.
                await cluster.settle(timeout=30)
                values = await cluster.site_values()
                assert all(v.get("x") == 30 for v in values.values())
            finally:
                await cluster.stop()

        run(scenario())


class TestCrashRecovery:
    def test_restarted_replica_recovers_acknowledged_updates(self, tmp_path):
        """Kill a replica mid-run; durable queues must preserve every
        acknowledged update through the restart."""

        async def scenario():
            cluster = LiveCluster(n_sites=3, method="commu", data_dir=tmp_path)
            await cluster.start()
            try:
                c2 = await cluster.client("site2")
                # Phase 1: updates acknowledged *by the doomed replica*.
                await asyncio.gather(
                    *(c2.increment("x", 1) for _ in range(20))
                )
                await cluster.settle(timeout=30)
                await cluster.kill("site2")

                # Phase 2: the survivors keep accepting updates; their
                # outbox channels to site2 accumulate a durable backlog.
                c0 = await cluster.client("site0")
                c1 = await cluster.client("site1")
                await asyncio.gather(
                    *(c0.increment("x", 1) for _ in range(15)),
                    *(c1.increment("y", 1) for _ in range(15)),
                )

                # Phase 3: restart from the on-disk logs; peers re-deliver.
                await cluster.restart("site2")
                await cluster.settle(timeout=60)
                assert await cluster.converged()
                values = await cluster.site_values()
                assert values["site2"]["x"] == 35  # 20 pre-crash + 15 missed
                assert values["site2"]["y"] == 15
            finally:
                await cluster.stop()

        run(scenario())

    def test_mid_flight_crash_loses_no_acknowledged_update(self, tmp_path):
        """Crash while propagation is still in flight: anything a client
        saw acknowledged must survive."""

        async def scenario():
            cluster = LiveCluster(n_sites=3, method="commu", data_dir=tmp_path)
            await cluster.start()
            try:
                c2 = await cluster.client("site2")
                acked = 0
                for _ in range(25):
                    await c2.increment("k", 1)
                    acked += 1
                # Crash immediately — no settle; remote propagation of the
                # tail may not have happened yet.
                await cluster.kill("site2")
                await cluster.restart("site2")
                await cluster.settle(timeout=60)
                assert await cluster.converged()
                values = await cluster.site_values()
                assert values["site0"]["k"] == acked
                assert values["site2"]["k"] == acked
            finally:
                await cluster.stop()

        run(scenario())


class TestTornTailRecovery:
    def test_kill_mid_append_loses_no_acked_update(self, tmp_path):
        """Crash while appending to the durable logs: the torn tail
        record (never acknowledged) is skipped on recovery, and every
        update that *was* acknowledged survives."""

        async def scenario():
            cluster = LiveCluster(n_sites=3, method="commu", data_dir=tmp_path)
            await cluster.start()
            try:
                c2 = await cluster.client("site2")
                for _ in range(10):
                    await c2.increment("k", 1)  # all 10 acked
                await cluster.kill("site2")

                # Simulate the kill landing mid-append: torn partial
                # records at the tail of the local inbox and an outbox.
                site_dir = tmp_path / "site2"
                with (site_dir / "inbox" / "_local.log").open(
                    "a", encoding="utf-8"
                ) as handle:
                    handle.write('{"seq": 11, "payload": {"ms')
                with (site_dir / "outbox" / "site0.log").open(
                    "a", encoding="utf-8"
                ) as handle:
                    handle.write('{"seq": 11,')

                await cluster.restart("site2")
                await cluster.settle(timeout=60)
                assert await cluster.converged()
                values = await cluster.site_values()
                for name in cluster.names:
                    assert values[name]["k"] == 10, (
                        "%s lost acked updates: %r" % (name, values[name])
                    )
            finally:
                await cluster.stop()

        run(scenario())


class TestOrdupSemantics:
    def test_read_modify_write_reads_at_serial_position(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(n_sites=3, method="ordup", data_dir=tmp_path)
            await cluster.start()
            try:
                client = await cluster.client("site0")
                await client.write("bal", 100)
                result = await client.update(
                    [ReadOp("bal"), IncrementOp("bal", 50)]
                )
                # The read evaluates at the ET's position in the global
                # order: before its own write.
                assert result["values"]["bal"] == 100
                strict = await client.read("bal", epsilon=0)
                assert strict == 150
            finally:
                await cluster.stop()

        run(scenario())

    def test_strict_read_is_serializable(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(n_sites=3, method="ordup", data_dir=tmp_path)
            await cluster.start()
            try:
                clients = [
                    await cluster.client(name) for name in cluster.names
                ]
                await asyncio.gather(
                    *(
                        clients[i % 3].increment("a", 1)
                        for i in range(30)
                    )
                )
                # A multi-key strict query sees an order-prefix snapshot:
                # invariant a == b can never appear broken.
                await clients[0].write("b", 0)
                await cluster.settle(timeout=30)
                got = await clients[1].read_many(["a", "b"], epsilon=0)
                assert got["a"] == 30
                assert got["b"] == 0
            finally:
                await cluster.stop()

        run(scenario())


class TestUpdateValidation:
    def test_update_without_writes_rejected(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(n_sites=1, method="commu", data_dir=tmp_path)
            await cluster.start()
            try:
                client = await cluster.client("site0")
                with pytest.raises(LiveETFailed):
                    await client.update([ReadOp("x")])
            finally:
                await cluster.stop()

        run(scenario())
