"""Read scaling surface: epsilon-budget cache, staleness-aware
fan-out, and session guarantees.

Unit layers (no sockets): the cache's import-estimate accounting, the
session token's wire format, and the membership table's frontier-lag
signal.  Integration layers (live 3-replica clusters): cache hits and
own-write invalidation, budget expiry driven by observed frontiers,
replica fan-out spread vs strict primary pinning, read-your-writes
with cross-process token handoff, the typed ``SESSION_STALE`` refusal,
session monotonicity across an ORDUP sequencer failover, and the
client-default timeout threading on every introspection verb.
"""

import asyncio
import time

import pytest

from repro.consistency import Consistency, ReadOptions, SessionToken
from repro.errors import SESSION_STALE
from repro.live import (
    FaultPlan,
    LinkFaults,
    LiveCluster,
    LiveETFailed,
    MembershipTable,
    NodeRecord,
)
from repro.live.client import LiveClient, RequestTimeout
from repro.live.read_cache import EpsilonReadCache
from repro.obs.registry import Registry


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# unit: cache accounting
# ---------------------------------------------------------------------------


class TestEpsilonReadCache:
    def test_estimate_accumulates_observed_frontiers(self):
        cache = EpsilonReadCache(ttl=None)
        cache.store("k", 7, 1.0, {"site0": 10, "site1": 5}, now=0.0)
        # No new evidence: estimate is the fetch-time import alone.
        hit = cache.lookup("k", budget=2.0, known_frontiers={}, now=1.0)
        assert hit is not None and hit.value == 7 and hit.estimate == 1.0
        # Three updates proven past the entry: estimate 1 + 3 > 2.
        miss = cache.lookup(
            "k", budget=2.0, known_frontiers={"site0": 13}, now=1.0
        )
        assert miss is None
        # A looser budget still serves the same entry.
        hit = cache.lookup(
            "k", budget=8.0, known_frontiers={"site0": 13}, now=1.0
        )
        assert hit is not None and hit.estimate == 4.0

    def test_ttl_only_ignores_budget_but_not_clock(self):
        cache = EpsilonReadCache(ttl=5.0)
        cache.store("k", 7, 0.0, {"site0": 1}, now=0.0)
        hit = cache.lookup(
            "k", budget=0.5, known_frontiers={"site0": 100},
            now=1.0, ttl_only=True,
        )
        assert hit is not None  # over budget, inside TTL
        assert cache.lookup(
            "k", budget=0.5, known_frontiers={}, now=6.0, ttl_only=True
        ) is None  # expired

    def test_session_token_requires_dominating_entry(self):
        cache = EpsilonReadCache(ttl=None)
        cache.store("k", 7, 0.0, {"site0": 3}, now=0.0)
        behind = SessionToken({"site0": 5})
        covered = SessionToken({"site0": 2})
        assert cache.lookup(
            "k", budget=10.0, known_frontiers={}, now=0.0, token=behind
        ) is None
        assert cache.lookup(
            "k", budget=10.0, known_frontiers={}, now=0.0, token=covered
        ) is not None

    def test_lru_eviction_and_invalidation(self):
        cache = EpsilonReadCache(max_entries=2, ttl=None)
        for i, key in enumerate(("a", "b", "c")):
            cache.store(key, i, 0.0, {}, now=0.0)
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.lookup("a", 1.0, {}, now=0.0) is None  # evicted
        assert cache.invalidate(["b", "zz"]) == 1
        assert cache.lookup("b", 1.0, {}, now=0.0) is None
        stats = cache.stats()
        assert stats["invalidations"] == 1 and stats["entries"] == 1


class TestSessionTokenWire:
    def test_encode_decode_roundtrip(self):
        token = SessionToken({"site1": 4, "site0": 9})
        text = token.encode()
        assert text == '{"v":1,"f":{"site0":9,"site1":4}}'
        assert SessionToken.decode(text) == token

    def test_malformed_tokens_are_value_errors(self):
        for bad in ("", "not json", '{"v":99,"f":{}}', "[]"):
            with pytest.raises(ValueError):
                SessionToken.decode(bad)

    def test_observe_write_and_dominance(self):
        token = SessionToken()
        assert token.observe_write("siteA:7")
        assert not token.observe_write("siteA:3")  # never regresses
        assert token.dominated_by({"siteA": 7})
        assert not token.dominated_by({"siteA": 6})


class TestFrontierLag:
    def test_lag_sums_positive_gaps_excluding_self(self):
        table = MembershipTable("site0")
        table.update_self(frontier=10)
        table.merge(
            [
                NodeRecord("site1", "h", 1, incarnation=1, frontier=8).wire(),
                NodeRecord("site2", "h", 1, incarnation=1, frontier=3).wire(),
            ]
        )
        # Local receive frontiers: caught up with site1, 2 behind site2.
        lag = table.frontier_lag({"site0": 10, "site1": 8, "site2": 1})
        assert lag == 2

    def test_applied_survives_wire_and_merge(self):
        rec = NodeRecord("s", "h", 1, incarnation=1, applied=42)
        assert NodeRecord.from_wire(rec.wire()).applied == 42
        table = MembershipTable("me")
        table.merge([rec.wire()])
        # Same incarnation, higher applied: adopted.
        table.merge([NodeRecord("s", "h", 1, incarnation=1, applied=50).wire()])
        assert table.get("s").applied == 50
        # Same incarnation, lower applied: never rolls back.
        table.merge([NodeRecord("s", "h", 1, incarnation=1, applied=7).wire()])
        assert table.get("s").applied == 50


# ---------------------------------------------------------------------------
# integration: live clusters
# ---------------------------------------------------------------------------


class TestReadCacheLive:
    def test_hits_budget_expiry_and_own_write_invalidation(self, tmp_path):
        async def main():
            cluster = LiveCluster(n_sites=3, data_dir=tmp_path)
            await cluster.start()
            try:
                reader = LiveClient(
                    list(cluster.addrs.values()),
                    request_timeout=10.0,
                    cache=EpsilonReadCache(ttl=60.0),
                )
                await reader._ensure_connected()
                writer = await cluster.client(cluster.names[0])
                await writer.increment("acct", 5)

                bounded = ReadOptions(consistency=Consistency.BOUNDED(2))
                first = await reader.query(["acct"], bounded)
                assert not first.from_cache and first.values["acct"] == 5
                second = await reader.query(["acct"], bounded)
                assert second.from_cache and second.values["acct"] == 5
                assert second.staleness <= 2  # the served estimate

                # Another client commits 3 updates; once this reader
                # *observes* frontiers past its entry (via any fresh
                # response), the entry is over its 2-update budget.
                for _ in range(3):
                    await writer.increment("acct")
                await cluster.settle(timeout=30)
                await reader.query(["other"], ReadOptions())  # evidence
                third = await reader.query(["acct"], bounded)
                assert not third.from_cache
                assert third.values["acct"] == 8

                # CACHED level: TTL is the only freshness test, so the
                # same staleness evidence does not block serving.
                for _ in range(3):
                    await writer.increment("acct")
                await cluster.settle(timeout=30)
                await reader.query(["other"], ReadOptions())
                cached = await reader.query(
                    ["acct"], ReadOptions(consistency=Consistency.CACHED)
                )
                assert cached.from_cache and cached.values["acct"] == 8

                # Own write invalidates: the next read must re-fetch.
                await reader.increment("acct")
                fourth = await reader.query(["acct"], bounded)
                assert not fourth.from_cache
                assert fourth.values["acct"] == 12
                assert reader.cache.invalidations >= 1
                await reader.close()
            finally:
                await cluster.stop()

        run(main())


class TestFanOut:
    def test_bounded_reads_spread_strict_reads_pin(self, tmp_path):
        async def main():
            cluster = LiveCluster(n_sites=3, data_dir=tmp_path)
            await cluster.start()
            try:
                registry = Registry()
                client = LiveClient(
                    list(cluster.addrs.values()),
                    request_timeout=10.0,
                    fan_out=True,
                    registry=registry,
                )
                await client._ensure_connected()
                await client.increment("acct", 1)
                await cluster.settle(timeout=30)
                await client.stats()  # learn the replica set

                bounded = ReadOptions(consistency=Consistency.BOUNDED(5))
                served = set()
                for _ in range(40):
                    result = await client.query(["acct"], bounded)
                    assert result.values["acct"] == 1
                    assert result.served_by is not None
                    served.add(result.served_by)
                assert len(served) >= 2, (
                    "fan-out never left the primary: %r" % served
                )

                strict_served = set()
                for _ in range(10):
                    result = await client.query(
                        ["acct"],
                        ReadOptions(consistency=Consistency.STRICT),
                    )
                    strict_served.add(result.served_by)
                assert strict_served == {cluster.names[0]}
                total = sum(
                    registry.get_sample(
                        "reads_by_replica_total", replica=name
                    )
                    or 0
                    for name in cluster.names
                )
                assert total >= 50
                await client.close()
            finally:
                await cluster.stop()

        run(main())

    def test_prefer_targets_a_specific_replica(self, tmp_path):
        async def main():
            cluster = LiveCluster(n_sites=3, data_dir=tmp_path)
            await cluster.start()
            try:
                client = LiveClient(
                    list(cluster.addrs.values()), request_timeout=10.0
                )
                await client._ensure_connected()
                await client.increment("acct", 3)
                await cluster.settle(timeout=30)
                await client.stats()
                target = cluster.names[2]
                result = await client.query(
                    ["acct"],
                    ReadOptions(
                        consistency=Consistency.BOUNDED(5), prefer=target
                    ),
                )
                assert result.served_by == target
                assert result.values["acct"] == 3
                await client.close()
            finally:
                await cluster.stop()

        run(main())


class TestSessionGuarantees:
    def test_read_your_writes_with_token_handoff(self, tmp_path):
        """A second client resumes the session from the encoded token
        and must see the first client's committed writes."""

        async def main():
            cluster = LiveCluster(n_sites=3, data_dir=tmp_path)
            await cluster.start()
            try:
                first = LiveClient(
                    list(cluster.addrs.values()), request_timeout=10.0
                )
                await first._ensure_connected()
                async with first.session() as session:
                    await session.increment("acct", 2)
                    await session.increment("acct", 3)
                    assert await session.read("acct") == 5
                    handoff = session.token.encode()
                await first.close()

                # Cross-process handoff: a fresh client, fanned out, no
                # shared state beyond the serialized token.
                second = LiveClient(
                    list(cluster.addrs.values()),
                    request_timeout=10.0,
                    fan_out=True,
                )
                await second._ensure_connected()
                await second.stats()
                resumed = second.session(SessionToken.decode(handoff))
                value = await resumed.read(
                    "acct", ReadOptions(consistency=Consistency.SESSION)
                )
                assert value == 5
                await second.close()
            finally:
                await cluster.stop()

        run(main())

    def test_session_stale_surfaces_typed_after_retries(self, tmp_path):
        """A token no replica can satisfy is refused with the typed
        code (carrying the refusing replica's frontiers) once the
        client's retry deadline passes."""

        async def main():
            cluster = LiveCluster(n_sites=3, data_dir=tmp_path)
            await cluster.start()
            try:
                client = LiveClient(
                    list(cluster.addrs.values()),
                    request_timeout=10.0,
                    session_retry_wait=0.4,
                )
                await client._ensure_connected()
                impossible = SessionToken({cluster.names[0]: 10 ** 9})
                with pytest.raises(LiveETFailed) as info:
                    await client.query(
                        ["acct"],
                        ReadOptions(
                            consistency=Consistency.SESSION,
                            session=impossible,
                        ),
                    )
                assert info.value.code == SESSION_STALE
                assert info.value.session_stale
                assert isinstance(
                    info.value.frame.get("frontiers"), dict
                )
                assert client.session_stale_retries >= 1
                await client.close()
            finally:
                await cluster.stop()

        run(main())

    def test_pinned_client_blocks_until_catchup(self, tmp_path):
        """A client pinned to one lagging replica retries there until
        propagation satisfies the token (no failover involved)."""

        async def main():
            faults = FaultPlan(seed=3)
            slow = LinkFaults(delay_min=0.2, delay_max=0.4)
            faults.set_link("site0", "site1", slow)
            faults.set_link("site0", "site2", slow)
            cluster = LiveCluster(
                n_sites=3, data_dir=tmp_path, faults=faults
            )
            await cluster.start()
            try:
                writer = await cluster.client(cluster.names[0])
                frame = await writer.increment("acct", 9)
                token = SessionToken()
                token.observe_write(frame["tid"])

                # Connected ONLY to a secondary the update reaches
                # after the injected link delay.
                secondary = LiveClient(
                    [cluster.addrs[cluster.names[1]]],
                    request_timeout=10.0,
                )
                await secondary._ensure_connected()
                t0 = time.monotonic()
                result = await secondary.query(
                    ["acct"],
                    ReadOptions(
                        consistency=Consistency.SESSION, session=token
                    ),
                )
                assert result.values["acct"] == 9
                # The read genuinely waited out propagation (and the
                # reply's frontiers dominate the token).
                assert token.dominated_by(result.frontiers)
                assert time.monotonic() - t0 < 10.0
                await secondary.close()
            finally:
                await cluster.stop()

        run(main())

    def test_session_monotonic_across_sequencer_failover(self, tmp_path):
        """Kill the ORDUP sequencer mid-session: SESSION reads keep
        read-your-writes and monotonic reads through the failover —
        no read ever observes less than the session's own committed
        writes, and values never regress along the session."""

        async def main():
            cluster = LiveCluster(
                n_sites=3,
                method="ordup",
                data_dir=tmp_path,
                heartbeat_interval=0.05,
                suspect_after=0.2,
            )
            await cluster.start()
            acked = 0
            try:
                client = LiveClient(
                    list(cluster.addrs.values()),
                    request_timeout=5.0,
                    fan_out=True,
                )
                await client._ensure_connected()
                await client.stats()
                session = client.session()
                for _ in range(5):
                    await session.increment("acct")
                    acked += 1
                await cluster.settle(timeout=30)

                leader = cluster.servers[cluster.names[0]].current_leader()
                await cluster.kill(leader)

                floor = 0
                deadline = time.monotonic() + 20.0
                reads = 0
                while time.monotonic() < deadline and reads < 8:
                    try:
                        value = await session.read(
                            "acct",
                            ReadOptions(
                                consistency=Consistency.SESSION
                            ),
                        )
                    except (
                        LiveETFailed,
                        ConnectionError,
                        OSError,
                        RequestTimeout,
                    ):
                        await asyncio.sleep(0.2)
                        continue
                    reads += 1
                    # Read-your-writes: every committed increment
                    # visible.  Monotonic: never below a prior read.
                    assert value >= acked, (
                        "session read lost own writes: %r < %r"
                        % (value, acked)
                    )
                    assert value >= floor
                    floor = value
                assert reads > 0, "no session read succeeded post-kill"
                await client.close()
            finally:
                await cluster.stop()

        run(main())


class TestTimeoutThreading:
    def test_every_introspection_verb_takes_a_timeout(self, tmp_path):
        """A wedged server (accepts, never replies) must bound every
        verb by the per-call or client-default timeout."""

        async def main():
            wedged_writer_holds = []

            async def wedge(reader, writer):
                wedged_writer_holds.append(writer)  # accept, say nothing

            server = await asyncio.start_server(
                wedge, "127.0.0.1", 0
            )
            addr = server.sockets[0].getsockname()[:2]
            try:
                client = LiveClient([addr], request_timeout=None)
                await client._ensure_connected()
                for verb in ("values", "stats", "metrics", "ping"):
                    t0 = time.monotonic()
                    with pytest.raises(RequestTimeout):
                        await getattr(client, verb)(timeout=0.2)
                    assert time.monotonic() - t0 < 2.0
                with pytest.raises(RequestTimeout):
                    await client.refresh_membership(timeout=0.2)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(main())

    def test_client_default_timeout_covers_all_verbs(self, tmp_path):
        async def main():
            async def wedge(reader, writer):
                await asyncio.sleep(3600)

            server = await asyncio.start_server(wedge, "127.0.0.1", 0)
            addr = server.sockets[0].getsockname()[:2]
            try:
                client = LiveClient([addr], request_timeout=0.2)
                await client._ensure_connected()
                with pytest.raises(RequestTimeout):
                    await client.values()  # no per-call timeout passed
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(main())


class TestDeprecatedKwargs:
    def test_legacy_epsilon_warns_but_works(self, tmp_path):
        async def main():
            cluster = LiveCluster(n_sites=3, data_dir=tmp_path)
            await cluster.start()
            try:
                client = await cluster.client(cluster.names[0])
                await client.increment("acct", 4)
                with pytest.warns(DeprecationWarning):
                    assert await client.read("acct", epsilon=5) == 4
                with pytest.warns(DeprecationWarning):
                    got = await client.read_many(["acct"], epsilon=5)
                assert got == {"acct": 4}
                # Positional numeric epsilon (the oldest spelling).
                with pytest.warns(DeprecationWarning):
                    assert await client.read("acct", 5) == 4
            finally:
                await cluster.stop()

        run(main())

    def test_mixing_typed_and_legacy_is_an_error(self):
        async def main():
            client = LiveClient([("127.0.0.1", 1)])
            with pytest.raises(TypeError):
                await client.read(
                    "k", Consistency.BOUNDED(2), epsilon=3
                )
            await client.close()

        run(main())
