"""Unit tests for the seeded fault-injection plan."""

from repro.live.faults import FaultPlan, FrameFate, LinkFaults


class TestLinkFaults:
    def test_default_is_quiet(self):
        assert LinkFaults().quiet()
        assert not LinkFaults(drop=0.1).quiet()
        assert not LinkFaults(delay_max=0.01).quiet()


class TestFrameFates:
    def test_quiet_link_never_injects(self):
        plan = FaultPlan(seed=1)
        for _ in range(50):
            assert plan.frame_fate("a", "b") == FrameFate()
        assert plan.counts["dropped"] == 0

    def test_fate_stream_is_deterministic_per_seed(self):
        """Two plans with the same seed issue identical per-link fate
        streams, regardless of how calls interleave across links."""
        spec = LinkFaults(drop=0.3, duplicate=0.2, delay_max=0.01)
        one = FaultPlan(seed=42, default=spec)
        two = FaultPlan(seed=42, default=spec)
        # Interleave links differently on the two plans.
        fates_one = [one.frame_fate("a", "b") for _ in range(40)]
        for _ in range(40):
            one.frame_fate("b", "a")
        for i in range(40):
            two.frame_fate("b", "a")
        fates_two = [two.frame_fate("a", "b") for _ in range(40)]
        assert fates_one == fates_two

    def test_different_seeds_differ(self):
        spec = LinkFaults(drop=0.5)
        one = FaultPlan(seed=1, default=spec)
        two = FaultPlan(seed=2, default=spec)
        fates_one = [one.frame_fate("a", "b").drop for _ in range(64)]
        fates_two = [two.frame_fate("a", "b").drop for _ in range(64)]
        assert fates_one != fates_two

    def test_per_link_override(self):
        plan = FaultPlan(seed=0)
        plan.set_link("a", "b", LinkFaults(drop=1.0))
        assert plan.frame_fate("a", "b").drop
        assert not plan.frame_fate("b", "a").drop  # default stays quiet

    def test_counts_accumulate(self):
        plan = FaultPlan(seed=0, default=LinkFaults(drop=1.0))
        for _ in range(5):
            plan.frame_fate("a", "b")
        assert plan.counts["dropped"] == 5


class TestPartitions:
    def test_sever_is_directed(self):
        plan = FaultPlan()
        plan.sever("a", "b")
        assert plan.is_severed("a", "b")
        assert not plan.is_severed("b", "a")

    def test_partition_severs_only_cross_group_links(self):
        plan = FaultPlan()
        plan.partition([["a", "b"], ["c"]])
        assert plan.is_severed("a", "c")
        assert plan.is_severed("c", "a")
        assert plan.is_severed("b", "c")
        assert not plan.is_severed("a", "b")
        assert not plan.is_severed("b", "a")

    def test_heal_all_restores_every_link(self):
        plan = FaultPlan()
        plan.partition([["a"], ["b", "c"]])
        assert plan.severed_links
        plan.heal_all()
        assert not plan.severed_links
        assert not plan.is_severed("a", "b")

    def test_sever_site_isolates_both_directions(self):
        plan = FaultPlan()
        plan.sever_site("a", ["b", "c"])
        assert plan.is_severed("a", "b")
        assert plan.is_severed("b", "a")
        assert plan.is_severed("c", "a")
        assert not plan.is_severed("b", "c")

    def test_blocked_count_tracks_severed_checks(self):
        plan = FaultPlan()
        plan.sever("a", "b")
        plan.is_severed("a", "b")
        plan.is_severed("a", "b")
        assert plan.counts["blocked"] == 2


class TestReorder:
    def test_reorder_preserves_the_batch_contents(self):
        plan = FaultPlan(seed=5, default=LinkFaults(reorder=1.0))
        batch = [(i, "payload%d" % i) for i in range(8)]
        shuffled = plan.reorder_batch("a", "b", list(batch))
        assert sorted(shuffled) == batch
        assert shuffled != batch  # seed 5 shuffles 8 elements
        assert plan.counts["reordered"] == 1

    def test_singleton_batches_never_reorder(self):
        plan = FaultPlan(seed=0, default=LinkFaults(reorder=1.0))
        assert plan.reorder_batch("a", "b", [(1, "x")]) == [(1, "x")]
        assert plan.counts["reordered"] == 0


class TestCrashSchedule:
    def test_schedule_is_recorded(self):
        plan = FaultPlan()
        plan.schedule_crash("site2", at=1.5, duration=0.5)
        (event,) = plan.crashes
        assert (event.site, event.at, event.duration) == ("site2", 1.5, 0.5)
