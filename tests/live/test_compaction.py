"""Log compaction tests: snapshot-covered prefixes drop crash-safely.

Compaction rewrites a durable channel log without its covered prefix
(everything a persisted site snapshot already reconstructs).  The
rewrite must be atomic against crashes: at *every* instant during the
rewrite, a restart recovers either the complete old log or the
complete new one — never a half-dropped prefix.  The parameterized
crash test below kills the rewrite at each internal boundary and
asserts exactly that.
"""

import os

import pytest

from repro.live.durable_queue import DurableInbox, DurableOutbox


class TestOutboxCompaction:
    def test_compact_drops_acked_prefix(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        for i in range(6):
            outbox.append({"n": i})
        outbox.ack_through(4)
        assert outbox.compact(4) == 4
        assert outbox.base == 4
        assert outbox.frontier == 4
        assert [seq for seq, _ in outbox.pending()] == [5, 6]
        assert outbox.compaction_count == 1
        assert outbox.compacted_records == 4
        outbox.close()

    def test_compact_never_passes_the_ack_frontier(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        for i in range(6):
            outbox.append({"n": i})
        outbox.ack_through(2)
        # Asking past the frontier clamps: pending records must
        # survive for re-sends.
        assert outbox.compact(6) == 2
        assert outbox.base == 2
        assert [seq for seq, _ in outbox.pending()] == [3, 4, 5, 6]
        outbox.close()

    def test_compact_below_base_is_a_noop(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        for i in range(4):
            outbox.append({"n": i})
        outbox.ack_through(3)
        assert outbox.compact(3) == 3
        assert outbox.compact(3) == 0
        assert outbox.compact(2) == 0
        assert outbox.compaction_count == 1
        outbox.close()

    def test_compacted_log_survives_restart(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        for i in range(6):
            outbox.append({"n": i})
        outbox.ack_through(4)
        outbox.compact(4)
        outbox.close()

        reloaded = DurableOutbox(path)
        assert reloaded.base == 4
        assert reloaded.frontier == 4
        assert [seq for seq, _ in reloaded.pending()] == [5, 6]
        # Sequence assignment continues above the survivors.
        assert reloaded.append("later") == 7
        reloaded.close()

    def test_base_marker_backstops_a_lost_ack_file(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        for i in range(5):
            outbox.append({"n": i})
        outbox.ack_through(3)
        outbox.compact(3)
        outbox.close()
        (tmp_path / "peer.log.ack").unlink()

        reloaded = DurableOutbox(path)
        # Compaction only drops acked records, so the floor is a
        # lower bound on the frontier even without the .ack file.
        assert reloaded.frontier == 3
        assert [seq for seq, _ in reloaded.pending()] == [4, 5]
        reloaded.close()

    def test_rewind_fails_below_the_compaction_floor(self, tmp_path):
        outbox = DurableOutbox(tmp_path / "peer.log")
        for i in range(6):
            outbox.append({"n": i})
        outbox.ack_through(6)
        outbox.compact(4)
        # A receiver regressed to 5: still servable from the log.
        assert outbox.rewind_to(5) is True
        assert [seq for seq, _ in outbox.pending()] == [6]
        outbox.ack_through(6)
        # A receiver regressed below the floor: the records are gone,
        # it needs a snapshot.
        assert outbox.rewind_to(2) is False
        outbox.close()

    def test_reset_to_reseeds_floor_frontier_and_counter(self, tmp_path):
        path = tmp_path / "peer.log"
        outbox = DurableOutbox(path)
        outbox.append("stale")
        outbox.reset_to(40)
        assert (outbox.base, outbox.frontier) == (40, 40)
        assert outbox.pending() == []
        assert outbox.append("fresh") == 41
        outbox.close()

        reloaded = DurableOutbox(path)
        assert (reloaded.base, reloaded.frontier) == (40, 40)
        assert [seq for seq, _ in reloaded.pending()] == [41]
        reloaded.close()


class TestInboxCompaction:
    def test_compact_drops_covered_receipts(self, tmp_path):
        inbox = DurableInbox(tmp_path / "peer.log")
        for i in range(1, 7):
            inbox.record(i, {"n": i})
        assert inbox.compact(4) == 4
        assert inbox.base == 4
        assert inbox.frontier == 6
        assert [seq for seq, _ in inbox.replay()] == [5, 6]
        inbox.close()

    def test_compacted_inbox_survives_restart(self, tmp_path):
        path = tmp_path / "peer.log"
        inbox = DurableInbox(path)
        for i in range(1, 7):
            inbox.record(i, {"n": i})
        inbox.compact(4)
        inbox.close()

        reloaded = DurableInbox(path)
        assert reloaded.base == 4
        assert reloaded.frontier == 6
        assert [seq for seq, _ in reloaded.replay()] == [5, 6]
        # The next acceptable receipt continues the tail.
        assert reloaded.record(7, {"n": 7}) is True
        assert reloaded.record(4, {"n": 4}) is False  # covered duplicate
        reloaded.close()

    def test_reset_to_discards_the_tail(self, tmp_path):
        path = tmp_path / "peer.log"
        inbox = DurableInbox(path)
        for i in range(1, 4):
            inbox.record(i, {"n": i})
        inbox.reset_to(10)
        assert (inbox.base, inbox.frontier) == (10, 10)
        assert inbox.replay() == []
        assert inbox.record(11, "next") is True
        inbox.close()

        reloaded = DurableInbox(path)
        assert reloaded.frontier == 11
        assert [seq for seq, _ in reloaded.replay()] == [11]
        reloaded.close()


class _Crash(Exception):
    """Stands in for the process dying at a chosen instant."""


#: every internal boundary of the compaction rewrite.  "torn-tmp"
#: simulates dying mid-write of the temporary file (a torn tail);
#: the others kill the real code path at the named call.
BOUNDARIES = [
    "before-rewrite",
    "torn-tmp",
    "after-tmp-fsync",
    "before-rename",
    "after-rename",
]


def _crash_compact(outbox, through, boundary, monkeypatch, tmp_path):
    """Run ``outbox.compact(through)``, dying at ``boundary``."""
    if boundary == "before-rewrite":
        raise _Crash  # nothing on disk changed at all
    if boundary == "torn-tmp":
        # A torn temporary file from a crash mid-write: the rename
        # never ran, so the stale .compact file must be ignored (and
        # harmlessly overwritten) by any later compaction.
        tmp = outbox.path.with_suffix(outbox.path.suffix + ".compact")
        tmp.write_text('{"meta":"base","ba')
        raise _Crash
    if boundary == "after-tmp-fsync":
        real_replace = os.replace

        def die(*args, **kwargs):
            raise _Crash

        monkeypatch.setattr(os, "replace", die)
        try:
            outbox.compact(through)
        finally:
            monkeypatch.setattr(os, "replace", real_replace)
        raise AssertionError("compact survived a crashed rename")
    if boundary == "before-rename":
        # Same on-disk state as after-tmp-fsync (the fsync of the tmp
        # file is the last durable action before the rename), but die
        # from inside the verification re-parse instead.
        calls = {"n": 0}
        import repro.live.durable_queue as dq

        real_reader = dq._read_json_lines

        def dying_reader(path):
            if path.suffix == ".compact":
                calls["n"] += 1
                raise _Crash
            return real_reader(path)

        monkeypatch.setattr(dq, "_read_json_lines", dying_reader)
        try:
            outbox.compact(through)
        finally:
            monkeypatch.setattr(dq, "_read_json_lines", real_reader)
        raise AssertionError("compact survived a crashed verify")
    if boundary == "after-rename":
        # The rename is the commit point; dying in the directory fsync
        # afterwards must leave the *new* log.
        def die(self):
            raise _Crash

        monkeypatch.setattr(
            "repro.live.durable_queue._DurableLog._fsync_dir", die
        )
        outbox.compact(through)
        raise AssertionError("compact survived a crashed dir fsync")
    raise AssertionError("unknown boundary %r" % boundary)


@pytest.mark.parametrize("boundary", BOUNDARIES)
def test_outbox_compaction_crash_recovers_old_or_new(
    boundary, tmp_path, monkeypatch
):
    """Crash the rewrite at every boundary: a reload sees exactly the
    old log or exactly the new one, and the channel still works."""
    path = tmp_path / "peer.log"
    outbox = DurableOutbox(path)
    for i in range(8):
        outbox.append({"n": i})
    outbox.ack_through(5)

    with pytest.raises(_Crash):
        _crash_compact(outbox, 5, boundary, monkeypatch, tmp_path)
    monkeypatch.undo()
    # Simulated crash: abandon the live object, reload from disk.

    reloaded = DurableOutbox(path)
    compacted = boundary == "after-rename"
    assert reloaded.base == (5 if compacted else 0)
    assert reloaded.frontier == 5
    # Never half-dropped: the unacked tail is intact either way.
    assert [seq for seq, _ in reloaded.pending()] == [6, 7, 8]
    assert [p["n"] for _, p in reloaded.pending()] == [5, 6, 7]
    # The channel still serves a regressed receiver from its floor.
    assert reloaded.rewind_to(reloaded.base) is True
    # And still assigns fresh sequence numbers above everything.
    assert reloaded.append("fresh") == 9
    # A later compaction succeeds regardless of leftover tmp files.
    reloaded.ack_through(9)
    assert reloaded.compact(9) > 0
    assert reloaded.base == 9
    reloaded.close()


@pytest.mark.parametrize("boundary", BOUNDARIES)
def test_inbox_compaction_crash_recovers_old_or_new(
    boundary, tmp_path, monkeypatch
):
    path = tmp_path / "peer.log"
    inbox = DurableInbox(path)
    for i in range(1, 9):
        inbox.record(i, {"n": i})

    with pytest.raises(_Crash):
        _crash_compact(inbox, 5, boundary, monkeypatch, tmp_path)
    monkeypatch.undo()

    reloaded = DurableInbox(path)
    compacted = boundary == "after-rename"
    assert reloaded.base == (5 if compacted else 0)
    assert reloaded.frontier == 8
    tail = [seq for seq, _ in reloaded.replay()]
    assert tail == ([6, 7, 8] if compacted else [1, 2, 3, 4, 5, 6, 7, 8])
    # The channel keeps its exactly-once contract after the crash.
    assert reloaded.record(9, {"n": 9}) is True
    assert reloaded.record(9, {"n": 9}) is False
    assert reloaded.compact(9) > 0
    reloaded.close()
