"""Epoch-fenced sequencer failover: election state, fencing, e2e.

Unit tests pin the durable promise/adopt state machine and the
engine-level epoch fence; integration tests kill the ORDUP sequencer
at several phase boundaries and assert the failover safety claims —
an election happens, updates keep acknowledging, no acked update is
lost, and a resurrected deposed leader is fenced rather than allowed
to grant at its stale epoch (no two leaders commit in one epoch).
"""

import asyncio
import time

import pytest

from repro.core.operations import IncrementOp
from repro.live import LiveCluster, LiveETFailed
from repro.live.client import RequestTimeout
from repro.live.election import ElectionState
from repro.live.engine import OrdupLiveEngine
from repro.replica.mset import MSet


def run(coro):
    return asyncio.run(coro)


class TestElectionState:
    def test_promise_is_monotonic(self, tmp_path):
        state = ElectionState(tmp_path / "election.json")
        assert state.promise(3)
        assert not state.promise(3)  # each epoch promised at most once
        assert not state.promise(2)
        assert state.promise(4)
        assert state.promised == 4

    def test_promise_survives_restart(self, tmp_path):
        path = tmp_path / "election.json"
        state = ElectionState(path)
        state.promise(5)
        reborn = ElectionState(path)
        reborn.load()
        # A crash cannot un-promise: the reply never outruns the disk.
        assert not reborn.promise(5)
        assert reborn.promised == 5

    def test_adopt_is_monotonic_and_lifts_promised(self, tmp_path):
        state = ElectionState(tmp_path / "election.json")
        assert state.adopt(2, "siteB", base=17)
        assert (state.epoch, state.leader, state.base) == (2, "siteB", 17)
        assert state.promised == 2
        assert not state.adopt(1, "siteA", base=3)
        assert not state.adopt(2, "siteB", base=17)  # no-op repeat
        assert state.adopt(3, "siteC", base=40)
        assert state.bases == {2: 17, 3: 40}

    def test_min_base_above_fences_stale_epochs(self, tmp_path):
        state = ElectionState(tmp_path / "election.json")
        state.adopt(1, "siteB", base=10)
        state.adopt(3, "siteC", base=25)
        assert state.min_base_above(0) == 10
        assert state.min_base_above(1) == 25
        assert state.min_base_above(3) is None

    def test_adoption_survives_restart(self, tmp_path):
        path = tmp_path / "election.json"
        state = ElectionState(path)
        state.adopt(2, "siteB", base=9)
        reborn = ElectionState(path)
        reborn.load()
        assert reborn.wire() == state.wire()
        assert reborn.bases == {2: 9}


def _ordered_mset(seq, epoch, origin="siteB", amount=1):
    return MSet(
        tid="%s:%d" % (origin, seq),
        ops=(IncrementOp("x", amount),),
        origin=origin,
        order=(seq, epoch),
    )


class TestEngineEpochFence:
    def test_stale_epoch_tokens_are_fenced_past_the_base(self):
        async def main():
            engine = OrdupLiveEngine("siteA", ["siteA", "siteB"])
            for seq in range(1, 6):
                await engine.accept(_ordered_mset(seq, 0))
            assert engine.frontier == (5, 0)

            engine.adopt_epoch(1, base=5)
            # Tokens at the current epoch always pass.
            assert engine.order_admissible((6, 1))
            # Stale-epoch tokens pass only at or below the handover
            # base — merely late, granted before the handover.
            assert engine.order_admissible((5, 0))
            assert not engine.order_admissible((6, 0))

            applied = await engine.accept(_ordered_mset(6, 1))
            assert [m.order for m in applied] == [(6, 1)]
            # A deposed leader's grant past the base applies nowhere.
            fenced_before = engine.fenced_count
            assert await engine.accept(_ordered_mset(7, 0)) == []
            assert engine.fenced_count == fenced_before + 1
            assert engine.store.get("x", 0) == 6

        run(main())

    def test_adopt_purges_fenced_holdback(self):
        async def main():
            engine = OrdupLiveEngine("siteA", ["siteA", "siteB"])
            await engine.accept(_ordered_mset(1, 0))
            # Held back behind the gap at seq 2 — and granted past the
            # handover point by what turns out to be a deposed leader.
            await engine.accept(_ordered_mset(3, 0))
            assert engine.max_order_seen() == 3

            engine.adopt_epoch(1, base=1)
            # The held-back (3, 0) can never become applicable: seqs
            # 2.. belong to epoch 1 now.  It must not wedge the buffer.
            applied = await engine.accept(_ordered_mset(2, 1))
            assert [m.order for m in applied] == [(2, 1)]
            assert engine.fenced_count >= 1

        run(main())

    def test_epoch_state_survives_checkpoint_restore(self):
        async def main():
            engine = OrdupLiveEngine("siteA", ["siteA", "siteB"])
            for seq in range(1, 4):
                await engine.accept(_ordered_mset(seq, 0))
            engine.adopt_epoch(2, base=3)

            reborn = OrdupLiveEngine("siteA", ["siteA", "siteB"])
            await reborn.restore(await engine.checkpoint())
            assert not reborn.order_admissible((4, 0))
            assert reborn.order_admissible((4, 2))

        run(main())


async def _ack_one(client, key, deadline):
    """Retry one increment until it acks (or the deadline passes)."""
    while True:
        try:
            await client.increment(key, 1)
            return True
        except (
            LiveETFailed,
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            RequestTimeout,
        ):
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.1)


async def _wait_election(client, min_epoch, timeout=15.0):
    """Poll stats until the adopted epoch reaches ``min_epoch``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = await client.stats()
        election = stats.get("election", {})
        if int(election.get("epoch", 0)) >= min_epoch:
            return election
        await asyncio.sleep(0.1)
    raise AssertionError("no election reached epoch %d" % min_epoch)


def _fast_cluster(tmp_path):
    return LiveCluster(
        n_sites=3,
        method="ordup",
        data_dir=tmp_path,
        heartbeat_interval=0.05,
        suspect_after=0.2,
    )


class TestSequencerFailover:
    def test_elect_verb_promises_once_per_epoch(self, tmp_path):
        async def main():
            cluster = _fast_cluster(tmp_path)
            await cluster.start()
            try:
                client = await cluster.client("site1")
                reply = await client.request(
                    "elect", epoch=7, candidate="siteZ"
                )
                assert reply["promised"] is True
                assert reply["promised_epoch"] == 7
                assert "frontier" in reply
                # Same epoch again: already promised, refused — the
                # one-promise-per-epoch rule behind one-leader-per-epoch.
                again = await client.request(
                    "elect", epoch=7, candidate="siteY"
                )
                assert again["promised"] is False
                # epoch=0 is a pure read of the adopted state.
                probe = await client.request(
                    "elect", epoch=0, candidate=""
                )
                assert probe["promised"] is False
                assert probe["epoch"] == 0
                await client.close()
            finally:
                await cluster.stop()

        run(main())

    @pytest.mark.parametrize("phase", ["cold", "warm", "handover"])
    def test_kill_leader_at_phase_boundary(self, phase, tmp_path):
        """Crash the sequencer cold (no state), warm (settled state),
        and again after one completed handover — each time the
        survivors must elect, resume, and reconverge with zero
        acked-update loss."""

        async def main():
            cluster = _fast_cluster(tmp_path)
            await cluster.start()
            acked = 0
            try:
                clients = {
                    name: await cluster.client(name)
                    for name in cluster.names
                }
                leader = cluster.servers["site0"].current_leader()
                min_epoch = 1
                if phase != "cold":
                    for i in range(12):
                        await clients[cluster.names[i % 3]].increment(
                            "acct", 1
                        )
                        acked += 1
                    await cluster.settle(timeout=30.0)
                if phase == "handover":
                    # Complete one failover first, then kill the *new*
                    # leader: the second election must stack on the
                    # first (epoch 2, fresh base).
                    await cluster.kill(leader)
                    survivor = [
                        n for n in cluster.names if n != leader
                    ][0]
                    deadline = time.monotonic() + 20.0
                    assert await _ack_one(
                        clients[survivor], "acct", deadline
                    )
                    acked += 1
                    election = await _wait_election(
                        clients[survivor], 1
                    )
                    await cluster.restart(leader)
                    await clients[leader].close()
                    clients[leader] = await cluster.client(leader)
                    await _wait_election(clients[leader], 1)
                    # Drain the first failover's acked update to every
                    # site before crashing again: an update acked only
                    # at the about-to-die leader stalls the next epoch
                    # behind a gap nobody left alive can fill (the
                    # documented acked-but-unpropagated window).
                    await cluster.settle(timeout=30.0)
                    leader = election["leader"]
                    min_epoch = 2

                await cluster.kill(leader)
                survivors = [n for n in cluster.names if n != leader]
                deadline = time.monotonic() + 20.0
                for survivor in survivors:
                    assert await _ack_one(
                        clients[survivor], "acct", deadline
                    ), "update at %s never acked after the crash" % (
                        survivor,
                    )
                    acked += 1
                election = await _wait_election(
                    clients[survivors[0]], min_epoch
                )
                assert election["leader"] in survivors

                await cluster.restart(leader)
                await clients[leader].close()
                clients[leader] = await cluster.client(leader)
                assert await _ack_one(
                    clients[leader], "acct", time.monotonic() + 20.0
                )
                acked += 1
                await cluster.settle(timeout=30.0)
                assert await cluster.converged()
                values = await cluster.site_values()
                for state in values.values():
                    # Acked updates all present; retries never
                    # double-apply.
                    assert state.get("acct", 0) == acked
                for client in clients.values():
                    await client.close()
            finally:
                await cluster.stop()

        run(main())

    def test_resurrected_stale_leader_is_fenced(self, tmp_path):
        """Split-brain probe: the deposed sequencer comes back with
        durable state that still says it leads epoch 0.  It must not
        grant at that stale epoch — boot probe + lease hold it silent
        until it adopts the new epoch and steps down."""

        async def main():
            cluster = _fast_cluster(tmp_path)
            await cluster.start()
            try:
                clients = {
                    name: await cluster.client(name)
                    for name in cluster.names
                }
                for i in range(9):
                    await clients[cluster.names[i % 3]].increment(
                        "acct", 1
                    )
                await cluster.settle(timeout=30.0)

                leader = cluster.servers["site0"].current_leader()
                await cluster.kill(leader)
                survivors = [n for n in cluster.names if n != leader]
                assert await _ack_one(
                    clients[survivors[0]], "acct",
                    time.monotonic() + 20.0,
                )
                election = await _wait_election(clients[survivors[0]], 1)
                new_leader = election["leader"]
                assert new_leader != leader

                await cluster.restart(leader)
                await clients[leader].close()
                clients[leader] = await cluster.client(leader)
                # Probe the revenant for an order token before it has
                # any chance to resync: every acceptable outcome is a
                # refusal; a grant at epoch < 1 is a split brain.
                try:
                    reply = await clients[leader].request(
                        "order", timeout=5.0
                    )
                except LiveETFailed:
                    pass
                else:
                    granted = list(reply.get("order") or [])
                    assert len(granted) > 1 and int(granted[1]) >= 1, (
                        "stale leader granted %r at its old epoch"
                        % (granted,)
                    )

                # The revenant adopts the new epoch and steps down.
                revenant = await _wait_election(clients[leader], 1)
                assert revenant["leader"] == new_leader
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if cluster.servers[leader].election.epoch >= 1:
                        break
                    await asyncio.sleep(0.05)
                assert cluster.servers[leader].election.leader == (
                    new_leader
                )

                # And serves as an ordinary replica at the new epoch.
                assert await _ack_one(
                    clients[leader], "acct", time.monotonic() + 20.0
                )
                await cluster.settle(timeout=30.0)
                assert await cluster.converged()
                for client in clients.values():
                    await client.close()
            finally:
                await cluster.stop()

        run(main())
