"""Gossip membership, adaptive failure detection, heartbeat jitter.

Unit tests pin the SWIM-style merge semantics (incarnation versioning,
severity tie-breaks, self-refutation) and the phi-style suspicion
bound; integration tests boot real clusters and check that membership
converges by gossip alone — a joined replica is discovered in both
directions without manual wiring, and an address change after a
restart propagates without the test re-pointing anyone.
"""

import asyncio
import random
import time

from repro.live import LiveCluster
from repro.live.faults import FaultPlan, LinkFaults
from repro.live.gossip import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    FailureDetector,
    MembershipTable,
    NodeRecord,
)
from repro.live.server import ReplicaServer


def run(coro):
    return asyncio.run(coro)


class TestNodeRecord:
    def test_wire_roundtrip(self):
        rec = NodeRecord(
            "siteA", host="127.0.0.1", port=7001, incarnation=3,
            status=SUSPECT, frontier=42, shard=1,
        )
        back = NodeRecord.from_wire(rec.wire())
        assert back.wire() == rec.wire()

    def test_shard_omitted_when_unsharded(self):
        assert "shard" not in NodeRecord("siteA").wire()


class TestMembershipMerge:
    def _table(self):
        table = MembershipTable("siteA")
        table.update_self(host="127.0.0.1", port=7000)
        return table

    def test_unknown_record_inserts(self):
        table = self._table()
        changed = table.merge(
            [NodeRecord("siteB", "127.0.0.1", 7001, incarnation=1).wire()]
        )
        assert changed == ["siteB"]
        assert table.address("siteB") == ("127.0.0.1", 7001)

    def test_higher_incarnation_wins(self):
        table = self._table()
        table.merge([NodeRecord("siteB", "h1", 1, incarnation=2,
                                status=DEAD).wire()])
        # The node itself re-asserts alive at a higher incarnation —
        # the refutation out-versions the death rumor.
        changed = table.merge(
            [NodeRecord("siteB", "h2", 2, incarnation=3).wire()]
        )
        assert changed == ["siteB"]
        rec = table.get("siteB")
        assert (rec.status, rec.host, rec.incarnation) == (ALIVE, "h2", 3)

    def test_higher_incarnation_keeps_max_frontier(self):
        table = self._table()
        table.merge([NodeRecord("siteB", incarnation=1,
                                frontier=90).wire()])
        table.merge([NodeRecord("siteB", incarnation=2,
                                frontier=10).wire()])
        # Frontiers only advance: the newer record wins the liveness
        # fields but cannot roll back what we know was applied.
        assert table.get("siteB").frontier == 90

    def test_equal_incarnation_escalates_severity_only(self):
        table = self._table()
        table.merge([NodeRecord("siteB", incarnation=2,
                                status=SUSPECT).wire()])
        # alive <- suspect at the same incarnation: no de-escalation.
        table.merge([NodeRecord("siteB", incarnation=2).wire()])
        assert table.get("siteB").status == SUSPECT
        table.merge([NodeRecord("siteB", incarnation=2,
                                status=DEAD).wire()])
        assert table.get("siteB").status == DEAD

    def test_equal_incarnation_advances_frontier_and_address(self):
        table = self._table()
        table.merge([NodeRecord("siteB", "h1", 1, incarnation=1,
                                frontier=5).wire()])
        changed = table.merge(
            [NodeRecord("siteB", "h2", 2, incarnation=1,
                        frontier=9).wire()]
        )
        assert changed == ["siteB"]
        rec = table.get("siteB")
        assert (rec.host, rec.port, rec.frontier) == ("h2", 2, 9)

    def test_lower_incarnation_is_ignored(self):
        table = self._table()
        table.merge([NodeRecord("siteB", "h2", 2, incarnation=3).wire()])
        changed = table.merge(
            [NodeRecord("siteB", "h1", 1, incarnation=2,
                        status=DEAD).wire()]
        )
        assert changed == []
        rec = table.get("siteB")
        assert (rec.status, rec.host) == (ALIVE, "h2")

    def test_self_refutation_bumps_incarnation(self):
        table = self._table()
        mine = table.self_record()
        start = mine.incarnation
        changed = table.merge(
            [NodeRecord("siteA", incarnation=start + 4,
                        status=DEAD).wire()]
        )
        assert changed == ["siteA"]
        assert table.self_record().status == ALIVE
        assert table.self_record().incarnation == start + 5

    def test_observe_seeds_at_incarnation_zero(self):
        table = self._table()
        table.observe("siteB", "127.0.0.1", 7001)
        assert table.get("siteB").incarnation == 0
        # Any gossiped record from the node itself (incarnation >= 1)
        # out-versions the static seed.
        table.merge([NodeRecord("siteB", "10.0.0.9", 9001,
                                incarnation=1).wire()])
        assert table.address("siteB") == ("10.0.0.9", 9001)

    def test_set_status_escalates_but_never_deescalates(self):
        table = self._table()
        table.observe("siteB")
        assert table.set_status("siteB", SUSPECT)
        assert table.set_status("siteB", DEAD)
        assert not table.set_status("siteB", SUSPECT)
        assert not table.set_status("siteB", ALIVE)
        assert table.get("siteB").status == DEAD

    def test_left_members_drop_out_of_active_views(self):
        table = self._table()
        table.observe("siteB")
        table.observe("siteC")
        table.set_status("siteC", LEFT)
        assert table.member_names() == ["siteA", "siteB"]
        assert table.member_names(include_left=True) == [
            "siteA", "siteB", "siteC",
        ]
        assert table.active_count() == 2


class TestMembershipPersistence:
    def test_incarnation_bumps_every_boot(self, tmp_path):
        path = tmp_path / "membership.json"
        table = MembershipTable("siteA", path)
        table.load()
        first = table.self_record().incarnation
        table.update_self(host="127.0.0.1", port=7000)

        reborn = MembershipTable("siteA", path)
        reborn.load()
        # A reboot re-asserts alive at a strictly higher incarnation,
        # so the restarted node's record out-versions any death rumor
        # gossiped while it was down.
        assert reborn.self_record().incarnation == first + 1
        assert reborn.self_record().status == ALIVE
        assert reborn.address("siteA") == ("127.0.0.1", 7000)

    def test_peer_records_survive_restart(self, tmp_path):
        path = tmp_path / "membership.json"
        table = MembershipTable("siteA", path)
        table.load()
        table.merge([NodeRecord("siteB", "127.0.0.1", 7001,
                                incarnation=2).wire()])
        reborn = MembershipTable("siteA", path)
        reborn.load()
        assert reborn.address("siteB") == ("127.0.0.1", 7001)
        assert reborn.get("siteB").incarnation == 2


class TestFailureDetector:
    def test_floor_applies_before_enough_samples(self):
        det = FailureDetector(floor=0.5)
        det.heartbeat("p", 0.0)
        det.heartbeat("p", 0.1)
        assert det.timeout("p") == 0.5
        assert not det.suspect("p", 0.5)
        assert det.suspect("p", 0.7)

    def test_adaptive_bound_tracks_jittery_arrivals(self):
        det = FailureDetector(floor=0.15, min_samples=8)
        rng = random.Random(7)
        now = 0.0
        gaps = []
        for _ in range(40):
            gap = rng.uniform(0.05, 0.3)
            gaps.append(gap)
            now += gap
            det.heartbeat("p", now)
        bound = det.timeout("p")
        # The bound adapted above the (flappy) fixed floor and above
        # every gap actually observed.
        assert bound > 0.15
        assert bound > max(gaps)
        assert det.dead("p", now + 3.0 * bound + 0.01)
        assert not det.dead("p", now + 3.0 * bound - 0.01)

    def test_no_flap_regression_under_high_jitter(self):
        """The fixed-threshold detector this replaces would flap on a
        profile whose gaps routinely exceed the floor; the adaptive
        bound must ride it out after warm-up."""
        det = FailureDetector(floor=0.15, min_samples=8)
        rng = random.Random(23)
        now = 0.0
        det.heartbeat("p", now)
        arrivals = []
        for _ in range(60):
            now += rng.uniform(0.05, 0.3)
            arrivals.append(now)
        flaps = 0
        fixed_flaps = 0
        for i, at in enumerate(arrivals):
            if i >= 8:
                # Just before each arrival: the peer is at its stalest.
                if det.suspect("p", at - 1e-6):
                    flaps += 1
                if det.staleness("p", at - 1e-6) > 0.15:
                    fixed_flaps += 1
            det.heartbeat("p", at)
        assert flaps == 0
        # ...while a fixed 0.15s threshold would have suspected the
        # healthy peer over and over on the same arrival sequence.
        assert fixed_flaps > 10

    def test_forget_clears_history(self):
        det = FailureDetector(floor=0.5)
        det.heartbeat("p", 1.0)
        det.forget("p")
        assert det.last_seen("p") is None
        assert not det.suspect("p", 99.0)


class TestHeartbeatJitter:
    def _server(self, tmp_path, name="siteA"):
        return ReplicaServer(
            name, ["siteA", "siteB"], tmp_path / name,
            heartbeat_interval=0.2,
        )

    def test_jitter_spreads_within_bounds(self, tmp_path):
        server = self._server(tmp_path)
        samples = [server._heartbeat_jitter() for _ in range(200)]
        assert all(0.15 <= s <= 0.25 for s in samples)
        # Actually jittered: the spread covers a real chunk of the
        # +/-25% band, so replica heartbeats cannot phase-lock.
        assert max(samples) - min(samples) > 0.05

    def test_jitter_streams_differ_across_replicas(self, tmp_path):
        one = self._server(tmp_path, "siteA")
        two = ReplicaServer(
            "siteB", ["siteA", "siteB"], tmp_path / "siteB",
            heartbeat_interval=0.2,
        )
        a = [one._heartbeat_jitter() for _ in range(20)]
        b = [two._heartbeat_jitter() for _ in range(20)]
        assert a != b


class TestLiveGossip:
    def test_membership_converges_across_cluster(self, tmp_path):
        async def main():
            cluster = LiveCluster(
                n_sites=3, data_dir=tmp_path, heartbeat_interval=0.05,
            )
            await cluster.start()
            try:
                names = set(cluster.names)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    tables = [
                        cluster.servers[n].membership for n in names
                    ]
                    if all(
                        set(t.member_names()) == names
                        and all(t.address(m) for m in names)
                        for t in tables
                    ):
                        break
                    await asyncio.sleep(0.05)
                for name in names:
                    table = cluster.servers[name].membership
                    assert set(table.member_names()) == names
                    for member in names:
                        assert table.address(member) is not None
                # Clients learn the same view from stats replies.
                client = await cluster.client(cluster.names[0])
                addrs = await client.refresh_membership()
                assert len(addrs) == len(names)
                await client.close()
            finally:
                await cluster.stop()

        run(main())

    def test_joined_replica_discovered_both_ways(self, tmp_path):
        async def main():
            cluster = LiveCluster(
                n_sites=3, data_dir=tmp_path, heartbeat_interval=0.05,
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                for i in range(12):
                    await client.increment("acct%d" % (i % 3), 1)
                # One seed address; everything else travels by gossip.
                await cluster.join("site3", seed="site0")
                expect = set(cluster.names)
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    joined = cluster.servers["site3"].membership
                    far = cluster.servers["site2"].membership
                    if (
                        set(joined.member_names()) == expect
                        and far.address("site3") is not None
                    ):
                        break
                    await asyncio.sleep(0.05)
                # The joiner learned every member through its one seed,
                # and a replica the joiner never dialed learned the
                # joiner's address.
                assert set(
                    cluster.servers["site3"].membership.member_names()
                ) == expect
                assert (
                    cluster.servers["site2"].membership.address("site3")
                    is not None
                )
                # State flows to the new member without manual wiring.
                await client.increment("acct0", 1)
                await cluster.settle(timeout=30.0)
                values = await cluster.site_values()
                assert values["site3"] == values["site0"]
                await client.close()
            finally:
                await cluster.stop()

        run(main())

    def test_restarted_address_relearned_by_gossip(self, tmp_path):
        async def main():
            cluster = LiveCluster(
                n_sites=3, data_dir=tmp_path, heartbeat_interval=0.05,
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                for i in range(8):
                    await client.increment("acct%d" % (i % 3), 1)
                await cluster.settle(timeout=30.0)
                # Restart on a fresh port *without* re-pointing the
                # other replicas: the survivors must learn the new
                # address from the restarted node's bumped-incarnation
                # gossip record, not from test wiring.
                await cluster.kill("site2")
                await cluster.restart("site2", rewire=False)
                deadline = time.monotonic() + 15.0
                new_addr = cluster.addrs["site2"]
                while time.monotonic() < deadline:
                    learned = cluster.servers["site0"].membership.address(
                        "site2"
                    )
                    if learned == new_addr:
                        break
                    await asyncio.sleep(0.05)
                assert (
                    cluster.servers["site0"].membership.address("site2")
                    == new_addr
                )
                await client.increment("acct0", 1)
                await cluster.settle(timeout=30.0)
                assert await cluster.converged()
                await client.close()
            finally:
                await cluster.stop()

        run(main())

    def test_no_degraded_flaps_under_wan_jitter(self, tmp_path):
        """Regression for the fixed-threshold detector: with frame
        delays routinely exceeding ``suspect_after``, a healthy cluster
        must stop flapping in and out of degraded mode once the
        adaptive bound has warmed up."""

        async def main():
            plan = FaultPlan(
                seed=7,
                default=LinkFaults(delay_min=0.05, delay_max=0.25),
            )
            cluster = LiveCluster(
                n_sites=2,
                data_dir=tmp_path,
                faults=plan,
                heartbeat_interval=0.05,
                suspect_after=0.15,
            )
            await cluster.start()
            started = time.monotonic()
            try:
                await asyncio.sleep(6.0)
                warmup = started + 3.0
                late_flips = []
                for server in cluster.servers.values():
                    peer = [
                        p for p in cluster.names if p != server.name
                    ][0]
                    # The bound adapted above the flappy fixed floor.
                    assert server.detector.timeout(peer) > 0.15
                    for event in server.trace.snapshot():
                        if (
                            event.get("kind") == "degraded"
                            and event.get("value") == 1
                            and event.get("ts", 0.0) > warmup
                        ):
                            late_flips.append((server.name, event))
                assert late_flips == [], late_flips
            finally:
                await cluster.stop()

        run(main())
