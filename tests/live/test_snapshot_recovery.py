"""Snapshot checkpoints, catch-up, and rejoin across the live stack.

Bottom-up coverage of the recovery tentpole: the envelope format
(versioned + checksummed, corrupt images read as absent), engine
checkpoint/restore round-trips, the server's snapshot verb with log
compaction, restart-from-snapshot equivalence, anti-entropy rejoin of
a disk-wiped replica, backpressure shedding (``OVERLOADED``), client
primary rehoming after failover, and the packaged rejoin chaos
scenario.
"""

import asyncio

import pytest

from repro.live import (
    LiveCluster,
    LiveETFailed,
    RejoinConfig,
    SnapshotError,
    SnapshotStore,
    open_snapshot,
    run_rejoin,
    seal_snapshot,
)
from repro.live.client import LiveClient
from repro.live.engine import make_engine
from repro.live.server import LOCAL_CHANNEL, ReplicaServer


def run(coro):
    return asyncio.run(coro)


#: timings tuned for test speed, not realism.
FAST = dict(heartbeat_interval=0.1, suspect_after=0.4)


def _body(**overrides):
    body = {
        "site": "site0",
        "method": "commu",
        "frontiers": {LOCAL_CHANNEL: 3, "site1": 2},
        "engine": {"values": {"k": 1}},
    }
    body.update(overrides)
    return body


class TestSnapshotEnvelope:
    def test_seal_open_round_trip(self):
        body = _body()
        envelope = seal_snapshot(body)
        assert envelope["version"] == 1
        assert open_snapshot(envelope) == body

    def test_tampered_body_is_rejected(self):
        envelope = seal_snapshot(_body())
        envelope["body"]["frontiers"]["site1"] = 999
        with pytest.raises(SnapshotError):
            open_snapshot(envelope)

    def test_alien_version_is_rejected(self):
        envelope = seal_snapshot(_body())
        envelope["version"] = 2
        with pytest.raises(SnapshotError):
            open_snapshot(envelope)

    def test_missing_fields_are_rejected(self):
        envelope = seal_snapshot({"site": "site0"})
        with pytest.raises(SnapshotError):
            open_snapshot(envelope)

    def test_store_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        body = _body()
        assert store.load() is None
        assert not store.exists()
        assert store.save(seal_snapshot(body)) > 0
        assert store.exists()
        assert store.load() == body

    def test_corrupt_file_reads_as_absent(self, tmp_path):
        path = tmp_path / "snapshot.json"
        store = SnapshotStore(path)
        store.save(seal_snapshot(_body()))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn image
        assert store.load() is None
        path.write_bytes(b"not json at all\n")
        assert store.load() is None


class TestEngineCheckpoint:
    @pytest.mark.parametrize("method", ["commu", "ordup", "rowa"])
    def test_checkpoint_restore_round_trip(self, method):
        async def scenario():
            peers = ("site0", "site1", "site2")
            engine = make_engine(method, "site0", peers)
            image = await engine.checkpoint()
            clone = make_engine(method, "site0", peers)
            await clone.restore(image)
            # The restore is faithful: checkpointing the clone yields
            # the identical image.
            assert await clone.checkpoint() == image

        run(scenario())

    def test_checkpoint_after_load_round_trips(self, tmp_path):
        """A checkpoint taken mid-life (non-empty store, advanced
        frontiers) restores into an equal engine."""

        async def scenario():
            cluster = LiveCluster(
                n_sites=2, method="commu", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                for i in range(12):
                    await client.increment("k%d" % (i % 3), 1)
                await cluster.settle()
                engine = cluster.servers["site0"].engine
                image = await engine.checkpoint()
                clone = make_engine(
                    "commu", "site0", ("site0", "site1")
                )
                await clone.restore(image)
                assert await clone.checkpoint() == image
            finally:
                await cluster.stop()

        run(scenario())


class TestSnapshotVerb:
    def test_snapshot_compacts_the_logs(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method="commu", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                for i in range(20):
                    await client.increment("k%d" % (i % 4), 1)
                await cluster.settle()
                summary = await cluster.snapshot("site0")
                assert summary["bytes"] > 0
                assert summary["frontiers"][LOCAL_CHANNEL] == 20
                # Every applied record was below the snapshot
                # frontier, so compaction dropped all of them:
                # 20 local + 2 peer inboxes' worth on this site.
                assert summary["compacted"] > 0
                stats = (await cluster.site_stats())["site0"]
                assert stats["snapshot"]["exists"] is True
                assert stats["log_bases"]["inbox"][LOCAL_CHANNEL] == 20
                # Compaction is observable, and a second snapshot
                # with no new work compacts nothing further.
                again = await cluster.snapshot("site0")
                assert again["compacted"] == 0
            finally:
                await cluster.stop()

        run(scenario())

    def test_restart_from_snapshot_preserves_state(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method="commu", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                for i in range(30):
                    await client.increment("k%d" % (i % 4), 1)
                await cluster.settle()
                await cluster.snapshot_all()
                before = await cluster.site_values()

                # Kill + restart: recovery now starts from the
                # snapshot and replays only the (empty) log tails.
                await cluster.kill("site2")
                await cluster.restart("site2")
                await cluster.settle()
                assert await cluster.converged()
                assert (await cluster.site_values())["site2"] == (
                    before["site2"]
                )
                # And the restarted replica still accepts new work.
                client2 = await cluster.client("site2")
                await client2.increment("k0", 1)
                await cluster.settle()
                assert await cluster.converged()
            finally:
                await cluster.stop()

        run(scenario())


class TestWipedReplicaRejoin:
    def test_wiped_replica_rejoins_via_snapshot_transfer(self, tmp_path):
        """Disk loss + compacted donors: replay is impossible, the
        wiped replica must fetch and install a peer snapshot."""

        async def scenario():
            cluster = LiveCluster(
                n_sites=3, method="commu", data_dir=tmp_path, **FAST
            )
            await cluster.start()
            try:
                clients = {
                    name: await cluster.client(name)
                    for name in cluster.names
                }
                for i in range(24):
                    name = cluster.names[i % 3]
                    await clients[name].increment("k%d" % (i % 4), 1)
                await cluster.settle()
                # Compact everywhere: donor logs can no longer serve
                # the wiped site's history from seq 1.
                await cluster.snapshot_all()
                before = await cluster.site_values()

                await cluster.wipe("site2")
                await cluster.restart("site2")
                await cluster.wait_caught_up("site2")
                await cluster.settle()

                stats = await cluster.site_stats()
                assert stats["site2"]["catchup_installs"] >= 1
                assert stats["site2"]["catching_up"] is False
                assert await cluster.converged()
                # No acked update lost: the pre-wipe state survived
                # the wipe via the snapshot transfer.
                assert (await cluster.site_values())["site2"] == (
                    before["site0"]
                )

                # The rejoined replica is a first-class citizen again:
                # its fresh transaction ids collide with nothing.
                client2 = await cluster.client("site2")
                for _ in range(6):
                    await client2.increment("k0", 1)
                await cluster.settle()
                assert await cluster.converged()
            finally:
                await cluster.stop()

        run(scenario())


class TestBackpressure:
    def test_updates_shed_with_overloaded_when_backlog_grows(
        self, tmp_path
    ):
        async def scenario():
            cluster = LiveCluster(
                n_sites=2,
                method="commu",
                data_dir=tmp_path,
                server_options={"backlog_limit": 6},
                **FAST,
            )
            await cluster.start()
            try:
                client = await cluster.client("site0")
                stats = (await cluster.site_stats())["site0"]
                assert stats["backlog_limit"] == 6
                # With the peer down, every accepted update parks in
                # the outbox; past the limit the replica sheds load
                # with a *typed* error instead of growing unboundedly.
                await cluster.kill("site1")
                accepted, outcome = 0, None
                for _ in range(20):
                    try:
                        await client.increment("k0", 1)
                        accepted += 1
                    except LiveETFailed as exc:
                        outcome = exc
                        break
                assert outcome is not None, "backlog never hit the limit"
                assert outcome.overloaded
                assert outcome.code == "OVERLOADED"
                assert accepted <= 6

                # Draining the backlog restores service.
                await cluster.restart("site1")
                await cluster.settle()
                await client.increment("k0", 1)
                await cluster.settle()
                assert await cluster.converged()
            finally:
                await cluster.stop()

        run(scenario())


class TestClientRehoming:
    def test_client_rehomes_to_primary_after_failover(self, tmp_path):
        async def scenario():
            names = ["site0", "site1"]
            servers = {}
            for name in names:
                servers[name] = ReplicaServer(
                    name,
                    peers=names,
                    data_dir=tmp_path / name,
                    method="commu",
                    **FAST,
                )
            addrs = {
                name: ("127.0.0.1", await server.bind("127.0.0.1", 0))
                for name, server in servers.items()
            }
            for server in servers.values():
                server.set_peers(addrs)
                server.start_channels()
            client = await LiveClient.connect(
                *addrs["site0"],
                failover=[addrs["site1"]],
                primary_retry_interval=0.1,
            )
            try:
                await client.values()
                assert client._active_index == 0

                # Primary dies: the next idempotent request fails
                # over to the secondary.
                await servers["site0"].stop()
                await client.values()
                assert client._active_index == 1
                assert client.rehomes == 0

                # Primary returns on the *same* address: after the
                # retry interval, an idle moment rehomes the client.
                servers["site0"] = ReplicaServer(
                    "site0",
                    peers=names,
                    data_dir=tmp_path / "site0",
                    method="commu",
                    **FAST,
                )
                await servers["site0"].bind(*addrs["site0"])
                servers["site0"].set_peers(addrs)
                servers["site0"].start_channels()
                deadline = asyncio.get_event_loop().time() + 5.0
                while (
                    client._active_index != 0
                    and asyncio.get_event_loop().time() < deadline
                ):
                    await asyncio.sleep(0.12)
                    await client.values()
                assert client._active_index == 0
                assert client.rehomes == 1
                # The rehomed connection actually works.
                await client.increment("k0", 1)
            finally:
                await client.close()
                for server in servers.values():
                    await server.stop()

        run(scenario())


class TestRejoinScenario:
    @pytest.mark.parametrize("method", ["commu", "ordup"])
    def test_packaged_rejoin_scenario_holds_invariants(
        self, method, tmp_path
    ):
        async def scenario():
            config = RejoinConfig(
                seed=11,
                method=method,
                n_updates_before=18,
                n_updates_during=18,
                n_updates_after=6,
                heartbeat_interval=0.1,
                suspect_after=0.4,
            )
            report = await run_rejoin(config)
            assert report.violations() == [], report.render()
            assert report.catchup_installs >= 1
            assert report.converged
            assert report.compacted_records > 0

        run(scenario())

    def test_long_downtime_without_wipe_recovers(self, tmp_path):
        """Keep the disk: recovery may use channel redelivery alone,
        but every invariant still holds."""

        async def scenario():
            config = RejoinConfig(
                seed=12,
                wipe=False,
                n_updates_before=18,
                n_updates_during=18,
                n_updates_after=6,
                heartbeat_interval=0.1,
                suspect_after=0.4,
            )
            report = await run_rejoin(config)
            assert report.violations() == [], report.render()
            assert report.converged

        run(scenario())
