"""Observability layer over the live runtime, plus regression tests
for the latent-bug sweep (silent error handlers, settle error
attribution, fsync-window durability claims).
"""

import asyncio
import re

import pytest

from repro.core.transactions import EpsilonSpec
from repro.live import LiveCluster
from repro.live.protocol import read_frame, write_frame
from repro.live.server import LOCAL_CHANNEL


def run(coro):
    return asyncio.run(coro)


async def _booted(tmp_path, **kwargs):
    cluster = LiveCluster(
        n_sites=kwargs.pop("n_sites", 2), data_dir=tmp_path, **kwargs
    )
    await cluster.start()
    return cluster


class TestMetricsVerb:
    def test_scrape_exposes_key_series(self, tmp_path):
        """The acceptance smoke: after traffic, the metrics verb
        serves well-formed Prometheus text containing the epsilon
        gauge and the ack-latency histogram."""

        async def scenario():
            cluster = await _booted(tmp_path)
            try:
                client = await cluster.client("site0")
                for i in range(8):
                    await client.increment("x", 1)
                await client.query(["x"], EpsilonSpec(import_limit=5))
                await cluster.settle(timeout=30)

                scrape = await client.metrics()
                text = scrape["prometheus"]
                assert scrape["site"] == "site0"

                # Key series: per-method epsilon gauge + ack latency.
                assert re.search(
                    r'repro_epsilon_last\{method="COMMU",site="site0"\} \d',
                    text,
                )
                assert (
                    'repro_ack_latency_seconds_bucket{peer="site1",'
                    'site="site0",le="+Inf"}' in text
                )
                # Exposition well-formedness: every series typed, every
                # histogram closed by +Inf, bucket counts monotone.
                for family in (
                    "repro_epsilon_last",
                    "repro_ack_latency_seconds",
                    "repro_applied_msets_total",
                ):
                    assert "# TYPE %s " % family in text
                buckets = [
                    int(m.group(1))
                    for m in re.finditer(
                        r'repro_ack_latency_seconds_bucket\{peer="site1",'
                        r'site="site0",le="[^"]+"\} (\d+)',
                        text,
                    )
                ]
                assert buckets == sorted(buckets) and buckets[-1] >= 1

                # The JSON mirror carries the same sample.
                fam = scrape["metrics"]["repro_epsilon_last"]
                assert fam["type"] == "gauge"
                assert any(
                    s["labels"].get("method") == "COMMU"
                    for s in fam["samples"]
                )
            finally:
                await cluster.stop()

        run(scenario())

    def test_update_lifecycle_appears_in_trace(self, tmp_path):
        async def scenario():
            cluster = await _booted(tmp_path)
            try:
                client = await cluster.client("site0")
                await client.increment("x", 1)
                await cluster.settle(timeout=30)
                kinds = {
                    e["kind"]
                    for e in cluster.servers["site0"].trace.snapshot()
                }
                assert {"update-submit", "update-apply"} <= kinds
                assert "update-ack" in kinds  # peer ack arrived
            finally:
                await cluster.stop()

        run(scenario())

    def test_observability_off_serves_empty_registry(self, tmp_path):
        async def scenario():
            cluster = await _booted(tmp_path, observability=False)
            try:
                client = await cluster.client("site0")
                await client.increment("x", 1)
                scrape = await client.metrics()
                assert scrape["prometheus"] == ""
                assert scrape["metrics"] == {}
                assert cluster.servers["site0"].trace.recorded == 0
            finally:
                await cluster.stop()

        run(scenario())


class TestSilentHandlerRegressions:
    def test_unknown_peer_frame_is_counted_not_silent(self, tmp_path):
        """Regression: frames from unknown peers were dropped with a
        bare ``return`` — invisible.  Now the drop lands in the
        ``frames_dropped_total{reason="unknown_peer"}`` counter."""

        async def scenario():
            cluster = await _booted(tmp_path)
            try:
                host, port = cluster.addrs["site0"]
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(
                    writer, {"type": "peer-hello", "src": "stranger"}
                )
                await write_frame(
                    writer,
                    {"type": "mset", "src": "stranger", "seq": 1},
                )
                await asyncio.sleep(0.1)
                writer.close()
                server = cluster.servers["site0"]
                assert (
                    server.registry.get_sample(
                        "frames_dropped_total", reason="unknown_peer"
                    )
                    == 1
                )
            finally:
                await cluster.stop()

        run(scenario())

    def test_degraded_transition_flips_gauge(self, tmp_path):
        """Severing both links must flip the degraded gauge to 1 and
        count a transition (visible to an operator, not just pollers
        of the stats verb)."""
        from repro.live.faults import FaultPlan

        async def scenario():
            plan = FaultPlan()
            cluster = await _booted(
                tmp_path,
                faults=plan,
                heartbeat_interval=0.05,
                suspect_after=0.15,
            )
            try:
                cluster.partition([["site0"], ["site1"]])
                deadline = asyncio.get_event_loop().time() + 5.0
                server = cluster.servers["site0"]
                while asyncio.get_event_loop().time() < deadline:
                    if server.degraded():
                        break
                    await asyncio.sleep(0.05)
                assert server.degraded()
                # Let the monitor tick observe the flip.
                await asyncio.sleep(0.1)
                reg = server.registry
                assert reg.get_sample("degraded") == 1
                assert (
                    reg.get_sample("degraded_transitions_total") >= 1
                )
                kinds = [
                    e
                    for e in server.trace.snapshot()
                    if e["kind"] == "degraded"
                ]
                assert kinds and kinds[-1]["value"] == 1
            finally:
                await cluster.stop()

        run(scenario())


class TestSettleErrorAttribution:
    def test_replica_failure_names_the_replica(self, tmp_path):
        """Regression: a real replica error during the settle sweep
        surfaced as a bare client exception with no site attribution
        (and non-timeout errors were matched by string)."""

        async def scenario():
            cluster = await _booted(tmp_path)
            try:

                async def broken(frame):
                    raise RuntimeError("lock table corrupt")

                cluster.servers["site1"]._handle_settle = broken
                with pytest.raises(RuntimeError) as excinfo:
                    await cluster.settle(timeout=5)
                message = str(excinfo.value)
                assert "site1" in message
                assert "lock table corrupt" in message
            finally:
                await cluster.stop()

        run(scenario())

    def test_settle_timeout_names_the_stuck_replica(self, tmp_path):
        async def scenario():
            cluster = await _booted(tmp_path)
            try:

                async def stuck(frame):
                    raise TimeoutError(
                        "settle timed out after 0.1s: backlog {}"
                    )

                cluster.servers["site1"]._handle_settle = stuck
                with pytest.raises(TimeoutError) as excinfo:
                    await cluster.settle(timeout=5)
                assert "site1" in str(excinfo.value)
            finally:
                await cluster.stop()

        run(scenario())


class TestFsyncWindowDurabilityClaims:
    def test_no_dirty_log_behind_any_ack(self, tmp_path):
        """Regression for the fsync_interval crash window: with a huge
        interval, records written inside the window used to be acked
        (to clients and to peers) before any covering fsync.  Now every
        ack path forces ``sync()`` first, so no log an acknowledgement
        depends on may be dirty once the ack is out."""

        async def scenario():
            cluster = await _booted(
                tmp_path, fsync=True, fsync_interval=3600.0
            )
            try:
                client = await cluster.client("site0")
                for i in range(5):
                    await client.increment("x", 1)
                    origin = cluster.servers["site0"]
                    # Client ack implies the local log and every
                    # outbound channel log are synced.
                    assert not origin.inboxes[LOCAL_CHANNEL].dirty
                    for outbox in origin.outboxes.values():
                        assert not outbox.dirty
                await cluster.settle(timeout=30)
                receiver = cluster.servers["site1"]
                # The channel ack advanced site0's frontier, so the
                # receiving inbox must have been synced first.
                assert not receiver.inboxes["site0"].dirty
                assert (
                    cluster.servers["site0"].outboxes["site1"].backlog
                    == 0
                )
            finally:
                await cluster.stop()

        run(scenario())

    def test_fsync_metrics_exposed(self, tmp_path):
        async def scenario():
            cluster = await _booted(
                tmp_path, fsync=True, fsync_interval=0.0
            )
            try:
                client = await cluster.client("site0")
                await client.increment("x", 1)
                await cluster.settle(timeout=30)
                scrape = await client.metrics()
                text = scrape["prometheus"]
                assert re.search(
                    r'repro_log_fsync_total\{log="inbox/_local",'
                    r'site="site0"\} [1-9]',
                    text,
                )
                assert "repro_log_bytes_total" in text
            finally:
                await cluster.stop()

        run(scenario())
