"""Unit tests for the Zipf sampler."""

import random

import pytest

from repro.workload.zipf import ZipfSampler


class TestValidation:
    def test_domain_must_be_positive(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_skew_must_be_non_negative(self):
        with pytest.raises(ValueError):
            ZipfSampler(5, -0.5)

    def test_probability_index_bounds(self):
        sampler = ZipfSampler(3)
        with pytest.raises(IndexError):
            sampler.probability(3)
        with pytest.raises(IndexError):
            sampler.probability(-1)


class TestDistribution:
    def test_samples_within_domain(self):
        sampler = ZipfSampler(10, 1.0)
        rng = random.Random(1)
        assert all(0 <= s < 10 for s in sampler.sample_many(rng, 500))

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, 1.2)
        total = sum(sampler.probability(i) for i in range(20))
        assert total == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        sampler = ZipfSampler(4, 0.0)
        probs = [sampler.probability(i) for i in range(4)]
        assert all(p == pytest.approx(0.25) for p in probs)

    def test_skew_prefers_low_indices(self):
        sampler = ZipfSampler(10, 1.0)
        assert sampler.probability(0) > sampler.probability(9)

    def test_higher_skew_is_more_concentrated(self):
        mild = ZipfSampler(10, 0.5)
        steep = ZipfSampler(10, 2.0)
        assert steep.probability(0) > mild.probability(0)

    def test_empirical_frequencies_match(self):
        sampler = ZipfSampler(5, 1.0)
        rng = random.Random(42)
        counts = [0] * 5
        n = 20_000
        for s in sampler.sample_many(rng, n):
            counts[s] += 1
        for i in range(5):
            assert counts[i] / n == pytest.approx(
                sampler.probability(i), abs=0.02
            )

    def test_deterministic_given_seed(self):
        sampler = ZipfSampler(10, 1.0)
        a = sampler.sample_many(random.Random(7), 20)
        b = sampler.sample_many(random.Random(7), 20)
        assert a == b
