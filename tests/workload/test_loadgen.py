"""Open-loop load driver: schedule determinism, a small end-to-end
run against an in-process cluster, and the CLI surface."""

import json

import pytest

from repro.workload.loadgen import (
    LoadgenConfig,
    _percentiles,
    _plan,
    run_loadgen_sync,
)


class TestPlanning:
    def test_offered_rate_is_users_over_think_time(self):
        config = LoadgenConfig(users=100_000, think_time=50.0)
        assert config.offered_rate() == pytest.approx(2000.0)
        explicit = LoadgenConfig(rate=123.0)
        assert explicit.offered_rate() == pytest.approx(123.0)

    def test_schedule_is_open_loop_and_deterministic(self):
        config = LoadgenConfig(rate=100.0, duration=1.0, seed=11)
        plan = _plan(config)
        assert len(plan) == 100
        arrivals = [req[0] for req in plan]
        # Open loop: arrival times come from the offered rate alone,
        # fixed before any response is seen.
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == pytest.approx(0.0)
        assert arrivals[-1] < 1.0
        assert _plan(LoadgenConfig(rate=100.0, duration=1.0, seed=11)) == plan
        assert _plan(LoadgenConfig(rate=100.0, duration=1.0, seed=12)) != plan

    def test_mix_covers_all_read_classes(self):
        plan = _plan(LoadgenConfig(rate=2000.0, duration=1.0, seed=3))
        classes = {req[1] for req in plan}
        assert {"write", "cached", "bounded", "session", "strict"} <= classes

    def test_percentiles(self):
        stats = _percentiles([float(i) for i in range(1, 101)])
        assert stats["p50"] == pytest.approx(50.0, abs=1.0)
        assert stats["p99"] == pytest.approx(99.0, abs=1.0)
        assert stats["max"] == 100.0


class TestEndToEnd:
    def test_small_run_completes_and_reports(self):
        config = LoadgenConfig(
            users=400,
            think_time=4.0,  # 100 req/s offered
            duration=1.0,
            keys=32,
            connections=2,
            session_pool=50,
            seed=5,
            sites=3,
        )
        report = run_loadgen_sync(config)
        assert report.issued == 100
        assert report.completed > 0
        assert report.completed + report.failed == report.issued
        # Every latency block carries the full percentile set.
        assert "overall" in report.latency
        for stats in report.latency.values():
            assert {"p50", "p95", "p99", "max", "mean"} <= stats.keys()
        assert sum(report.by_class.values()) == report.completed
        assert report.throughput > 0
        # The whole report survives JSON (the CLI's --json path).
        parsed = json.loads(json.dumps(report.as_dict()))
        assert parsed["issued"] == 100
        rendered = report.render()
        assert "req/s offered" in rendered and "overall" in rendered


class TestCLI:
    def test_loadgen_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "loadgen.json"
        code = main(
            [
                "loadgen",
                "--users", "200",
                "--think-time", "4",  # 50 req/s
                "--duration", "0.5",
                "--keys", "16",
                "--connections", "2",
                "--sessions", "20",
                "--seed", "9",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert "req/s offered" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["issued"] == 25
        assert payload["completed"] > 0
