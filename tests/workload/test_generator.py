"""Unit tests for the workload generator."""

import pytest

from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import UNLIMITED, reset_tid_counter
from repro.workload.generator import (
    Submission,
    WorkloadGenerator,
    WorkloadSpec,
)


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


SITES = ["site0", "site1", "site2"]


class TestSpecValidation:
    def test_bad_query_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec(query_fraction=1.5)

    def test_bad_style(self):
        with pytest.raises(ValueError):
            WorkloadSpec(style="chaotic")

    def test_bad_abort_rate(self):
        with pytest.raises(ValueError):
            WorkloadSpec(abort_rate=2.0)

    def test_keys_naming(self):
        spec = WorkloadSpec(n_keys=3, key_prefix="k")
        assert spec.keys() == ["k0", "k1", "k2"]

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(WorkloadSpec(), [])


class TestGeneration:
    def test_count_respected(self):
        gen = WorkloadGenerator(WorkloadSpec(count=37), SITES, seed=1)
        assert len(gen.generate()) == 37

    def test_times_strictly_increasing(self):
        gen = WorkloadGenerator(WorkloadSpec(count=50), SITES, seed=1)
        times = [s.time for s in gen.generate()]
        assert times == sorted(times)
        assert times[0] > 0

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(WorkloadSpec(count=30), SITES, seed=5)
        b = WorkloadGenerator(WorkloadSpec(count=30), SITES, seed=5)
        sa = [(s.time, s.site, s.et.is_query) for s in a.generate()]
        reset_tid_counter()
        sb = [(s.time, s.site, s.et.is_query) for s in b.generate()]
        assert sa == sb

    def test_sites_come_from_roster(self):
        gen = WorkloadGenerator(WorkloadSpec(count=40), SITES, seed=2)
        assert all(s.site in SITES for s in gen.generate())

    def test_query_fraction_zero_and_one(self):
        all_updates = WorkloadGenerator(
            WorkloadSpec(count=20, query_fraction=0.0), SITES, seed=3
        ).generate()
        assert all(s.et.is_update for s in all_updates)
        reset_tid_counter()
        all_queries = WorkloadGenerator(
            WorkloadSpec(count=20, query_fraction=1.0), SITES, seed=3
        ).generate()
        assert all(s.et.is_query for s in all_queries)

    def test_epsilon_applied_to_queries(self):
        gen = WorkloadGenerator(
            WorkloadSpec(count=30, query_fraction=1.0, epsilon=3),
            SITES,
            seed=4,
        )
        assert all(
            s.et.spec.import_limit == 3 for s in gen.generate()
        )


class TestStyles:
    def _ops(self, style, seed=5, extra=None):
        spec = WorkloadSpec(
            count=40, query_fraction=0.0, style=style,
            **(extra or {}),
        )
        gen = WorkloadGenerator(spec, SITES, seed=seed)
        ops = []
        for sub in gen.generate():
            ops.extend(sub.et.operations)
        return ops

    def test_commutative_style(self):
        ops = self._ops("commutative")
        assert all(isinstance(op, (IncrementOp,)) or op.__class__.__name__ ==
                   "DecrementOp" for op in ops)

    def test_blind_style(self):
        ops = self._ops("blind")
        assert all(isinstance(op, WriteOp) for op in ops)

    def test_mixed_style_contains_multiplies(self):
        ops = self._ops("mixed", extra={"mixed_multiply_fraction": 0.5})
        assert any(isinstance(op, MultiplyOp) for op in ops)

    def test_update_ops_count(self):
        spec = WorkloadSpec(count=10, query_fraction=0.0, update_ops=3)
        gen = WorkloadGenerator(spec, SITES, seed=6)
        assert all(len(s.et.operations) == 3 for s in gen.generate())

    def test_query_ops_count(self):
        spec = WorkloadSpec(count=10, query_fraction=1.0, query_ops=4)
        gen = WorkloadGenerator(spec, SITES, seed=6)
        assert all(len(s.et.operations) == 4 for s in gen.generate())

    def test_distinct_keys_within_et(self):
        spec = WorkloadSpec(
            n_keys=10, count=20, query_fraction=0.0, update_ops=3
        )
        gen = WorkloadGenerator(spec, SITES, seed=7)
        for sub in gen.generate():
            keys = [op.key for op in sub.et.operations]
            assert len(set(keys)) == len(keys)


class TestAbortFlags:
    def test_no_aborts_by_default(self):
        gen = WorkloadGenerator(
            WorkloadSpec(count=30, query_fraction=0.0), SITES, seed=8
        )
        assert not any(s.will_abort for s in gen.generate())

    def test_abort_rate_produces_flags(self):
        gen = WorkloadGenerator(
            WorkloadSpec(count=60, query_fraction=0.0, abort_rate=0.5),
            SITES,
            seed=8,
        )
        flagged = sum(s.will_abort for s in gen.generate())
        assert 10 < flagged < 50


class TestSkew:
    def test_skewed_workload_prefers_hot_keys(self):
        spec = WorkloadSpec(
            n_keys=10, count=200, query_fraction=0.0, skew=1.5
        )
        gen = WorkloadGenerator(spec, SITES, seed=9)
        counts = {}
        for sub in gen.generate():
            for op in sub.et.operations:
                counts[op.key] = counts.get(op.key, 0) + 1
        assert counts.get("x0", 0) > counts.get("x9", 0)
