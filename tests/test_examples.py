"""Smoke tests: every example script runs clean and self-asserts."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout  # every example reports what it did


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # deliverable (b): at least three
