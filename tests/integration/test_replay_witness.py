"""Replay witnesses: state-level serializability checks.

The conflict-graph 1SR test is necessary but abstract; these tests
assert the concrete consequence: replaying the update operations *in
the order one site logged them* against a fresh store reproduces the
exact converged state.  If any site's application pipeline dropped,
duplicated, or reordered an effect, the replay diverges.
"""

import pytest

from repro.core.operations import is_write
from repro.core.transactions import reset_tid_counter
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.network import UniformLatency
from repro.storage.kv import KeyValueStore
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _run(factory, style, seed=3):
    config = SystemConfig(
        n_sites=4,
        seed=seed,
        latency=UniformLatency(0.3, 3.0),
        loss_rate=0.05,
        retry_interval=2.5,
        initial=tuple(("k%d" % i, 1) for i in range(6)),
    )
    system = ReplicatedSystem(factory(), config)
    spec = WorkloadSpec(
        n_keys=6,
        count=120,
        query_fraction=0.3,
        style=style,
        mean_interarrival=0.6,
    )
    drive(system, WorkloadGenerator(spec, sorted(system.sites), 11).generate())
    system.run_to_quiescence()
    assert system.converged()
    return system


def _replay_site(system, site_name):
    """Apply the site's logged update ops, in log order, from scratch."""
    store = KeyValueStore(
        {key: value for key, value in system.config.initial}
    )
    history = system.sites[site_name].history
    for event in history:
        if is_write(event.op):
            store.apply(event.op, default=0)
    return store.as_dict()


@pytest.mark.parametrize("factory,style", [
    (OrderedUpdates, "mixed"),
    (lambda: OrderedUpdates(ordering="lamport"), "mixed"),
    (CommutativeOperations, "commutative"),
    (ReadIndependentUpdates, "blind"),
])
def test_every_site_log_replays_to_converged_state(factory, style):
    system = _run(factory, style)
    final = system.sites["site0"].values()
    for name in system.sites:
        replayed = _replay_site(system, name)
        assert replayed == final, (
            "site %s's log does not replay to the converged state" % name
        )


def test_replay_witness_detects_tampering():
    """Sanity: the witness actually discriminates — a corrupted log
    replays to a different state."""
    from repro.core.history import Event
    from repro.core.operations import IncrementOp

    system = _run(CommutativeOperations, "commutative")
    final = system.sites["site0"].values()
    # Inject a phantom operation into one site's log.
    system.sites["site1"].history.append(
        Event(99999, IncrementOp("k0", 1000), "site1", 0.0)
    )
    assert _replay_site(system, "site1") != final
