"""Soak tests: larger-scale runs with the full ESR audit.

These runs are an order of magnitude bigger than the other integration
tests (6 sites, several hundred ETs, skewed keys, loss) — large enough
to surface bookkeeping leaks, quiescence-detection races, and counter
drift that small runs mask.
"""

import pytest

from repro.core.transactions import reset_tid_counter
from repro.harness.audit import audit
from repro.metrics.collector import summarize
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.compe import CompensationBased
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.network import UniformLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


SOAK_CASES = [
    ("ordup", lambda: OrderedUpdates(), "mixed"),
    ("commu", lambda: CommutativeOperations(), "commutative"),
    ("ritu", lambda: ReadIndependentUpdates(), "blind"),
    ("compe", lambda: CompensationBased(decision_delay=3.0), "commutative"),
]


@pytest.mark.parametrize("name,factory,style", SOAK_CASES)
def test_soak_six_sites_six_hundred_ets(name, factory, style):
    config = SystemConfig(
        n_sites=6,
        seed=97,
        latency=UniformLatency(0.3, 2.5),
        loss_rate=0.03,
        retry_interval=3.0,
        initial=tuple(("k%d" % i, 10) for i in range(12)),
    )
    system = ReplicatedSystem(factory(), config)
    spec = WorkloadSpec(
        n_keys=12,
        count=600,
        query_fraction=0.4,
        style=style,
        epsilon=4,
        skew=0.8,
        mean_interarrival=0.4,
        abort_rate=0.1 if name == "compe" else 0.0,
    )
    drive(
        system,
        WorkloadGenerator(spec, sorted(system.sites), 41).generate(),
        compe_aborts=(name == "compe"),
    )
    quiescence = system.run_to_quiescence()
    report = audit(system)
    report.assert_ok()

    metrics = summarize(system.results, quiescence)
    assert metrics.total_ets == 600
    # Every query finished and respected its budget.
    assert report.queries_audited > 150
    assert metrics.within_bound_fraction == 1.0

    # Bookkeeping drains completely: no leaked in-flight state.
    runtime = system.method.runtime
    assert runtime.in_flight_updates() == 0
    assert runtime.tracker.active_update_count == 0
    assert runtime.tracker.active_query_count == 0


def test_soak_compe_log_gc_bounds_memory():
    """600 committed updates must not accumulate 600-record logs."""
    config = SystemConfig(
        n_sites=4,
        seed=53,
        latency=UniformLatency(0.3, 1.5),
        initial=tuple(("k%d" % i, 0) for i in range(6)),
    )
    system = ReplicatedSystem(CompensationBased(decision_delay=2.0), config)
    spec = WorkloadSpec(
        n_keys=6,
        count=600,
        query_fraction=0.0,
        style="commutative",
        mean_interarrival=0.5,
        abort_rate=0.05,
    )
    drive(
        system,
        WorkloadGenerator(spec, sorted(system.sites), 7).generate(),
        compe_aborts=True,
    )
    system.run_to_quiescence()
    assert system.converged()
    assert system.method.stats.log_records_reclaimed > 500
    for site in system.sites.values():
        # Only the undecided tail may remain; far below total history.
        assert len(site.oplog) < 60
