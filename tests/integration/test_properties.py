"""Property-based tests: ESR invariants over randomized scenarios.

Hypothesis drives the whole stack: random workload shapes, random
latency spreads, random loss rates, random method choices — every run
must converge, stay 1SR, and respect epsilon bounds.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.transactions import reset_tid_counter
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.compe import CompensationBased
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.network import UniformLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_METHOD_STRATEGY = st.sampled_from([
    ("ordup", lambda: OrderedUpdates(), "mixed"),
    ("commu", lambda: CommutativeOperations(), "commutative"),
    ("ritu", lambda: ReadIndependentUpdates(), "blind"),
    ("compe", lambda: CompensationBased(decision_delay=3.0), "commutative"),
])


def _run(method_factory, style, seed, wl_seed, n_sites, loss, epsilon, count):
    reset_tid_counter()
    config = SystemConfig(
        n_sites=n_sites,
        seed=seed,
        latency=UniformLatency(0.2, 2.5),
        loss_rate=loss,
        retry_interval=2.5,
        initial=tuple(("x%d" % i, 1) for i in range(5)),
    )
    system = ReplicatedSystem(method_factory(), config)
    spec = WorkloadSpec(
        n_keys=5,
        count=count,
        query_fraction=0.4,
        style=style,
        epsilon=epsilon,
        mean_interarrival=0.7,
        abort_rate=0.2 if isinstance(system.method, CompensationBased) else 0.0,
    )
    drive(
        system,
        WorkloadGenerator(spec, sorted(system.sites), wl_seed).generate(),
        compe_aborts=isinstance(system.method, CompensationBased),
    )
    system.run_to_quiescence()
    return system


class TestRandomizedInvariants:
    @_SETTINGS
    @given(
        method=_METHOD_STRATEGY,
        seed=st.integers(min_value=0, max_value=10_000),
        wl_seed=st.integers(min_value=0, max_value=10_000),
        n_sites=st.integers(min_value=2, max_value=5),
        loss=st.sampled_from([0.0, 0.05, 0.15]),
        epsilon=st.sampled_from([0, 1, 3, float("inf")]),
    )
    def test_always_converges_and_stays_bounded(
        self, method, seed, wl_seed, n_sites, loss, epsilon
    ):
        name, factory, style = method
        system = _run(
            factory, style, seed, wl_seed, n_sites, loss, epsilon, count=40
        )
        assert system.converged(), name
        assert system.is_one_copy_serializable(), name
        for result in system.results:
            if result.et.is_query:
                assert result.inconsistency <= epsilon, name
                assert result.inconsistency <= len(result.overlap), name


class TestCommutativeStateEquivalence:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        amounts=st.lists(
            st.integers(min_value=1, max_value=50), min_size=1, max_size=12
        ),
    )
    def test_final_counter_is_sum_of_increments(self, seed, amounts):
        """COMMU semantics: the replicated counter equals the serial sum
        regardless of delivery schedule."""
        from repro.core.operations import IncrementOp
        from repro.core.transactions import UpdateET

        reset_tid_counter()
        config = SystemConfig(
            n_sites=3,
            seed=seed,
            latency=UniformLatency(0.1, 5.0),
            loss_rate=0.1,
            retry_interval=2.0,
            initial=(("c", 0),),
        )
        system = ReplicatedSystem(CommutativeOperations(), config)
        for i, amount in enumerate(amounts):
            system.submit_at(
                float(i) * 0.2,
                UpdateET([IncrementOp("c", amount)]),
                "site%d" % (i % 3),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("c") == sum(amounts)


class TestRITULastWriterWins:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        values=st.lists(
            st.integers(min_value=0, max_value=999), min_size=1, max_size=10
        ),
    )
    def test_all_replicas_agree_on_one_winner(self, seed, values):
        from repro.core.operations import WriteOp
        from repro.core.transactions import UpdateET

        reset_tid_counter()
        config = SystemConfig(
            n_sites=3,
            seed=seed,
            latency=UniformLatency(0.1, 5.0),
            loss_rate=0.1,
            retry_interval=2.0,
            initial=(("k", -1),),
        )
        system = ReplicatedSystem(ReadIndependentUpdates(), config)
        for i, value in enumerate(values):
            system.submit_at(
                float(i) * 0.1,
                UpdateET([WriteOp("k", value)]),
                "site%d" % (i % 3),
            )
        system.run_to_quiescence()
        winners = {s.store.get("k") for s in system.sites.values()}
        assert len(winners) == 1
        assert winners.pop() in values
