"""Integration tests: the paper's ESR guarantees, end to end.

For every replica control method, on realistic workloads with network
hazards, we assert the four pillars of section 2:

1. **Convergence** — at quiescence all replicas hold identical values.
2. **1SR updates** — committed update ETs are one-copy serializable.
3. **Bounded error** — every query's inconsistency counter respects its
   epsilon spec.
4. **Overlap bound** — measured error never exceeds the query's overlap
   (the theorem of section 2.1).
"""

import pytest

from repro.core.serializability import query_overlaps
from repro.core.transactions import reset_tid_counter
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.compe import CompensationBased
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.failures import CrashEvent, FailureInjector, PartitionEvent
from repro.sim.network import UniformLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


METHODS = [
    ("ordup-central", lambda: OrderedUpdates(), "mixed"),
    ("ordup-lamport", lambda: OrderedUpdates(ordering="lamport"), "mixed"),
    ("commu", lambda: CommutativeOperations(), "commutative"),
    ("ritu-mv", lambda: ReadIndependentUpdates(), "blind"),
    (
        "ritu-ow",
        lambda: ReadIndependentUpdates(versioning="overwrite"),
        "blind",
    ),
    ("compe", lambda: CompensationBased(decision_delay=4.0), "commutative"),
    (
        "compe-ordered",
        lambda: CompensationBased(decision_delay=4.0, ordered=True),
        "mixed",
    ),
]


def _run(factory, style, seed, epsilon=3, failures=None, count=80):
    config = SystemConfig(
        n_sites=4,
        seed=seed,
        latency=UniformLatency(0.3, 3.0),
        loss_rate=0.05,
        retry_interval=3.0,
        initial=tuple(("x%d" % i, 1) for i in range(6)),
    )
    system = ReplicatedSystem(factory(), config)
    if failures:
        failures(system)
    spec = WorkloadSpec(
        n_keys=6,
        count=count,
        query_fraction=0.4,
        style=style,
        epsilon=epsilon,
        mean_interarrival=0.8,
        abort_rate=0.15 if isinstance(system.method, CompensationBased) else 0.0,
    )
    generator = WorkloadGenerator(spec, sorted(system.sites), seed * 13 + 1)
    drive(
        system,
        generator.generate(),
        compe_aborts=isinstance(system.method, CompensationBased),
    )
    system.run_to_quiescence()
    return system


@pytest.mark.parametrize("name,factory,style", METHODS)
class TestCleanNetwork:
    def test_convergence(self, name, factory, style):
        system = _run(factory, style, seed=1)
        assert system.converged(), "replicas diverged under %s" % name

    def test_one_copy_serializability(self, name, factory, style):
        system = _run(factory, style, seed=2)
        assert system.is_one_copy_serializable()

    def test_epsilon_bound_respected(self, name, factory, style):
        system = _run(factory, style, seed=3, epsilon=2)
        for result in system.results:
            if result.et.is_query:
                assert result.inconsistency <= 2, (
                    "query %s exceeded epsilon under %s"
                    % (result.et.tid, name)
                )

    def test_error_bounded_by_overlap(self, name, factory, style):
        """Section 2.1: 'The overlap is an upper bound of error.'

        The bound is checked against the online overlap tracker, which
        implements the paper's definition over full ET lifetimes
        (submission to full propagation — and, for COMPE, to the global
        decision).  The post-hoc log analysis in ``query_overlaps``
        necessarily underestimates lifetimes (it only sees logged
        events), so it is used as a reporting aid, not as this bound.
        """
        system = _run(factory, style, seed=4)
        for result in system.results:
            if not result.et.is_query:
                continue
            bound = len(result.overlap)
            assert result.inconsistency <= bound, (
                "error %d > overlap %d for query %s under %s"
                % (result.inconsistency, bound, result.et.tid, name)
            )


@pytest.mark.parametrize("name,factory,style", METHODS)
class TestUnderFailures:
    def _failures(self, system):
        injector = FailureInjector(
            system.sim,
            system.network,
            system.sites,
            on_heal=system.kick_queues,
        )
        injector.schedule_partition(
            PartitionEvent(
                (("site0", "site1"), ("site2", "site3")),
                at=10.0,
                duration=25.0,
            )
        )
        injector.schedule_crash(CrashEvent("site3", at=45.0, duration=10.0))

    def test_convergence_despite_partition_and_crash(
        self, name, factory, style
    ):
        system = _run(factory, style, seed=5, failures=self._failures)
        assert system.converged(), "%s diverged under failures" % name

    def test_one_copy_sr_despite_failures(self, name, factory, style):
        system = _run(factory, style, seed=6, failures=self._failures)
        assert system.is_one_copy_serializable()


class TestStrictLimitRecoversSR:
    """Section 2.2: 'In the limit, users see strict 1-copy
    serializability' — epsilon 0 queries import nothing."""

    @pytest.mark.parametrize("name,factory,style", METHODS)
    def test_epsilon_zero_queries_have_zero_error(
        self, name, factory, style
    ):
        system = _run(factory, style, seed=7, epsilon=0, count=60)
        queries = [r for r in system.results if r.et.is_query]
        assert queries
        assert all(r.inconsistency == 0 for r in queries)
