"""Failure-storm property tests: random crash/partition schedules.

Every method must deliver the full ESR audit (convergence, 1SR,
epsilon bounds, overlap bounds) under randomized combinations of
crashes, partitions, message loss, and workload shapes.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.transactions import reset_tid_counter
from repro.harness.audit import audit
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.compe import CompensationBased
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.failures import CrashEvent, FailureInjector, PartitionEvent
from repro.sim.network import UniformLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive

_SETTINGS = settings(max_examples=10, deadline=None,
                     suppress_health_check=[HealthCheck.data_too_large])

_METHODS = st.sampled_from([
    ("ordup", lambda: OrderedUpdates(), "mixed"),
    ("commu", lambda: CommutativeOperations(), "commutative"),
    ("ritu", lambda: ReadIndependentUpdates(), "blind"),
    ("compe", lambda: CompensationBased(decision_delay=3.0), "commutative"),
])

_CRASHES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # site index
        st.floats(min_value=1.0, max_value=40.0),  # at
        st.floats(min_value=1.0, max_value=15.0),  # duration
    ),
    max_size=3,
)

_PARTITIONS = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=40.0),  # at
        st.floats(min_value=2.0, max_value=20.0),  # duration
        st.integers(min_value=1, max_value=3),  # split point
    ),
    max_size=2,
)


class TestFailureStorms:
    @_SETTINGS
    @given(
        method=_METHODS,
        crashes=_CRASHES,
        partitions=_PARTITIONS,
        seed=st.integers(min_value=0, max_value=5_000),
        loss=st.sampled_from([0.0, 0.1]),
    )
    def test_full_audit_survives_any_storm(
        self, method, crashes, partitions, seed, loss
    ):
        name, factory, style = method
        reset_tid_counter()
        config = SystemConfig(
            n_sites=4,
            seed=seed,
            latency=UniformLatency(0.3, 2.0),
            loss_rate=loss,
            retry_interval=2.5,
            initial=tuple(("x%d" % i, 1) for i in range(4)),
        )
        system = ReplicatedSystem(factory(), config)
        names = sorted(system.sites)

        injector = FailureInjector(
            system.sim, system.network, system.sites,
            on_heal=system.kick_queues,
        )
        # Keep failure windows disjoint-ish and bounded so quiescence
        # is reachable; overlapping windows are fine, the point is
        # that every failure eventually heals.
        for site_idx, at, duration in crashes:
            injector.schedule_crash(
                CrashEvent(names[site_idx], at, duration)
            )
        for at, duration, split in partitions:
            injector.schedule_partition(
                PartitionEvent(
                    (tuple(names[:split]), tuple(names[split:])),
                    at,
                    duration,
                )
            )

        spec = WorkloadSpec(
            n_keys=4,
            count=40,
            query_fraction=0.35,
            style=style,
            epsilon=3,
            mean_interarrival=0.8,
            abort_rate=0.15 if name == "compe" else 0.0,
        )
        drive(
            system,
            WorkloadGenerator(spec, names, seed * 3 + 1).generate(),
            compe_aborts=(name == "compe"),
        )
        system.run_to_quiescence(max_time=100_000.0)

        report = audit(system)
        # Crashed-site queries may abort; that is allowed.  Everything
        # that committed must satisfy the full ESR contract.
        report.assert_ok()
