"""Targeted robustness scenarios beyond the randomized storms.

Each test pins one specific, interesting failure interaction the
randomized tests might only rarely hit.
"""

import pytest

from repro.core.operations import IncrementOp, ReadOp, WriteOp
from repro.core.transactions import (
    EpsilonSpec,
    ETStatus,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.coherency import QuorumConsensus
from repro.replica.commu import CommutativeOperations
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import ReadIndependentUpdates
from repro.sim.failures import CrashEvent, FailureInjector, PartitionEvent
from repro.sim.network import ConstantLatency, UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _injector(system):
    return FailureInjector(
        system.sim, system.network, system.sites,
        on_heal=system.kick_queues,
    )


class TestOrderServerCrash:
    """ORDUP's central order server lives at site0: crashing it stalls
    *ordering* (new updates cannot get sequence numbers) but already
    ordered updates keep propagating."""

    def test_ordering_resumes_after_server_recovery(self):
        system = ReplicatedSystem(
            OrderedUpdates(),
            SystemConfig(
                n_sites=3,
                seed=5,
                latency=ConstantLatency(1.0),
                retry_interval=2.0,
                initial=(("x", 0),),
            ),
        )
        _injector(system).schedule_crash(
            CrashEvent("site0", at=1.0, duration=10.0)
        )
        # Submitted while the server is down, from a remote site.
        system.submit_at(3.0, UpdateET([IncrementOp("x", 5)]), "site1")
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site2"].store.get("x") == 5
        update = system.results[0]
        # The commit had to wait out the server's downtime.
        assert update.finish_time > 10.0

    def test_lamport_ordering_survives_any_single_crash(self):
        """Decentralized ordering has no single point of ordering."""
        system = ReplicatedSystem(
            OrderedUpdates(ordering="lamport"),
            SystemConfig(
                n_sites=3,
                seed=5,
                latency=ConstantLatency(1.0),
                retry_interval=2.0,
                initial=(("x", 0),),
            ),
        )
        _injector(system).schedule_crash(
            CrashEvent("site0", at=1.0, duration=15.0)
        )
        system.submit_at(3.0, UpdateET([IncrementOp("x", 5)]), "site1")
        # Lamport mode commits immediately (local stamp).
        system.run(until=4.0)
        assert len(system.results) == 1
        assert system.results[0].latency == 0.0
        system.run_to_quiescence()
        assert system.converged()


class TestOriginCrashAfterCommit:
    """Forward methods: once committed (MSets durably queued), an
    origin crash must not lose the update — stable queues resume."""

    @pytest.mark.parametrize("factory,op", [
        (CommutativeOperations, IncrementOp("x", 5)),
        (ReadIndependentUpdates, WriteOp("x", 5)),
    ])
    def test_update_survives_origin_crash(self, factory, op):
        system = ReplicatedSystem(
            factory(),
            SystemConfig(
                n_sites=3,
                seed=7,
                latency=ConstantLatency(4.0),
                retry_interval=2.0,
                initial=(("x", 0),),
            ),
        )
        system.submit(UpdateET([op]), "site0")
        # Crash the origin before its MSets could possibly arrive.
        _injector(system).schedule_crash(
            CrashEvent("site0", at=0.5, duration=20.0)
        )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site2"].store.get("x") == 5


class TestQuorumMinorityCrash:
    def test_writes_proceed_with_minority_down(self):
        system = ReplicatedSystem(
            QuorumConsensus(),
            SystemConfig(
                n_sites=5,
                seed=9,
                latency=ConstantLatency(1.0),
                retry_interval=2.0,
                initial=(("x", 0),),
            ),
        )
        # Two of five replicas crash for a long stretch.
        injector = _injector(system)
        injector.schedule_crash(CrashEvent("site3", at=0.0, duration=50.0))
        injector.schedule_crash(CrashEvent("site4", at=0.0, duration=50.0))
        system.submit_at(1.0, UpdateET([WriteOp("x", 9)]), "site0")
        system.run(until=20.0)
        # Write quorum (3 of 5) is intact: the update commits while the
        # minority is still down.
        assert len(system.results) == 1
        assert system.results[0].status == ETStatus.COMMITTED
        assert system.results[0].finish_time < 20.0
        system.run_to_quiescence()
        assert system.converged()


class TestQueryDuringCrash:
    def test_query_at_crashing_site_aborts(self):
        system = ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(
                n_sites=2,
                seed=11,
                latency=ConstantLatency(1.0),
                initial=(("x", 0), ("y", 0)),
            ),
        )
        # A 3-read query (1.5 time units) at a site that dies mid-way.
        system.submit(
            QueryET(
                [ReadOp("x"), ReadOp("y"), ReadOp("x")],
                EpsilonSpec(import_limit=5),
            ),
            "site1",
        )
        _injector(system).schedule_crash(
            CrashEvent("site1", at=0.7, duration=5.0)
        )
        system.run_to_quiescence()
        query = system.results[0]
        assert query.status == ETStatus.ABORTED

    def test_system_healthy_after_aborted_query(self):
        system = ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(
                n_sites=2,
                seed=11,
                latency=ConstantLatency(1.0),
                initial=(("x", 0),),
            ),
        )
        system.submit(
            QueryET([ReadOp("x"), ReadOp("x")]), "site1"
        )
        _injector(system).schedule_crash(
            CrashEvent("site1", at=0.3, duration=2.0)
        )
        system.submit_at(5.0, UpdateET([IncrementOp("x", 4)]), "site0")
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site1"].store.get("x") == 4


class TestBackToBackPartitions:
    def test_two_partitions_with_different_cuts(self):
        system = ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(
                n_sites=4,
                seed=13,
                latency=UniformLatency(0.5, 1.5),
                retry_interval=2.0,
                initial=(("x", 0),),
            ),
        )
        injector = _injector(system)
        injector.schedule_partition(
            PartitionEvent(
                (("site0", "site1"), ("site2", "site3")), 2.0, 8.0
            )
        )
        injector.schedule_partition(
            PartitionEvent(
                (("site0", "site2"), ("site1", "site3")), 15.0, 8.0
            )
        )
        for i in range(12):
            system.submit_at(
                1.0 + i * 2.0,
                UpdateET([IncrementOp("x", 1)]),
                "site%d" % (i % 4),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("x") == 12
