"""Tests for the blocking client facade."""

import pytest

from repro import (
    Client,
    CommutativeOperations,
    EpsilonSpec,
    ETFailed,
    IncrementOp,
    ReplicatedSystem,
    SystemConfig,
    UniformLatency,
)
from repro.core.operations import DecrementOp
from repro.core.transactions import reset_tid_counter
from repro.replica.ritu import ReadIndependentUpdates


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(method=None, **cfg):
    defaults = dict(
        n_sites=3, seed=3, latency=UniformLatency(0.5, 2.0),
        initial=(("x", 0), ("y", 0)),
    )
    defaults.update(cfg)
    return ReplicatedSystem(
        method or CommutativeOperations(), SystemConfig(**defaults)
    )


class TestBasics:
    def test_unknown_site_rejected(self):
        with pytest.raises(KeyError):
            Client(_system(), "nowhere")

    def test_increment_then_read(self):
        system = _system()
        client = Client(system, "site0")
        client.increment("x", 5)
        client.settle()
        assert client.read("x") == 5

    def test_decrement_and_multi_op_update(self):
        system = _system()
        client = Client(system, "site0")
        client.update([IncrementOp("x", 10), DecrementOp("y", 3)])
        client.settle()
        assert client.read("x") == 10
        assert client.read("y") == -3

    def test_write_with_ritu(self):
        system = _system(method=ReadIndependentUpdates())
        client = Client(system, "site1")
        client.write("x", "hello")
        client.settle()
        assert client.read("x") == "hello"

    def test_append(self):
        system = _system()
        client = Client(system, "site0")
        client.append("log", "a")
        client.append("log", "b")
        client.settle()
        assert client.read("log") == ("a", "b")

    def test_read_many_is_one_et(self):
        system = _system()
        client = Client(system, "site0")
        client.increment("x", 1)
        client.settle()
        values = client.read_many(["x", "y"])
        assert values == {"x": 1, "y": 0}


class TestEpsilonErgonomics:
    def test_strict_read_is_serializable_not_necessarily_fresh(self):
        system = _system(latency=UniformLatency(3.0, 5.0))
        writer = Client(system, "site0")
        reader = Client(system, "site1")
        writer.increment("x", 7)
        # A strict single-key read may legally serialize *before* the
        # in-flight update (stale is consistent); it must be one of
        # the two serializable values, never a torn intermediate.
        assert reader.read("x", epsilon=0) in (0, 7)

    def test_strict_multikey_read_never_torn(self):
        """Strictness bites on multi-key queries: an update writing x
        and y together must be seen all-or-nothing by an eps=0 query."""
        system = _system(latency=UniformLatency(3.0, 5.0))
        writer = Client(system, "site0")
        reader = Client(system, "site1")
        writer.update([IncrementOp("x", 7), IncrementOp("y", 7)])
        values = reader.read_many(["x", "y"], epsilon=0)
        assert values in (
            {"x": 0, "y": 0},
            {"x": 7, "y": 7},
        )

    def test_relaxed_read_returns_quickly(self):
        system = _system(latency=UniformLatency(3.0, 5.0))
        writer = Client(system, "site0")
        reader = Client(system, "site1")
        writer.increment("x", 7)
        value = reader.read("x")  # unlimited budget: takes what's there
        assert value in (0, 7)

    def test_query_exposes_accounting(self):
        system = _system(latency=UniformLatency(3.0, 5.0))
        writer = Client(system, "site0")
        reader = Client(system, "site0")
        writer.increment("x", 7)
        result = reader.query(["x"], EpsilonSpec(import_limit=5))
        assert result.inconsistency <= 5
        assert result.et.is_query

    def test_value_epsilon_passthrough(self):
        system = _system()
        client = Client(system, "site0")
        client.increment("x", 100)
        client.settle()
        # Settled system: even a zero drift budget reads cleanly.
        assert client.read("x", value_epsilon=0) == 100


class TestFailureSurface:
    def test_failed_et_raises(self):
        from repro.replica.commu import NonCommutativeError
        from repro.core.operations import MultiplyOp

        system = _system()
        client = Client(system, "site0")
        with pytest.raises(NonCommutativeError):
            client.update([IncrementOp("x", 1), MultiplyOp("x", 2)])

    def test_unknown_site_names_the_site(self):
        with pytest.raises(KeyError, match="nowhere"):
            Client(_system(), "nowhere")

    def test_empty_update_batch_rejected(self):
        client = Client(_system(), "site0")
        with pytest.raises(ValueError):
            client.update([])

    def test_mixed_read_write_batch_rejected_by_commu(self):
        """COMMU applies updates at every replica independently, so an
        update ET may not embed reads; the error says to use ORDUP."""
        from repro.core.operations import ReadOp
        from repro.replica.commu import NonCommutativeError

        client = Client(_system(), "site0")
        with pytest.raises(NonCommutativeError, match="ORDUP"):
            client.update([ReadOp("x"), IncrementOp("x", 1)])
        # The rejected ET left no partial effects behind.
        assert client.read("x") == 0

    def test_mixed_read_write_batch_allowed_by_ordup(self):
        from repro.core.operations import ReadOp
        from repro.replica.ordup import OrderedUpdates

        system = _system(method=OrderedUpdates())
        client = Client(system, "site0")
        client.increment("x", 10)
        client.settle()
        result = client.update([ReadOp("x"), IncrementOp("x", 5)])
        assert result.values["x"] == 10  # read at the ET's serial position
        client.settle()
        assert client.read("x", epsilon=0) == 15

    def test_strict_read_on_unknown_key_is_default(self):
        client = Client(_system(), "site0")
        assert client.read("never-written", epsilon=0) == 0

    def test_etfailed_carries_the_result(self):
        from repro.core.transactions import ETResult, ETStatus, make_et

        result = ETResult(
            et=make_et([IncrementOp("x", 1)]), status=ETStatus.ABORTED
        )
        err = ETFailed(result)
        assert err.result is result
        assert "ABORTED" in str(err) or "aborted" in str(err)
