"""One client contract, two backends.

The simulator's :class:`repro.client.Client` and the live runtime's
:class:`repro.live.client.LiveClient` expose the same verb surface
(``write`` / ``increment`` / ``decrement`` / ``append`` / ``update`` /
``read`` / ``read_many`` / ``query`` / ``settle``), their query results
expose the same error-accounting attributes, and their failures share
:class:`repro.errors.ETError`.  The same program, run against either
backend, must produce the same answers — that is what makes application
code portable between "validate on the simulator" and "run live".
"""

import asyncio
import inspect
import warnings

import pytest

from repro import (
    Client,
    CommutativeOperations,
    Consistency,
    ETError,
    ETFailed,
    IncrementOp,
    ReadOptions,
    ReplicatedSystem,
    SystemConfig,
    WriteOp,
)
from repro.core.transactions import EpsilonSpec
from repro.live import LiveCluster, LiveETFailed, ShardedCluster
from repro.live.client import LiveClient
from repro.live.router import ShardRouter

SHARED_VERBS = (
    "write",
    "increment",
    "decrement",
    "append",
    "update",
    "read",
    "read_many",
    "query",
    "settle",
)


class SimBackend:
    """Adapts the synchronous sim client to the async driver."""

    async def start(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=3, seed=11)
        )
        self.client = Client(system, "site0")

    async def call(self, verb, *args, **kwargs):
        return getattr(self.client, verb)(*args, **kwargs)

    async def session_call(self, fn):
        """Run ``fn(session_call)`` inside one client session."""
        with self.client.session() as session:
            async def call(verb, *args, **kwargs):
                return getattr(session, verb)(*args, **kwargs)

            return await fn(call)

    async def close(self):
        pass


class LiveBackend:
    async def start(self):
        self.cluster = LiveCluster(n_sites=3, method="commu")
        await self.cluster.start()
        self.client = await self.cluster.client("site0")

    async def call(self, verb, *args, **kwargs):
        return await getattr(self.client, verb)(*args, **kwargs)

    async def session_call(self, fn):
        async with self.client.session() as session:
            async def call(verb, *args, **kwargs):
                return await getattr(session, verb)(*args, **kwargs)

            return await fn(call)

    async def close(self):
        await self.cluster.stop()


class ShardedBackend:
    """The same program again, with the keyspace split across two
    replica groups behind the client-side shard router."""

    async def start(self):
        self.cluster = ShardedCluster(n_shards=2, replicas=2)
        await self.cluster.start()
        self.client = self.cluster.router()

    async def call(self, verb, *args, **kwargs):
        return await getattr(self.client, verb)(*args, **kwargs)

    async def session_call(self, fn):
        async with self.client.session() as session:
            async def call(verb, *args, **kwargs):
                return await getattr(session, verb)(*args, **kwargs)

            return await fn(call)

    async def close(self):
        await self.cluster.stop()


BACKENDS = {"sim": SimBackend, "live": LiveBackend, "sharded": ShardedBackend}


async def _shared_program(backend):
    """The portable application: same calls, collected observations."""
    out = {}
    await backend.call("increment", "acct", 100)
    await backend.call("decrement", "acct", 30)
    await backend.call("write", "note", "hello")
    await backend.call("append", "log", "a")
    await backend.call("append", "log", "b")
    await backend.call(
        "update", [IncrementOp("acct", 5), WriteOp("flag", True)]
    )
    await backend.call("settle")
    out["acct"] = await backend.call("read", "acct")
    out["strict_acct"] = await backend.call("read", "acct", epsilon=0)
    out["many"] = await backend.call("read_many", ["acct", "note", "flag"])
    result = await backend.call(
        "query", ["acct", "log"], EpsilonSpec(import_limit=5)
    )
    out["query_values"] = dict(result.values)
    out["inconsistency"] = result.inconsistency
    out["overlap"] = tuple(result.overlap)
    out["waits"] = result.waits
    return out


async def _typed_program(backend):
    """The same portability contract over the Consistency-typed read
    surface: every backend accepts ``ReadOptions`` / ``Consistency``
    uniformly, keeps the legacy epsilon keywords working (with a
    deprecation warning), and offers session guarantees."""
    out = {}
    await backend.call("increment", "acct", 40)
    await backend.call("increment", "acct", 2)
    await backend.call("write", "note", "typed")
    await backend.call("settle")
    out["strict"] = await backend.call(
        "read", "acct", Consistency.STRICT
    )
    out["bounded"] = await backend.call(
        "read", "acct", ReadOptions(consistency=Consistency.BOUNDED(5))
    )
    out["many"] = await backend.call(
        "read_many", ["acct", "note"], Consistency.BOUNDED(3)
    )
    result = await backend.call(
        "query", ["acct"], ReadOptions(consistency=Consistency.BOUNDED(4))
    )
    out["query_acct"] = result.values["acct"]
    out["query_inconsistency"] = result.inconsistency
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out["legacy"] = await backend.call("read", "acct", epsilon=0)
    out["legacy_warns"] = any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )

    async def in_session(call):
        await call("increment", "acct", 8)
        return await call("read", "acct", Consistency.SESSION)

    out["session"] = await backend.session_call(in_session)
    return out


def _run(backend_name, program=_shared_program):
    async def scenario():
        backend = BACKENDS[backend_name]()
        await backend.start()
        try:
            return await program(backend)
        finally:
            await backend.close()

    return asyncio.run(scenario())


class TestSharedSurface:
    @pytest.mark.parametrize("verb", SHARED_VERBS)
    def test_both_clients_expose_verb(self, verb):
        assert callable(getattr(Client, verb))
        assert callable(getattr(LiveClient, verb))
        assert callable(getattr(ShardRouter, verb))

    @pytest.mark.parametrize("verb", ("read", "read_many"))
    def test_budget_parameters_match(self, verb):
        """The inconsistency-budget keywords are spelled identically."""
        sim_params = set(
            inspect.signature(getattr(Client, verb)).parameters
        )
        live_params = set(
            inspect.signature(getattr(LiveClient, verb)).parameters
        )
        assert {"epsilon", "value_epsilon"} <= sim_params
        assert {"epsilon", "value_epsilon"} <= live_params

    @pytest.mark.parametrize("verb", ("read", "read_many"))
    @pytest.mark.parametrize("cls", (Client, LiveClient, ShardRouter))
    def test_typed_options_parameter_everywhere(self, verb, cls):
        """Every backend's reads take the same typed ``options``."""
        assert "options" in inspect.signature(getattr(cls, verb)).parameters

    @pytest.mark.parametrize("cls", (Client, LiveClient, ShardRouter))
    def test_session_verb_everywhere(self, cls):
        assert callable(getattr(cls, "session"))


class TestSameProgramSameAnswers:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_program_outcome(self, backend):
        out = _run(backend)
        assert out["acct"] == 75
        assert out["strict_acct"] == 75
        assert out["many"] == {"acct": 75, "note": "hello", "flag": True}
        assert out["query_values"]["acct"] == 75
        assert sorted(out["query_values"]["log"]) == ["a", "b"]
        # Settled system: a bounded query observes zero inconsistency.
        assert out["inconsistency"] == 0
        assert out["waits"] == 0

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_typed_program_outcome(self, backend):
        out = _run(backend, _typed_program)
        assert out["strict"] == 42
        assert out["bounded"] == 42
        assert out["many"] == {"acct": 42, "note": "typed"}
        assert out["query_acct"] == 42
        assert out["query_inconsistency"] == 0
        assert out["legacy"] == 42
        assert out["legacy_warns"], "legacy epsilon kwarg must deprecate"
        # Read-your-writes inside the session, on every backend.
        assert out["session"] == 50

    def test_typed_backends_agree_exactly(self):
        reference = _run("sim", _typed_program)
        assert reference == _run("live", _typed_program)
        assert reference == _run("sharded", _typed_program)

    def test_backends_agree_exactly(self):
        def canonical(out):
            # JSON transport renders sequence values as lists; the sim
            # hands back tuples.  Same contents, same answer.
            out = dict(out)
            out["query_values"] = {
                key: list(value)
                if isinstance(value, (list, tuple))
                else value
                for key, value in out["query_values"].items()
            }
            return out

        reference = canonical(_run("sim"))
        assert reference == canonical(_run("live"))
        # Splitting the keyspace across groups must not change any
        # answer the program can observe.
        assert reference == canonical(_run("sharded"))


class TestSharedFailureTaxonomy:
    def test_both_failures_are_et_errors(self):
        assert issubclass(ETFailed, ETError)
        assert issubclass(LiveETFailed, ETError)

    def test_codes_are_stable_strings(self):
        from repro import ABORTED, EPSILON_EXCEEDED, UNAVAILABLE

        assert UNAVAILABLE == "UNAVAILABLE"
        assert EPSILON_EXCEEDED == "EPSILON_EXCEEDED"
        assert ABORTED == "ABORTED"

    def test_one_except_clause_catches_either(self):
        for exc in (
            LiveETFailed("refused", "UNAVAILABLE"),
            ETError("generic", "ABORTED"),
        ):
            try:
                raise exc
            except ETError as caught:
                assert caught.code in ("UNAVAILABLE", "ABORTED")
            else:  # pragma: no cover
                pytest.fail("ETError clause did not catch %r" % exc)

    def test_unavailable_predicate(self):
        assert LiveETFailed("refused", "UNAVAILABLE").unavailable
        assert not LiveETFailed("other", "ABORTED").unavailable
        assert ETError("x", "ABORTED").aborted
