"""One client contract, two backends.

The simulator's :class:`repro.client.Client` and the live runtime's
:class:`repro.live.client.LiveClient` expose the same verb surface
(``write`` / ``increment`` / ``decrement`` / ``append`` / ``update`` /
``read`` / ``read_many`` / ``query`` / ``settle``), their query results
expose the same error-accounting attributes, and their failures share
:class:`repro.errors.ETError`.  The same program, run against either
backend, must produce the same answers — that is what makes application
code portable between "validate on the simulator" and "run live".
"""

import asyncio
import inspect
import warnings

import pytest

from repro import (
    Client,
    CommutativeOperations,
    CompensationBased,
    Consistency,
    DecrementOp,
    ETError,
    ETFailed,
    IncrementOp,
    ReadIndependentUpdates,
    ReadOptions,
    ReplicatedSystem,
    SystemConfig,
    WriteOp,
)
from repro.core.transactions import EpsilonSpec
from repro.live import LiveCluster, LiveETFailed, ShardedCluster
from repro.live.client import LiveClient
from repro.live.router import ShardRouter

SHARED_VERBS = (
    "write",
    "increment",
    "decrement",
    "append",
    "update",
    "read",
    "read_many",
    "query",
    "settle",
)


SIM_METHODS = {
    "commu": CommutativeOperations,
    "ritu": ReadIndependentUpdates,
    # Short decision delay so run_to_quiescence covers the commit.
    "compe": lambda: CompensationBased(decision_delay=1.0),
}


class SimBackend:
    """Adapts the synchronous sim client to the async driver."""

    def __init__(self, method="commu"):
        self.method = method

    async def start(self):
        system = ReplicatedSystem(
            SIM_METHODS[self.method](), SystemConfig(n_sites=3, seed=11)
        )
        self.client = Client(system, "site0")

    async def call(self, verb, *args, **kwargs):
        return getattr(self.client, verb)(*args, **kwargs)

    async def session_call(self, fn):
        """Run ``fn(session_call)`` inside one client session."""
        with self.client.session() as session:
            async def call(verb, *args, **kwargs):
                return getattr(session, verb)(*args, **kwargs)

            return await fn(call)

    async def close(self):
        pass


class LiveBackend:
    def __init__(self, method="commu"):
        self.method = method

    async def start(self):
        self.cluster = LiveCluster(n_sites=3, method=self.method)
        await self.cluster.start()
        self.client = await self.cluster.client("site0")

    async def call(self, verb, *args, **kwargs):
        return await getattr(self.client, verb)(*args, **kwargs)

    async def session_call(self, fn):
        async with self.client.session() as session:
            async def call(verb, *args, **kwargs):
                return await getattr(session, verb)(*args, **kwargs)

            return await fn(call)

    async def close(self):
        await self.cluster.stop()


class ShardedBackend:
    """The same program again, with the keyspace split across two
    replica groups behind the client-side shard router."""

    def __init__(self, method="commu"):
        self.method = method

    async def start(self):
        self.cluster = ShardedCluster(
            n_shards=2, replicas=2, method=self.method
        )
        await self.cluster.start()
        self.client = self.cluster.router()

    async def call(self, verb, *args, **kwargs):
        return await getattr(self.client, verb)(*args, **kwargs)

    async def session_call(self, fn):
        async with self.client.session() as session:
            async def call(verb, *args, **kwargs):
                return await getattr(session, verb)(*args, **kwargs)

            return await fn(call)

    async def close(self):
        await self.cluster.stop()


BACKENDS = {"sim": SimBackend, "live": LiveBackend, "sharded": ShardedBackend}


async def _shared_program(backend):
    """The portable application: same calls, collected observations."""
    out = {}
    await backend.call("increment", "acct", 100)
    await backend.call("decrement", "acct", 30)
    await backend.call("write", "note", "hello")
    await backend.call("append", "log", "a")
    await backend.call("append", "log", "b")
    await backend.call(
        "update", [IncrementOp("acct", 5), WriteOp("flag", True)]
    )
    await backend.call("settle")
    out["acct"] = await backend.call("read", "acct")
    out["strict_acct"] = await backend.call("read", "acct", epsilon=0)
    out["many"] = await backend.call("read_many", ["acct", "note", "flag"])
    result = await backend.call(
        "query", ["acct", "log"], EpsilonSpec(import_limit=5)
    )
    out["query_values"] = dict(result.values)
    out["inconsistency"] = result.inconsistency
    out["overlap"] = tuple(result.overlap)
    out["waits"] = result.waits
    return out


async def _typed_program(backend):
    """The same portability contract over the Consistency-typed read
    surface: every backend accepts ``ReadOptions`` / ``Consistency``
    uniformly, keeps the legacy epsilon keywords working (with a
    deprecation warning), and offers session guarantees."""
    out = {}
    await backend.call("increment", "acct", 40)
    await backend.call("increment", "acct", 2)
    await backend.call("write", "note", "typed")
    await backend.call("settle")
    out["strict"] = await backend.call(
        "read", "acct", Consistency.STRICT
    )
    out["bounded"] = await backend.call(
        "read", "acct", ReadOptions(consistency=Consistency.BOUNDED(5))
    )
    out["many"] = await backend.call(
        "read_many", ["acct", "note"], Consistency.BOUNDED(3)
    )
    result = await backend.call(
        "query", ["acct"], ReadOptions(consistency=Consistency.BOUNDED(4))
    )
    out["query_acct"] = result.values["acct"]
    out["query_inconsistency"] = result.inconsistency
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out["legacy"] = await backend.call("read", "acct", epsilon=0)
    out["legacy_warns"] = any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )

    async def in_session(call):
        await call("increment", "acct", 8)
        return await call("read", "acct", Consistency.SESSION)

    out["session"] = await backend.session_call(in_session)
    return out


async def _ritu_program(backend):
    """Blind timestamped writes: RITU's whole verb surface is the
    portable one — last writer wins, reads sort at query time."""
    out = {}
    await backend.call("write", "city", "akron")
    await backend.call("write", "city", "boston")
    await backend.call("write", "temp", 21)
    await backend.call("settle")
    out["city"] = await backend.call("read", "city")
    out["strict_city"] = await backend.call("read", "city", epsilon=0)
    out["many"] = await backend.call("read_many", ["city", "temp"])
    result = await backend.call(
        "query", ["city", "temp"], EpsilonSpec(import_limit=4)
    )
    out["query_values"] = dict(result.values)
    out["inconsistency"] = result.inconsistency
    return out


async def _compe_program(backend):
    """Commutative, invertible updates under compensation-based
    control: plain updates auto-commit, reads settle to the same
    answers on every backend."""
    out = {}
    await backend.call("increment", "bal", 100)
    await backend.call("decrement", "bal", 30)
    await backend.call("update", [IncrementOp("bal", 5)])
    await backend.call("increment", "pts", 7)
    await backend.call("settle")
    out["bal"] = await backend.call("read", "bal")
    out["many"] = await backend.call("read_many", ["bal", "pts"])
    result = await backend.call(
        "query", ["bal"], EpsilonSpec(import_limit=5)
    )
    out["query_bal"] = result.values["bal"]
    out["inconsistency"] = result.inconsistency
    return out


def _run(backend_name, program=_shared_program, method=None):
    async def scenario():
        cls = BACKENDS[backend_name]
        backend = cls() if method is None else cls(method)
        await backend.start()
        try:
            return await program(backend)
        finally:
            await backend.close()

    return asyncio.run(scenario())


class TestSharedSurface:
    @pytest.mark.parametrize("verb", SHARED_VERBS)
    def test_both_clients_expose_verb(self, verb):
        assert callable(getattr(Client, verb))
        assert callable(getattr(LiveClient, verb))
        assert callable(getattr(ShardRouter, verb))

    @pytest.mark.parametrize("verb", ("read", "read_many"))
    def test_budget_parameters_match(self, verb):
        """The inconsistency-budget keywords are spelled identically."""
        sim_params = set(
            inspect.signature(getattr(Client, verb)).parameters
        )
        live_params = set(
            inspect.signature(getattr(LiveClient, verb)).parameters
        )
        assert {"epsilon", "value_epsilon"} <= sim_params
        assert {"epsilon", "value_epsilon"} <= live_params

    @pytest.mark.parametrize("verb", ("read", "read_many"))
    @pytest.mark.parametrize("cls", (Client, LiveClient, ShardRouter))
    def test_typed_options_parameter_everywhere(self, verb, cls):
        """Every backend's reads take the same typed ``options``."""
        assert "options" in inspect.signature(getattr(cls, verb)).parameters

    @pytest.mark.parametrize("cls", (Client, LiveClient, ShardRouter))
    def test_session_verb_everywhere(self, cls):
        assert callable(getattr(cls, "session"))


class TestSameProgramSameAnswers:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_program_outcome(self, backend):
        out = _run(backend)
        assert out["acct"] == 75
        assert out["strict_acct"] == 75
        assert out["many"] == {"acct": 75, "note": "hello", "flag": True}
        assert out["query_values"]["acct"] == 75
        assert sorted(out["query_values"]["log"]) == ["a", "b"]
        # Settled system: a bounded query observes zero inconsistency.
        assert out["inconsistency"] == 0
        assert out["waits"] == 0

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_typed_program_outcome(self, backend):
        out = _run(backend, _typed_program)
        assert out["strict"] == 42
        assert out["bounded"] == 42
        assert out["many"] == {"acct": 42, "note": "typed"}
        assert out["query_acct"] == 42
        assert out["query_inconsistency"] == 0
        assert out["legacy"] == 42
        assert out["legacy_warns"], "legacy epsilon kwarg must deprecate"
        # Read-your-writes inside the session, on every backend.
        assert out["session"] == 50

    def test_typed_backends_agree_exactly(self):
        reference = _run("sim", _typed_program)
        assert reference == _run("live", _typed_program)
        assert reference == _run("sharded", _typed_program)

    def test_backends_agree_exactly(self):
        def canonical(out):
            # JSON transport renders sequence values as lists; the sim
            # hands back tuples.  Same contents, same answer.
            out = dict(out)
            out["query_values"] = {
                key: list(value)
                if isinstance(value, (list, tuple))
                else value
                for key, value in out["query_values"].items()
            }
            return out

        reference = canonical(_run("sim"))
        assert reference == canonical(_run("live"))
        # Splitting the keyspace across groups must not change any
        # answer the program can observe.
        assert reference == canonical(_run("sharded"))


class TestMethodParity:
    """RITU and COMPE serve the same portable programs on every
    backend — simulator, one live replica group, and the sharded
    router — with the same answers and the same typed results."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_ritu_program(self, backend):
        out = _run(backend, _ritu_program, method="ritu")
        assert out["city"] == "boston"
        assert out["strict_city"] == "boston"
        assert out["many"] == {"city": "boston", "temp": 21}
        assert out["query_values"] == {"city": "boston", "temp": 21}
        assert out["inconsistency"] == 0

    def test_ritu_backends_agree_exactly(self):
        reference = _run("sim", _ritu_program, method="ritu")
        assert reference == _run("live", _ritu_program, method="ritu")
        assert reference == _run("sharded", _ritu_program, method="ritu")

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_compe_program(self, backend):
        out = _run(backend, _compe_program, method="compe")
        assert out["bal"] == 75
        assert out["many"] == {"bal": 75, "pts": 7}
        assert out["query_bal"] == 75
        assert out["inconsistency"] == 0

    def test_compe_backends_agree_exactly(self):
        reference = _run("sim", _compe_program, method="compe")
        assert reference == _run("live", _compe_program, method="compe")
        assert reference == _run(
            "sharded", _compe_program, method="compe"
        )

    @pytest.mark.parametrize("backend", ("live", "sharded"))
    def test_saga_surface_parity(self, backend):
        """The saga verbs behave identically through one replica group
        and through the shard router: abort decides every step, names
        the compensated tids, and ``abort=True`` fails with the typed
        COMPENSATED code — and the stores end where they started."""

        async def scenario():
            if backend == "live":
                cluster = LiveCluster(n_sites=3, method="compe")
                await cluster.start()
                client = await cluster.client(cluster.names[0])
            else:
                cluster = ShardedCluster(
                    n_shards=2, replicas=2, method="compe"
                )
                await cluster.start()
                client = cluster.router()
            try:
                out = {}
                await client.increment("stock_a", 10)
                await client.increment("stock_b", 10)
                def tids_of(reply):
                    # Routed updates nest per-shard frames; a single
                    # replica group answers with a bare frame.
                    if "tid" in reply:
                        return [reply["tid"]]
                    return [
                        frame["tid"]
                        for frame in reply["shards"].values()
                    ]

                r1 = await client.update(
                    [DecrementOp("stock_a", 1)], saga="order-1"
                )
                r2 = await client.update(
                    [DecrementOp("stock_b", 1)], saga="order-1"
                )
                await client.settle()
                reply = await client.decide("abort", saga="order-1")
                out["decided"] = sorted(reply["decided"])
                out["steps"] = sorted(tids_of(r1) + tids_of(r2))
                out["compensated"] = sorted(reply["compensated"])
                # Retrying the decision is idempotent: nothing new.
                retry = await client.decide("abort", saga="order-1")
                out["retry_decided"] = list(retry["decided"])
                try:
                    await client.update(
                        [DecrementOp("stock_a", 5)], abort=True
                    )
                    out["probe"] = None
                except LiveETFailed as exc:
                    out["probe"] = (
                        exc.code,
                        exc.compensated,
                        len(exc.compensated_tids),
                    )
                await client.settle()
                out["stock"] = await client.read_many(
                    ["stock_a", "stock_b"]
                )
                if backend == "sharded":
                    await client.close()
                return out
            finally:
                await cluster.stop()

        out = asyncio.run(scenario())
        assert out["decided"] == out["steps"]
        assert out["compensated"] == out["steps"]
        assert out["retry_decided"] == []
        assert out["probe"] == ("COMPENSATED", True, 1)
        assert out["stock"] == {"stock_a": 10, "stock_b": 10}


class TestSharedFailureTaxonomy:
    def test_both_failures_are_et_errors(self):
        assert issubclass(ETFailed, ETError)
        assert issubclass(LiveETFailed, ETError)

    def test_codes_are_stable_strings(self):
        from repro import (
            ABORTED, COMPENSATED, EPSILON_EXCEEDED, UNAVAILABLE,
        )

        assert UNAVAILABLE == "UNAVAILABLE"
        assert EPSILON_EXCEEDED == "EPSILON_EXCEEDED"
        assert ABORTED == "ABORTED"
        assert COMPENSATED == "COMPENSATED"

    def test_one_except_clause_catches_either(self):
        for exc in (
            LiveETFailed("refused", "UNAVAILABLE"),
            ETError("generic", "ABORTED"),
        ):
            try:
                raise exc
            except ETError as caught:
                assert caught.code in ("UNAVAILABLE", "ABORTED")
            else:  # pragma: no cover
                pytest.fail("ETError clause did not catch %r" % exc)

    def test_unavailable_predicate(self):
        assert LiveETFailed("refused", "UNAVAILABLE").unavailable
        assert not LiveETFailed("other", "ABORTED").unavailable
        assert ETError("x", "ABORTED").aborted

    def test_compensated_predicate(self):
        assert ETError("undone", "COMPENSATED").compensated
        assert not ETError("x", "ABORTED").compensated
        failure = LiveETFailed(
            "undone", "COMPENSATED", {"compensated": ["site0:4"]}
        )
        assert failure.compensated
        assert failure.compensated_tids == ("site0:4",)

    def test_sim_compensated_status_maps_to_typed_code(self):
        """A sim ET that finishes COMPENSATED raises with the same
        stable code the live runtime uses."""
        from repro import ETResult, ETStatus, UpdateET

        result = ETResult(
            et=UpdateET([IncrementOp("k", 1)]), status=ETStatus.COMPENSATED
        )
        exc = ETFailed(result)
        assert exc.code == "COMPENSATED"
        assert exc.compensated
