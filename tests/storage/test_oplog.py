"""Unit tests for the compensation operation log."""

import pytest

from repro.core.operations import (
    DecrementOp,
    IncrementOp,
    MultiplyOp,
    WriteOp,
)
from repro.storage.kv import KeyValueStore
from repro.storage.oplog import CompensationError, OperationLog


@pytest.fixture
def rig():
    store = KeyValueStore({"x": 1, "y": 10})
    return store, OperationLog(store, default=0)


class TestExecution:
    def test_execute_applies_and_logs(self, rig):
        store, log = rig
        log.execute(1, IncrementOp("x", 5))
        assert store.get("x") == 6
        assert len(log) == 1
        assert log.records[0].prior_value == 1

    def test_lsns_increase(self, rig):
        _, log = rig
        log.execute(1, IncrementOp("x", 1))
        log.execute(2, IncrementOp("x", 1))
        lsns = [r.lsn for r in log.records]
        assert lsns == sorted(lsns) and len(set(lsns)) == 2

    def test_records_of_filters_by_tid(self, rig):
        _, log = rig
        log.execute(1, IncrementOp("x", 1))
        log.execute(2, IncrementOp("y", 1))
        assert [r.tid for r in log.records_of(1)] == [1]

    def test_truncate_before(self, rig):
        _, log = rig
        log.execute(1, IncrementOp("x", 1))
        log.execute(2, IncrementOp("x", 1))
        cut = log.records[1].lsn
        assert log.truncate_before(cut) == 1
        assert [r.tid for r in log.records] == [2]


class TestDirectCompensation:
    def test_commutative_suffix_allows_direct(self, rig):
        store, log = rig
        log.execute(1, IncrementOp("x", 10))
        log.execute(2, IncrementOp("x", 3))
        assert log.can_compensate_directly(1)
        log.compensate_directly(1)
        assert store.get("x") == 4  # 1 + 3

    def test_non_commutative_suffix_forbids_direct(self, rig):
        store, log = rig
        log.execute(1, IncrementOp("x", 10))
        log.execute(2, MultiplyOp("x", 2))
        assert not log.can_compensate_directly(1)
        with pytest.raises(CompensationError):
            log.compensate_directly(1)

    def test_direct_removes_records(self, rig):
        _, log = rig
        log.execute(1, IncrementOp("x", 10))
        log.compensate_directly(1)
        assert log.records_of(1) == []

    def test_unknown_tid_not_compensatable(self, rig):
        _, log = rig
        assert not log.can_compensate_directly(99)

    def test_last_transaction_always_direct(self, rig):
        store, log = rig
        log.execute(1, MultiplyOp("x", 2))
        log.execute(2, IncrementOp("x", 5))
        assert log.can_compensate_directly(2)
        log.compensate_directly(2)
        assert store.get("x") == 2


class TestRollbackReplay:
    def test_paper_worked_example(self, rig):
        """Section 4.1: undo Inc under a later Mul needs replay."""
        store, log = rig
        log.execute(1, IncrementOp("x", 10))  # x: 1 -> 11
        log.execute(2, MultiplyOp("x", 2))  # x: 11 -> 22
        undone, replayed = log.rollback_and_replay(1)
        # Correct result: Mul(x,2) alone on x=1 gives 2.
        assert store.get("x") == 2
        assert undone == 2 and replayed == 1

    def test_overwrite_rollback_restores_recorded_value(self, rig):
        store, log = rig
        log.execute(1, WriteOp("x", 100))
        log.execute(2, IncrementOp("x", 1))
        log.rollback_and_replay(1)
        assert store.get("x") == 2  # 1 + 1

    def test_survivors_keep_their_records(self, rig):
        _, log = rig
        log.execute(1, IncrementOp("x", 10))
        log.execute(2, IncrementOp("x", 3))
        log.rollback_and_replay(1)
        assert [r.tid for r in log.records] == [2]

    def test_missing_tid_raises(self, rig):
        _, log = rig
        with pytest.raises(CompensationError):
            log.rollback_and_replay(42)

    def test_multi_key_rollback(self, rig):
        store, log = rig
        log.execute(1, IncrementOp("x", 10))
        log.execute(1, IncrementOp("y", 10))
        log.execute(2, MultiplyOp("y", 3))
        log.rollback_and_replay(1)
        assert store.get("x") == 1
        assert store.get("y") == 30

    def test_equivalence_with_direct_when_commutative(self):
        """Both strategies must agree when both are legal."""
        s1 = KeyValueStore({"x": 5})
        l1 = OperationLog(s1)
        s2 = KeyValueStore({"x": 5})
        l2 = OperationLog(s2)
        for log in (l1, l2):
            log.execute(1, IncrementOp("x", 10))
            log.execute(2, DecrementOp("x", 3))
        l1.compensate_directly(1)
        l2.rollback_and_replay(1)
        assert s1.get("x") == s2.get("x") == 2


class TestRollbackReplayProperty:
    """Property: rollback_and_replay(tid) leaves the store exactly as
    if every transaction except ``tid`` had run from the start."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=60, deadline=None)
    @given(
        script=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),      # tid
                st.sampled_from(["inc", "dec", "mul", "write"]),
                st.sampled_from(["x", "y"]),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=10,
        ),
        victim=st.integers(min_value=1, max_value=4),
    )
    def test_equivalence_to_fresh_replay(self, script, victim):
        from hypothesis import assume

        from repro.core.operations import (
            DecrementOp,
            IncrementOp,
            MultiplyOp,
            WriteOp,
        )
        from repro.storage.kv import KeyValueStore
        from repro.storage.oplog import OperationLog

        def build_op(kind, key, amount):
            return {
                "inc": IncrementOp(key, amount),
                "dec": DecrementOp(key, amount),
                "mul": MultiplyOp(key, amount),
                "write": WriteOp(key, amount),
            }[kind]

        assume(any(tid == victim for tid, *_ in script))

        # Run the full script through a logged store, then undo victim.
        store = KeyValueStore({"x": 1, "y": 1})
        log = OperationLog(store, default=0)
        for tid, kind, key, amount in script:
            log.execute(tid, build_op(kind, key, amount))
        log.rollback_and_replay(victim)

        # Reference: replay everything except the victim from scratch.
        reference = KeyValueStore({"x": 1, "y": 1})
        for tid, kind, key, amount in script:
            if tid != victim:
                reference.apply(build_op(kind, key, amount), default=0)

        assert store.as_dict() == reference.as_dict()

    @settings(max_examples=60, deadline=None)
    @given(
        script=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.sampled_from(["inc", "dec"]),
                st.sampled_from(["x", "y"]),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=10,
        ),
        victim=st.integers(min_value=1, max_value=3),
    )
    def test_direct_equals_rollback_when_commutative(self, script, victim):
        from hypothesis import assume

        from repro.core.operations import DecrementOp, IncrementOp
        from repro.storage.kv import KeyValueStore
        from repro.storage.oplog import OperationLog

        def build_op(kind, key, amount):
            return (
                IncrementOp(key, amount)
                if kind == "inc"
                else DecrementOp(key, amount)
            )

        assume(any(tid == victim for tid, *_ in script))

        stores = []
        for strategy in ("direct", "rollback"):
            store = KeyValueStore({"x": 1, "y": 1})
            log = OperationLog(store, default=0)
            for tid, kind, key, amount in script:
                log.execute(tid, build_op(kind, key, amount))
            if strategy == "direct":
                assert log.can_compensate_directly(victim)
                log.compensate_directly(victim)
            else:
                log.rollback_and_replay(victim)
            stores.append(store.as_dict())
        assert stores[0] == stores[1]
