"""Unit tests for the versioned KV store."""

import pytest

from repro.core.operations import (
    AppendOp,
    IncrementOp,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
)
from repro.storage.kv import KeyNotFound, KeyValueStore


class TestBasics:
    def test_put_get(self):
        store = KeyValueStore()
        store.put("x", 5)
        assert store.get("x") == 5

    def test_missing_key_raises(self):
        with pytest.raises(KeyNotFound):
            KeyValueStore().get("x")

    def test_missing_key_default(self):
        assert KeyValueStore().get("x", 42) == 42

    def test_initial_contents(self):
        store = KeyValueStore({"a": 1, "b": 2})
        assert store.get("a") == 1 and store.get("b") == 2

    def test_contains_len_keys(self):
        store = KeyValueStore({"a": 1})
        assert "a" in store and "b" not in store
        assert len(store) == 1
        assert list(store.keys()) == ["a"]

    def test_delete(self):
        store = KeyValueStore({"a": 1})
        store.delete("a")
        assert "a" not in store

    def test_as_dict(self):
        store = KeyValueStore({"a": 1, "b": 2})
        assert store.as_dict() == {"a": 1, "b": 2}


class TestApply:
    def test_write_op(self):
        store = KeyValueStore()
        store.apply(WriteOp("x", 9))
        assert store.get("x") == 9

    def test_increment_materializes_default(self):
        store = KeyValueStore()
        assert store.apply(IncrementOp("x", 5)) == 5

    def test_increment_with_custom_default(self):
        store = KeyValueStore()
        assert store.apply(IncrementOp("x", 5), default=100) == 105

    def test_read_does_not_modify(self):
        store = KeyValueStore({"x": 3})
        assert store.apply(ReadOp("x")) == 3
        assert store.get("x") == 3

    def test_append(self):
        store = KeyValueStore()
        store.apply(AppendOp("log", "a"), default=())
        store.apply(AppendOp("log", "b"), default=())
        assert store.get("log") == ("a", "b")


class TestThomasRule:
    def test_newer_timestamp_wins(self):
        store = KeyValueStore()
        store.apply(TimestampedWriteOp("x", 1, (1, 0)))
        store.apply(TimestampedWriteOp("x", 2, (5, 0)))
        assert store.get("x") == 2
        assert store.stamp_of("x") == (5, 0)

    def test_older_timestamp_ignored(self):
        store = KeyValueStore()
        store.apply(TimestampedWriteOp("x", 2, (5, 0)))
        store.apply(TimestampedWriteOp("x", 1, (1, 0)))
        assert store.get("x") == 2

    def test_any_order_converges(self):
        ops = [
            TimestampedWriteOp("x", i, (i, 0)) for i in (3, 1, 4, 2, 5)
        ]
        a, b = KeyValueStore(), KeyValueStore()
        for op in ops:
            a.apply(op)
        for op in reversed(ops):
            b.apply(op)
        assert a.get("x") == b.get("x") == 5


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        store = KeyValueStore({"a": 1})
        snap = store.snapshot()
        store.put("a", 99)
        store.put("b", 2)
        store.restore(snap)
        assert store.as_dict() == {"a": 1}

    def test_snapshot_is_deep(self):
        store = KeyValueStore({"a": [1, 2]})
        snap = store.snapshot()
        store.get("a").append(3)
        assert snap.values["a"] == [1, 2]

    def test_restore_preserves_stamps(self):
        store = KeyValueStore()
        store.apply(TimestampedWriteOp("x", 1, (7, 0)))
        snap = store.snapshot()
        store.apply(TimestampedWriteOp("x", 2, (9, 0)))
        store.restore(snap)
        assert store.stamp_of("x") == (7, 0)
