"""Unit tests for the multiversion store with VTNC visibility."""

import pytest

from repro.storage.mvstore import MultiVersionStore, NoVisibleVersion


@pytest.fixture
def store():
    return MultiVersionStore()


class TestInstallRead:
    def test_read_latest(self, store):
        store.install("x", "v1", 1)
        store.install("x", "v2", 2)
        assert store.read_latest("x").value == "v2"

    def test_read_missing_raises(self, store):
        with pytest.raises(NoVisibleVersion):
            store.read_latest("x")

    def test_out_of_order_install_sorted(self, store):
        store.install("x", "v3", 3)
        store.install("x", "v1", 1)
        assert [v.txn_number for v in store.versions_of("x")] == [1, 3]
        assert store.read_latest("x").value == "v3"

    def test_read_at_bound(self, store):
        store.install("x", "v1", 1)
        store.install("x", "v5", 5)
        assert store.read_at("x", 3).value == "v1"
        assert store.read_at("x", 5).value == "v5"

    def test_read_at_below_all_raises(self, store):
        store.install("x", "v5", 5)
        with pytest.raises(NoVisibleVersion):
            store.read_at("x", 2)

    def test_latest_values(self, store):
        store.install("x", 1, 1)
        store.install("y", 2, 2)
        assert store.latest_values() == {"x": 1, "y": 2}


class TestVTNC:
    def test_vtnc_monotone(self, store):
        store.advance_vtnc(5)
        store.advance_vtnc(3)
        assert store.vtnc == 5

    def test_read_visible_respects_vtnc(self, store):
        store.install("x", "stable", 1)
        store.install("x", "unstable", 5)
        store.advance_vtnc(2)
        assert store.read_visible("x").value == "stable"

    def test_unstable_versions(self, store):
        store.install("x", "a", 1)
        store.install("x", "b", 5)
        store.advance_vtnc(2)
        unstable = store.unstable_versions("x")
        assert [v.txn_number for v in unstable] == [5]

    def test_no_visible_version_raises(self, store):
        store.install("x", "v", 9)
        store.advance_vtnc(1)
        with pytest.raises(NoVisibleVersion):
            store.read_visible("x")


class TestCompensation:
    def test_compensation_shadows_at_same_number(self, store):
        store.install("x", "original", 3)
        store.compensate("x", 3, "restored")
        assert store.read_at("x", 3).value == "restored"

    def test_delete_version(self, store):
        store.install("x", "a", 1)
        store.install("x", "b", 2)
        assert store.delete_version("x", 2)
        assert store.read_latest("x").value == "a"

    def test_delete_missing_returns_false(self, store):
        assert not store.delete_version("x", 1)

    def test_delete_removes_newest_duplicate_first(self, store):
        store.install("x", "a", 3)
        store.compensate("x", 3, "b")
        assert store.delete_version("x", 3)
        assert store.read_latest("x").value == "a"


class TestOrderIndependence:
    def test_install_order_does_not_matter(self):
        """RITU convergence: same version set -> same visible state."""
        installs = [("x", "v%d" % i, i) for i in (4, 1, 3, 2, 5)]
        a, b = MultiVersionStore(), MultiVersionStore()
        for key, value, n in installs:
            a.install(key, value, n)
        for key, value, n in reversed(installs):
            b.install(key, value, n)
        assert a.latest_values() == b.latest_values()
        assert a.read_at("x", 3).value == b.read_at("x", 3).value
