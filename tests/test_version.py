"""The package version is single-sourced from pyproject.toml."""

import pathlib
import re

import repro


def test_version_matches_pyproject():
    pyproject = pathlib.Path(repro.__file__).resolve().parents[2]
    pyproject = pyproject / "pyproject.toml"
    declared = re.search(
        r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
    ).group(1)
    assert repro.__version__ == declared
