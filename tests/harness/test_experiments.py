"""Tests for the registered experiments: the paper's tables and claims.

These are the *reproduction assertions*: each test pins the shape the
paper predicts, so a regression in any method shows up as a failed
reproduction rather than a silently different number.
"""

import pytest

from repro.core.transactions import UNLIMITED
from repro.harness.experiments import (
    EXPERIMENTS,
    experiment_e1_example_log,
    experiment_e3_epsilon_sweep,
    experiment_e9_availability,
    experiment_table1,
    experiment_table2,
    experiment_table3,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "T1", "T2", "T3",
            "E1", "E2", "E3", "E4", "E5",
            "E6", "E7", "E8", "E9", "E10",
        }


class TestTable1:
    def test_matches_paper(self):
        _, data = experiment_table1()
        assert data["ORDUP"]["Kind of Restriction"] == "message delivery"
        assert data["COMMU"]["Sorting Time"] == "doesn't matter"
        assert data["RITU"]["Sorting Time"] == "at read"
        assert data["COMPE"]["Applicability"] == "Backwards"
        assert data["ORDUP"]["Asynchronous Propagation"] == "Query only"
        for name in ("COMMU", "RITU", "COMPE"):
            assert data[name]["Asynchronous Propagation"] == "Query & Update"


class TestTables2And3:
    def test_table2_cells(self):
        _, rows = experiment_table2()
        cells = dict(rows)
        assert cells["RU"] == ["OK", "", "OK"]
        assert cells["WU"] == ["", "", "OK"]
        assert cells["RQ"] == ["OK", "OK", "OK"]

    def test_table3_cells(self):
        _, rows = experiment_table3()
        cells = dict(rows)
        assert cells["RU"] == ["OK", "Comm", "OK"]
        assert cells["WU"] == ["Comm", "Comm", "OK"]
        assert cells["RQ"] == ["OK", "OK", "OK"]


class TestE1:
    def test_paper_log_classification(self):
        _, data = experiment_e1_example_log()
        assert not data["full_log_serial"]
        assert not data["full_log_sr"]
        assert data["epsilon_serial"]
        assert data["update_projection_serial"]


class TestE3EpsilonSweep:
    def test_error_monotone_in_epsilon_and_zero_at_strict(self):
        _, data = experiment_e3_epsilon_sweep(
            epsilons=(0, 2, UNLIMITED), count=60
        )
        assert data[0]["max_inconsistency"] == 0
        assert data[2]["max_inconsistency"] <= 2
        assert (
            data[0]["max_inconsistency"]
            <= data[2]["max_inconsistency"]
            <= data[UNLIMITED]["max_inconsistency"]
        )

    def test_all_queries_within_bound(self):
        _, data = experiment_e3_epsilon_sweep(epsilons=(1,), count=60)
        assert data[1]["within_bound"] == 1.0

    def test_strict_queries_wait_more(self):
        _, data = experiment_e3_epsilon_sweep(
            epsilons=(0, UNLIMITED), count=60
        )
        assert data[0]["waits"] >= data[UNLIMITED]["waits"]


class TestE9Availability:
    def test_async_beats_sync_during_partition(self):
        _, data = experiment_e9_availability(count=40)
        # The paper's headline: asynchronous methods keep committing
        # during partitions; synchronous methods block.
        assert data["COMMU"]["availability"] == 1.0
        assert data["RITU"]["availability"] == 1.0
        assert data["ROWA-2PC"]["availability"] == 0.0
        assert data["QUORUM"]["availability"] == 0.0
        # And everyone still converges once the partition heals.
        for name in data:
            assert data[name]["converged"] == 1.0
