"""Tests for the one-call ESR audit."""

import pytest

from repro import audit
from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    EpsilonSpec,
    ETResult,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.harness.audit import AuditReport
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestAuditOnRealSystem:
    def test_clean_run_audits_ok(self):
        system = ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(
                n_sites=3,
                seed=4,
                latency=UniformLatency(0.5, 3.0),
                initial=(("x", 0),),
            ),
        )
        for i in range(6):
            system.submit_at(
                i * 0.5, UpdateET([IncrementOp("x", 1)]), "site%d" % (i % 3)
            )
            system.submit_at(
                i * 0.5 + 0.2,
                QueryET([ReadOp("x")], EpsilonSpec(import_limit=2)),
                "site%d" % ((i + 1) % 3),
            )
        system.run_to_quiescence()
        report = audit(system)
        report.assert_ok()
        assert report.queries_audited == 6
        assert report.updates_audited == 6


class TestAuditReportDiagnosis:
    def test_ok_report(self):
        report = AuditReport(converged=True, one_copy_serializable=True)
        assert report.ok
        report.assert_ok()

    def test_divergence_diagnosed(self):
        report = AuditReport(converged=False, one_copy_serializable=True)
        with pytest.raises(AssertionError, match="did not converge"):
            report.assert_ok()

    def test_non_sr_diagnosed(self):
        report = AuditReport(converged=True, one_copy_serializable=False)
        with pytest.raises(AssertionError, match="not 1SR"):
            report.assert_ok()

    def test_epsilon_violation_diagnosed(self):
        report = AuditReport(
            converged=True,
            one_copy_serializable=True,
            epsilon_violations=[7],
        )
        with pytest.raises(AssertionError, match="over epsilon"):
            report.assert_ok()

    def test_overlap_violation_diagnosed(self):
        report = AuditReport(
            converged=True,
            one_copy_serializable=True,
            overlap_violations=[9],
        )
        with pytest.raises(AssertionError, match="overlap bound"):
            report.assert_ok()


class TestHistoryRender:
    def test_paper_notation(self):
        from repro.core.history import History
        from repro.core.operations import ReadOp, WriteOp

        h = History()
        h.record(1, ReadOp("a"))
        h.record(1, WriteOp("b", 1))
        h.record(2, WriteOp("b", 2))
        assert h.render() == "R1(a) W1(b) W2(b)"
