"""Unit tests for table rendering."""

from repro.harness.report import format_cell, render_series, render_table


class TestFormatCell:
    def test_integral_float_shown_as_int(self):
        assert format_cell(3.0) == "3"

    def test_fractional_float_three_places(self):
        assert format_cell(3.14159) == "3.142"

    def test_none_renders_as_dash(self):
        # "not measured", distinguishable from an empty cell.
        assert format_cell(None) == "-"

    def test_strings_pass_through(self):
        assert format_cell("OK") == "OK"

    def test_bools(self):
        assert format_cell(True) == "True"


class TestRenderTable:
    def test_contains_title_and_cells(self):
        text = render_table("My Table", ["a", "b"], [[1, 2], [3, 4]])
        assert "My Table" in text
        lines = text.splitlines()
        assert any("1" in line and "2" in line for line in lines)

    def test_row_labels_prepended(self):
        text = render_table(
            "T", ["c1"], [[1]], row_labels=["row-one"]
        )
        assert "row-one" in text

    def test_columns_aligned(self):
        text = render_table(
            "T", ["col"], [["short"], ["a-much-longer-cell"]]
        )
        data_lines = [
            line for line in text.splitlines() if "cell" in line or "short" in line
        ]
        assert len({len(line.rstrip()) for line in data_lines}) <= 2


class TestRenderSeries:
    def test_series_sorted_by_name(self):
        text = render_series(
            "S", "x", [1, 2], {"zeta": [10, 20], "alpha": [1, 2]}
        )
        header = [l for l in text.splitlines() if "alpha" in l][0]
        assert header.index("alpha") < header.index("zeta")

    def test_x_column_first(self):
        text = render_series("S", "xcol", [1], {"s": [9]})
        header = [l for l in text.splitlines() if "xcol" in l][0]
        assert header.strip().startswith("xcol")
