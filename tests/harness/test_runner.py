"""Tests for the experiment runner."""

import pytest

from repro.harness.runner import divergence_trace, run_experiment
from repro.replica.base import SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.sim.network import ConstantLatency
from repro.workload.generator import WorkloadSpec


def _config(**kw):
    defaults = dict(
        n_sites=3,
        seed=1,
        latency=ConstantLatency(1.0),
        initial=(("x0", 0), ("x1", 0)),
    )
    defaults.update(kw)
    return SystemConfig(**defaults)


def _spec(**kw):
    defaults = dict(
        n_keys=2, count=30, query_fraction=0.5,
        style="commutative", epsilon=2, mean_interarrival=1.0,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestRunExperiment:
    def test_basic_run(self):
        result = run_experiment(CommutativeOperations, _config(), _spec())
        assert result.converged
        assert result.one_copy_serializable
        assert result.metrics.total_ets == 30
        assert result.quiescence_time > 0

    def test_determinism(self):
        a = run_experiment(CommutativeOperations, _config(), _spec())
        b = run_experiment(CommutativeOperations, _config(), _spec())
        assert a.metrics.as_row() == b.metrics.as_row()
        assert a.quiescence_time == b.quiescence_time

    def test_different_workload_seed_differs(self):
        a = run_experiment(
            CommutativeOperations, _config(), _spec(), workload_seed=1
        )
        b = run_experiment(
            CommutativeOperations, _config(), _spec(), workload_seed=2
        )
        assert a.quiescence_time != b.quiescence_time

    def test_system_not_kept_by_default(self):
        result = run_experiment(CommutativeOperations, _config(), _spec())
        assert result.system is None

    def test_keep_system(self):
        result = run_experiment(
            CommutativeOperations, _config(), _spec(), keep_system=True
        )
        assert result.system is not None

    def test_query_accounting_populated(self):
        result = run_experiment(CommutativeOperations, _config(), _spec())
        assert result.query_inconsistency
        assert set(result.query_inconsistency) <= set(
            result.query_overlap_bound
        ) | set(result.query_inconsistency)

    def test_failures_hook_invoked(self):
        seen = []
        run_experiment(
            CommutativeOperations,
            _config(),
            _spec(),
            failures=lambda system: seen.append(len(system.sites)),
        )
        assert seen == [3]


class TestDivergenceTrace:
    def test_trace_ends_at_zero(self):
        times, values, quiescence = divergence_trace(
            CommutativeOperations,
            _config(latency=ConstantLatency(3.0)),
            _spec(query_fraction=0.0, count=20),
            sample_every=2.0,
        )
        assert len(times) == len(values)
        assert values[-1] == 0.0
        assert times[-1] == quiescence

    def test_trace_shows_transient_divergence(self):
        times, values, _ = divergence_trace(
            CommutativeOperations,
            _config(latency=ConstantLatency(6.0)),
            _spec(query_fraction=0.0, count=20, mean_interarrival=0.5),
            sample_every=1.0,
        )
        assert max(values) > 0.0
