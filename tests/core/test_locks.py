"""Unit tests for ET lock tables and the lock manager."""

import pytest

from repro.core.locks import (
    CLASSIC_2PL,
    COMMU_TABLE,
    Compatibility,
    DeadlockError,
    LockManager,
    LockMode,
    ORDUP_TABLE,
)
from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)

RU, WU, RQ = LockMode.R_U, LockMode.W_U, LockMode.R_Q


class TestPaperTables:
    """Tables 2 and 3 cell-by-cell, straight from the paper."""

    def test_table2_matches_paper(self):
        expected = {
            (RU, RU): "OK", (RU, WU): "", (RU, RQ): "OK",
            (WU, RU): "", (WU, WU): "", (WU, RQ): "OK",
            (RQ, RU): "OK", (RQ, WU): "OK", (RQ, RQ): "OK",
        }
        rows = dict(ORDUP_TABLE.rows())
        order = [RU, WU, RQ]
        for i, held in enumerate(order):
            for j, req in enumerate(order):
                assert rows[held.value][j] == expected[(held, req)], (
                    "Table 2 cell (%s, %s)" % (held, req)
                )

    def test_table3_matches_paper(self):
        expected = {
            (RU, RU): "OK", (RU, WU): "Comm", (RU, RQ): "OK",
            (WU, RU): "Comm", (WU, WU): "Comm", (WU, RQ): "OK",
            (RQ, RU): "OK", (RQ, WU): "OK", (RQ, RQ): "OK",
        }
        rows = dict(COMMU_TABLE.rows())
        order = [RU, WU, RQ]
        for i, held in enumerate(order):
            for j, req in enumerate(order):
                assert rows[held.value][j] == expected[(held, req)], (
                    "Table 3 cell (%s, %s)" % (held, req)
                )

    def test_classic_table_blocks_queries_on_writes(self):
        ok, _ = CLASSIC_2PL.compatible(
            WU, WriteOp("x", 1), RQ, ReadOp("x")
        )
        assert not ok

    def test_ordup_grants_query_over_write_with_charge(self):
        ok, charge = ORDUP_TABLE.compatible(
            WU, WriteOp("x", 1), RQ, ReadOp("x")
        )
        assert ok and charge

    def test_commu_comm_entry_resolves_by_operations(self):
        ok, _ = COMMU_TABLE.compatible(
            WU, IncrementOp("x", 1), WU, IncrementOp("x", 2)
        )
        assert ok
        ok, _ = COMMU_TABLE.compatible(
            WU, IncrementOp("x", 1), WU, MultiplyOp("x", 2)
        )
        assert not ok


class TestLockManager:
    def test_compatible_grants_coexist(self):
        lm = LockManager(CLASSIC_2PL)
        assert lm.try_acquire(1, "x", RU, ReadOp("x"))
        assert lm.try_acquire(2, "x", RU, ReadOp("x"))

    def test_conflicting_request_denied(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        assert lm.try_acquire(2, "x", WU, WriteOp("x", 2)) is None

    def test_reentrant_same_mode(self):
        lm = LockManager(CLASSIC_2PL)
        first = lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        again = lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        assert first is again

    def test_write_subsumes_read(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        assert lm.try_acquire(1, "x", RU, ReadOp("x")) is not None

    def test_release_wakes_waiter(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        woken = []
        lm.acquire(2, "x", WU, WriteOp("x", 2), woken.append)
        assert not woken
        lm.release_all(1)
        assert len(woken) == 1 and woken[0].tid == 2

    def test_fifo_fairness_for_update_locks(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        lm.acquire(2, "x", WU, WriteOp("x", 2), lambda g: None)
        # A later read must not jump the queued writer.
        assert lm.try_acquire(3, "x", RU, ReadOp("x")) is None

    def test_query_skips_fairness_queue(self):
        lm = LockManager(ORDUP_TABLE)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        lm.acquire(2, "x", WU, WriteOp("x", 2), lambda g: None)
        grant = lm.try_acquire(3, "x", RQ, ReadOp("x"))
        assert grant is not None
        assert grant.charged_against == {1}

    def test_charged_against_collects_all_writers(self):
        lm = LockManager(COMMU_TABLE)
        lm.try_acquire(1, "x", WU, IncrementOp("x", 1))
        lm.try_acquire(2, "x", WU, IncrementOp("x", 2))
        grant = lm.try_acquire(3, "x", RQ, ReadOp("x"))
        assert grant.charged_against == {1, 2}

    def test_waiting_count(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        lm.acquire(2, "x", WU, WriteOp("x", 2), lambda g: None)
        assert lm.waiting_count("x") == 1
        assert lm.waiting_count() == 1

    def test_locks_of_and_holders_of(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        assert [g.key for g in lm.locks_of(1)] == ["x"]
        assert [g.tid for g in lm.holders_of("x")] == [1]


class TestDeadlock:
    def test_two_party_deadlock_aborts_youngest(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        lm.try_acquire(2, "y", WU, WriteOp("y", 2))
        outcomes = {}
        lm.acquire(1, "y", WU, WriteOp("y", 1), lambda g: outcomes.setdefault(1, g))
        with pytest.raises(DeadlockError) as exc:
            lm.acquire(2, "x", WU, WriteOp("x", 2), lambda g: outcomes.setdefault(2, g))
        assert exc.value.tid == 2
        # Victim's locks released; transaction 1 gets its wait granted.
        assert outcomes.get(1) is not None

    def test_no_false_deadlock_for_simple_wait(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        lm.acquire(2, "x", WU, WriteOp("x", 2), lambda g: None)  # no raise

    def test_victim_waiter_woken_with_none(self):
        lm = LockManager(CLASSIC_2PL)
        lm.try_acquire(1, "x", WU, WriteOp("x", 1))
        lm.try_acquire(2, "y", WU, WriteOp("y", 2))
        wakes = []
        lm.acquire(2, "x", WU, WriteOp("x", 2), wakes.append)
        # tid 2 is waiting on x; now tid 1 requests y, closing the cycle.
        # Youngest (2) is the victim; its waiter is woken with None.
        lm.acquire(1, "y", WU, WriteOp("y", 1), lambda g: None)
        assert wakes == [None]
