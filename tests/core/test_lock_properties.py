"""Property tests: lock-manager safety invariants under random scripts.

Whatever sequence of acquires and releases happens, the lock manager
must never let two pairwise-incompatible grants coexist on a key —
that invariant is what makes Tables 2/3 safe to trust.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.locks import (
    CLASSIC_2PL,
    COMMU_TABLE,
    DeadlockError,
    LockManager,
    LockMode,
    ORDUP_TABLE,
)
from repro.core.operations import IncrementOp, MultiplyOp, ReadOp

_TABLES = {
    "classic": CLASSIC_2PL,
    "ordup": ORDUP_TABLE,
    "commu": COMMU_TABLE,
}

_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release"]),
        st.integers(min_value=1, max_value=5),  # tid
        st.sampled_from(["j", "k"]),  # key
        st.sampled_from(["RU", "WU", "RQ", "inc", "mul"]),  # flavor
    ),
    max_size=30,
)


def _request(flavor, key):
    if flavor == "RU":
        return LockMode.R_U, ReadOp(key)
    if flavor == "RQ":
        return LockMode.R_Q, ReadOp(key)
    if flavor == "inc":
        return LockMode.W_U, IncrementOp(key, 1)
    if flavor == "mul":
        return LockMode.W_U, MultiplyOp(key, 2)
    return LockMode.W_U, IncrementOp(key, 1)


def _holders_pairwise_compatible(manager, table):
    for key in ("j", "k"):
        holders = manager.holders_of(key)
        for i, a in enumerate(holders):
            for b in holders[i + 1:]:
                if a.tid == b.tid:
                    continue
                ok_ab, _ = table.compatible(a.mode, a.op, b.mode, b.op)
                ok_ba, _ = table.compatible(b.mode, b.op, a.mode, a.op)
                if not (ok_ab and ok_ba):
                    return False
    return True


class TestLockSafety:
    @settings(max_examples=80, deadline=None)
    @given(actions=_ACTIONS, table_name=st.sampled_from(sorted(_TABLES)))
    def test_no_incompatible_coholders_ever(self, actions, table_name):
        table = _TABLES[table_name]
        manager = LockManager(table)
        for kind, tid, key, flavor in actions:
            if kind == "acquire":
                mode, op = _request(flavor, key)
                try:
                    manager.acquire(tid, key, mode, op, lambda g: None)
                except DeadlockError:
                    pass  # victim aborted; locks already released
            else:
                manager.release_all(tid)
            assert _holders_pairwise_compatible(manager, table)

    @settings(max_examples=60, deadline=None)
    @given(actions=_ACTIONS, table_name=st.sampled_from(sorted(_TABLES)))
    def test_release_all_leaves_no_trace(self, actions, table_name):
        manager = LockManager(_TABLES[table_name])
        tids = set()
        for kind, tid, key, flavor in actions:
            if kind == "acquire":
                mode, op = _request(flavor, key)
                try:
                    manager.acquire(tid, key, mode, op, lambda g: None)
                    tids.add(tid)
                except DeadlockError:
                    pass
            else:
                manager.release_all(tid)
        for tid in tids:
            manager.release_all(tid)
        for key in ("j", "k"):
            assert manager.holders_of(key) == []
        assert manager.waiting_count() == 0


class TestSimulatorOrderingProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=60, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=30,
        )
    )
    def test_events_fire_in_nondecreasing_time(self, delays):
        from repro.sim.events import Simulator

        sim = Simulator(seed=1)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
