"""Unit tests for the operation algebra."""

import pytest

from repro.core.operations import (
    AppendOp,
    DecrementOp,
    DivideOp,
    IncrementOp,
    MultiplyOp,
    OperationError,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
    commutes,
    conflicts,
    is_read,
    is_write,
)


class TestApplication:
    def test_read_returns_value_unchanged(self):
        assert ReadOp("x").apply(42) == 42

    def test_write_overwrites(self):
        assert WriteOp("x", 7).apply(3) == 7

    def test_increment(self):
        assert IncrementOp("x", 5).apply(10) == 15

    def test_decrement(self):
        assert DecrementOp("x", 5).apply(10) == 5

    def test_multiply(self):
        assert MultiplyOp("x", 3).apply(4) == 12

    def test_divide(self):
        assert DivideOp("x", 4).apply(12) == 3

    def test_divide_by_zero_raises(self):
        with pytest.raises(OperationError):
            DivideOp("x", 0).apply(12)

    def test_arithmetic_on_non_numeric_raises(self):
        with pytest.raises(OperationError):
            IncrementOp("x", 1).apply("not a number")

    def test_append_to_empty(self):
        assert AppendOp("x", "a").apply(None) == ("a",)

    def test_append_extends(self):
        assert AppendOp("x", "b").apply(("a",)) == ("a", "b")

    def test_append_to_non_tuple_raises(self):
        with pytest.raises(OperationError):
            AppendOp("x", "a").apply(5)


class TestClassification:
    def test_read_is_read(self):
        assert is_read(ReadOp("x"))
        assert not is_write(ReadOp("x"))

    def test_write_is_write(self):
        assert is_write(WriteOp("x", 1))
        assert not is_read(WriteOp("x", 1))

    def test_arithmetic_ops_are_writes(self):
        for op in (
            IncrementOp("x", 1),
            DecrementOp("x", 1),
            MultiplyOp("x", 2),
            DivideOp("x", 2),
        ):
            assert is_write(op)

    def test_blind_write_flags(self):
        assert WriteOp("x", 1).read_independent
        assert TimestampedWriteOp("x", 1, (1, 0)).read_independent
        assert not IncrementOp("x", 1).read_independent


class TestCommutativity:
    def test_different_keys_always_commute(self):
        assert commutes(WriteOp("x", 1), WriteOp("y", 2))
        assert commutes(ReadOp("x"), WriteOp("y", 2))

    def test_reads_commute(self):
        assert commutes(ReadOp("x"), ReadOp("x"))

    def test_read_write_do_not_commute(self):
        assert not commutes(ReadOp("x"), WriteOp("x", 1))

    def test_increments_commute(self):
        assert commutes(IncrementOp("x", 3), IncrementOp("x", 9))
        assert commutes(IncrementOp("x", 3), DecrementOp("x", 9))

    def test_multiplies_commute(self):
        assert commutes(MultiplyOp("x", 2), DivideOp("x", 3))

    def test_increment_multiply_do_not_commute(self):
        assert not commutes(IncrementOp("x", 10), MultiplyOp("x", 2))

    def test_appends_commute(self):
        assert commutes(AppendOp("x", 1), AppendOp("x", 2))

    def test_timestamped_writes_commute(self):
        a = TimestampedWriteOp("x", 1, (1, 0))
        b = TimestampedWriteOp("x", 2, (2, 0))
        assert commutes(a, b)

    def test_plain_writes_same_value_commute(self):
        assert commutes(WriteOp("x", 5), WriteOp("x", 5))

    def test_plain_writes_different_values_do_not(self):
        assert not commutes(WriteOp("x", 5), WriteOp("x", 6))

    def test_commutes_is_symmetric(self):
        pairs = [
            (IncrementOp("x", 1), MultiplyOp("x", 2)),
            (ReadOp("x"), IncrementOp("x", 1)),
            (TimestampedWriteOp("x", 1, (1, 0)), WriteOp("x", 2)),
            (AppendOp("x", 1), ReadOp("x")),
        ]
        for a, b in pairs:
            assert commutes(a, b) == commutes(b, a)


class TestConflicts:
    def test_no_conflict_across_keys(self):
        assert not conflicts(WriteOp("x", 1), WriteOp("y", 2))

    def test_reads_do_not_conflict(self):
        assert not conflicts(ReadOp("x"), ReadOp("x"))

    def test_read_write_conflict(self):
        assert conflicts(ReadOp("x"), IncrementOp("x", 1))

    def test_commuting_writes_do_not_conflict(self):
        assert not conflicts(IncrementOp("x", 1), IncrementOp("x", 2))

    def test_non_commuting_writes_conflict(self):
        assert conflicts(IncrementOp("x", 1), MultiplyOp("x", 2))


class TestInverses:
    def test_increment_inverse_restores(self):
        op = IncrementOp("x", 7)
        inv = op.inverse(10)
        assert inv.apply(op.apply(10)) == 10

    def test_decrement_inverse_restores(self):
        op = DecrementOp("x", 7)
        inv = op.inverse(10)
        assert inv.apply(op.apply(10)) == 10

    def test_multiply_inverse_restores(self):
        op = MultiplyOp("x", 4)
        inv = op.inverse(10)
        assert inv.apply(op.apply(10)) == 10

    def test_multiply_by_zero_inverse_uses_prior_value(self):
        op = MultiplyOp("x", 0)
        inv = op.inverse(10)
        assert inv.apply(op.apply(10)) == 10

    def test_write_inverse_restores_prior(self):
        op = WriteOp("x", 99)
        inv = op.inverse(10)
        assert inv.apply(op.apply(10)) == 10

    def test_read_has_no_inverse(self):
        assert ReadOp("x").inverse(10) is None

    def test_append_inverse_removes_item(self):
        op = AppendOp("x", "b")
        inv = op.inverse(("a",))
        assert inv.apply(op.apply(("a",))) == ("a",)

    def test_append_inverse_fails_when_item_missing(self):
        op = AppendOp("x", "b")
        inv = op.inverse(("a",))
        with pytest.raises(OperationError):
            inv.apply(("a",))

    def test_timestamped_inverse_reinstalls_prior_at_same_stamp(self):
        op = TimestampedWriteOp("x", 5, (3, 0))
        inv = op.inverse(2)
        assert isinstance(inv, TimestampedWriteOp)
        assert inv.value == 2
        assert inv.timestamp == (3, 0)


class TestThomasWriteRule:
    def test_newer_write_wins(self):
        op = TimestampedWriteOp("x", 5, (3, 0))
        assert op.apply_timestamped(((1, 0), 2)) == ((3, 0), 5)

    def test_older_write_ignored(self):
        op = TimestampedWriteOp("x", 5, (1, 0))
        assert op.apply_timestamped(((3, 0), 2)) == ((3, 0), 2)

    def test_first_write_installs(self):
        op = TimestampedWriteOp("x", 5, (1, 0))
        assert op.apply_timestamped(None) == ((1, 0), 5)

    def test_order_independence(self):
        a = TimestampedWriteOp("x", 1, (1, 0))
        b = TimestampedWriteOp("x", 2, (2, 1))
        ab = b.apply_timestamped(a.apply_timestamped(None))
        ba = a.apply_timestamped(b.apply_timestamped(None))
        assert ab == ba == ((2, 1), 2)


class TestPaperWorkedExample:
    """Section 4.1: Inc(x,10).Mul(x,2).Dec(x,10) != Mul(x,2)."""

    def test_naive_compensation_is_wrong(self):
        x = 1
        x = IncrementOp("x", 10).apply(x)
        x = MultiplyOp("x", 2).apply(x)
        x = DecrementOp("x", 10).apply(x)  # naive undo of the Inc
        assert x != MultiplyOp("x", 2).apply(1)

    def test_rollback_and_replay_is_right(self):
        x = 1
        x = IncrementOp("x", 10).apply(x)
        x = MultiplyOp("x", 2).apply(x)
        # undo the intervening Mul, undo the Inc, replay the Mul:
        x = DivideOp("x", 2).apply(x)
        x = DecrementOp("x", 10).apply(x)
        x = MultiplyOp("x", 2).apply(x)
        assert x == MultiplyOp("x", 2).apply(1)
