"""Tests for the local ET scheduler over divergence control engines."""

import pytest

from repro.core.divergence import (
    BasicTimestampDC,
    TwoPhaseLockingDC,
)
from repro.core.locks import CLASSIC_2PL, COMMU_TABLE, ORDUP_TABLE
from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.scheduler import LocalScheduler
from repro.core.transactions import (
    EpsilonSpec,
    ETStatus,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.sim.events import Simulator
from repro.storage.kv import KeyValueStore


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _scheduler(table=CLASSIC_2PL, store=None, dc=None):
    sim = Simulator(seed=1)
    engine = dc or TwoPhaseLockingDC(table)
    sched = LocalScheduler(
        sim, engine, store or KeyValueStore({"x": 0, "y": 0})
    )
    return sim, sched


class TestBasicExecution:
    def test_single_update_commits(self):
        sim, sched = _scheduler()
        sched.submit(UpdateET([IncrementOp("x", 5)]))
        sim.run()
        assert sched.drained()
        assert sched.store.get("x") == 5
        assert sched.completed[0].status == ETStatus.COMMITTED

    def test_query_reads_committed_state(self):
        sim, sched = _scheduler(store=KeyValueStore({"x": 9}))
        results = []
        sched.submit(QueryET([ReadOp("x")]), results.append)
        sim.run()
        assert results[0].values == {"x": 9}

    def test_writes_invisible_until_commit(self):
        sim, sched = _scheduler(table=ORDUP_TABLE)
        # A slow update followed by a query that reads mid-update: the
        # query sees the pre-update value because effects land at
        # commit time (strict execution).
        sched.submit(UpdateET([IncrementOp("x", 5), IncrementOp("y", 5)]))
        results = []
        sched.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=5)),
            results.append,
        )
        sim.run()
        assert results[0].values["x"] in (0, 5)
        assert sched.store.get("x") == 5

    def test_operations_take_time(self):
        sim, sched = _scheduler()
        sched.submit(UpdateET([IncrementOp("x", 1), IncrementOp("y", 1)]))
        sim.run()
        assert sched.completed[0].latency == pytest.approx(1.0)


class TestBlockingByTable:
    def test_classic_2pl_serializes_conflicting_updates(self):
        sim, sched = _scheduler(CLASSIC_2PL)
        sched.submit(UpdateET([WriteOp("x", 1), WriteOp("y", 1)]))
        sched.submit(UpdateET([WriteOp("x", 2), WriteOp("y", 2)]))
        sim.run()
        assert sched.wait_count > 0
        assert sched.store.get("x") == sched.store.get("y")

    def test_commu_table_interleaves_commuting_updates(self):
        sim, sched = _scheduler(COMMU_TABLE)
        for i in range(5):
            sched.submit(UpdateET([IncrementOp("x", 1)]))
        sim.run()
        assert sched.wait_count == 0
        assert sched.store.get("x") == 5

    def test_commu_table_blocks_non_commuting(self):
        sim, sched = _scheduler(COMMU_TABLE)
        sched.submit(UpdateET([IncrementOp("x", 10)]))
        sched.submit(UpdateET([MultiplyOp("x", 2)]))
        sim.run()
        assert sched.wait_count > 0
        # Serialized: Inc then Mul -> 20 (submission order wins here
        # because the second blocks behind the first).
        assert sched.store.get("x") == 20

    def test_ordup_table_lets_queries_through_writes(self):
        sim, sched = _scheduler(ORDUP_TABLE)
        sched.submit(UpdateET([WriteOp("x", 1), WriteOp("y", 1)]))
        results = []
        sched.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=2)),
            results.append,
        )
        sim.run()
        assert results[0].status == ETStatus.COMMITTED
        assert results[0].inconsistency == 1

    def test_classic_table_blocks_queries_on_writes(self):
        sim, sched = _scheduler(CLASSIC_2PL)
        sched.submit(UpdateET([WriteOp("x", 1), WriteOp("y", 1)]))
        results = []
        sched.submit(QueryET([ReadOp("x")]), results.append)
        sim.run()
        assert results[0].waits > 0


class TestTimestampEngine:
    def test_rejected_et_restarts_and_commits(self):
        sim = Simulator(seed=1)
        dc = BasicTimestampDC()
        sched = LocalScheduler(sim, dc, KeyValueStore({"x": 0}))
        # Late-timestamped write racing an earlier one on the same key:
        # one of them gets rejected and must restart.
        sched.submit(UpdateET([ReadOp("x"), WriteOp("x", 1)]))
        sched.submit(UpdateET([ReadOp("x"), WriteOp("x", 2)]))
        sim.run()
        assert sched.drained()
        assert all(
            r.status == ETStatus.COMMITTED for r in sched.completed
        )

    def test_abort_limit_reported(self):
        sim = Simulator(seed=1)
        dc = BasicTimestampDC()
        sched = LocalScheduler(
            sim, dc, KeyValueStore({"x": 0}), max_restarts=0
        )
        sched.submit(UpdateET([ReadOp("x"), WriteOp("x", 1)]))
        sched.submit(UpdateET([ReadOp("x"), WriteOp("x", 2)]))
        sim.run()
        statuses = sorted(r.status for r in sched.completed)
        # With no restarts allowed, the loser stays aborted.
        assert ETStatus.COMMITTED in statuses


class TestConcurrencyComparison:
    def test_commu_beats_classic_on_commutative_load(self):
        """The dynamic version of Tables 2/3: same workload, different
        lock table, measurably different blocking."""

        def run(table):
            sim, sched = _scheduler(table)
            for i in range(8):
                sched.submit(UpdateET([IncrementOp("x", 1)]))
            sim.run()
            return sched.wait_count, max(
                r.finish_time for r in sched.completed
            )

        commu_waits, commu_span = run(COMMU_TABLE)
        classic_waits, classic_span = run(CLASSIC_2PL)
        assert commu_waits < classic_waits
        assert commu_span < classic_span


class TestSchedulerProperties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        amounts=st.lists(
            st.integers(min_value=1, max_value=9), min_size=1, max_size=10
        ),
        table_name=st.sampled_from(["classic", "ordup", "commu"]),
        stagger=st.floats(min_value=0.0, max_value=0.4),
    )
    def test_concurrent_increments_sum_under_any_table(
        self, amounts, table_name, stagger
    ):
        """Whatever the lock table, committed increments must sum — the
        scheduler may reorder or block, never lose or double-apply."""
        from repro.core.divergence import TwoPhaseLockingDC
        from repro.core.locks import CLASSIC_2PL, COMMU_TABLE, ORDUP_TABLE
        from repro.core.operations import IncrementOp
        from repro.core.scheduler import LocalScheduler
        from repro.core.transactions import UpdateET, reset_tid_counter
        from repro.sim.events import Simulator
        from repro.storage.kv import KeyValueStore

        table = {
            "classic": CLASSIC_2PL,
            "ordup": ORDUP_TABLE,
            "commu": COMMU_TABLE,
        }[table_name]
        reset_tid_counter()
        sim = Simulator(seed=1)
        sched = LocalScheduler(
            sim, TwoPhaseLockingDC(table), KeyValueStore({"x": 0})
        )
        for i, amount in enumerate(amounts):
            sim.schedule_at(
                i * stagger,
                lambda a=amount: sched.submit(UpdateET([IncrementOp("x", a)])),
            )
        sim.run()
        assert sched.drained()
        assert sched.store.get("x") == sum(amounts)


class TestDeadlockTimeout:
    def test_upgrade_deadlock_resolved_by_timeout(self):
        """Two read-modify-write ETs both hold read locks on the same
        key and spin on the write-lock upgrade — invisible to the
        waits-for detector under polling.  The wait timeout must break
        the cycle and both ETs must commit with no lost update."""
        sim, sched = _scheduler(CLASSIC_2PL)
        sched.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]))
        sched.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]))
        sim.run(max_events=100_000)
        assert sched.drained()
        assert sched.abort_count >= 1  # at least one timeout abort
        assert sched.store.get("x") == 2

    def test_wait_limit_configurable(self):
        from repro.core.divergence import TwoPhaseLockingDC
        from repro.sim.events import Simulator
        from repro.storage.kv import KeyValueStore

        sim = Simulator(seed=1)
        sched = LocalScheduler(
            sim,
            TwoPhaseLockingDC(CLASSIC_2PL),
            KeyValueStore({"x": 0}),
            wait_limit=3,
        )
        sched.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]))
        sched.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]))
        sim.run(max_events=100_000)
        assert sched.drained()
        assert sched.store.get("x") == 2
