"""Unit and property tests for the correctness checkers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import History
from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.serializability import (
    is_epsilon_serial,
    is_esr,
    is_one_copy_serializable,
    is_serial,
    is_serializable,
    is_serializable_bruteforce,
    merge_site_histories,
    query_overlaps,
    replicas_converged,
    serial_witness,
)
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)


@pytest.fixture(autouse=True)
def _fresh_tids():
    reset_tid_counter()


def _history(*events):
    h = History()
    for item in events:
        tid, op = item[0], item[1]
        time = item[2] if len(item) > 2 else 0.0
        h.record(tid, op, time=time)
    return h


class TestSR:
    def test_empty_history_is_sr(self):
        assert is_serializable(History())

    def test_serial_history_is_sr(self):
        h = _history(
            (1, WriteOp("a", 1)), (2, ReadOp("a")), (2, WriteOp("a", 2)),
        )
        assert is_serializable(h)

    def test_classic_non_sr_interleaving(self):
        # T1 reads a, T2 writes a and b, T1 reads b: T1 must be both
        # before and after T2.
        h = _history(
            (1, ReadOp("a")),
            (2, WriteOp("a", 2)),
            (2, WriteOp("b", 2)),
            (1, ReadOp("b")),
        )
        assert not is_serializable(h)

    def test_commutative_interleaving_is_sr(self):
        h = _history(
            (1, IncrementOp("a", 1)),
            (2, IncrementOp("a", 2)),
            (1, IncrementOp("b", 1)),
            (2, IncrementOp("b", 2)),
        )
        assert is_serializable(h)

    def test_witness_agrees_with_checker(self):
        h = _history(
            (1, WriteOp("a", 1)), (2, WriteOp("a", 2)), (3, ReadOp("a")),
        )
        witness = serial_witness(h)
        assert witness is not None
        assert witness.index(1) < witness.index(2)


class TestEpsilonSerial:
    def test_paper_log_one(self):
        """The worked example of section 2.1."""
        u1 = UpdateET([ReadOp("a"), WriteOp("b", 1)])
        u2 = UpdateET([WriteOp("b", 2), WriteOp("a", 2)])
        q3 = QueryET([ReadOp("a"), ReadOp("b")])
        h = History()
        for et in (u1, u2, q3):
            h.register(et)
        h.record(u1.tid, ReadOp("a"))
        h.record(u1.tid, WriteOp("b", 1))
        h.record(u2.tid, WriteOp("b", 2))
        h.record(q3.tid, ReadOp("a"))
        h.record(u2.tid, WriteOp("a", 2))
        h.record(q3.tid, ReadOp("b"))
        assert not is_serializable(h)
        assert is_epsilon_serial(h)
        assert is_esr(h)

    def test_non_sr_updates_fail_epsilon_serial(self):
        h = _history(
            (1, WriteOp("a", 1)), (2, WriteOp("a", 2)),
            (2, WriteOp("b", 2)), (1, WriteOp("b", 1)),
        )
        assert not is_epsilon_serial(h)

    def test_query_interleaving_never_breaks_epsilon_serial(self):
        h = _history(
            (1, WriteOp("a", 1)),
            (3, ReadOp("a")),
            (2, WriteOp("a", 2)),
            (3, ReadOp("a")),
        )
        assert is_epsilon_serial(h)


class TestBruteForceOracle:
    def test_agrees_on_small_examples(self):
        sr = _history((1, WriteOp("a", 1)), (2, ReadOp("a")))
        non_sr = _history(
            (1, ReadOp("a")), (2, WriteOp("a", 2)),
            (2, WriteOp("b", 2)), (1, ReadOp("b")),
        )
        assert is_serializable_bruteforce(sr) == is_serializable(sr)
        assert is_serializable_bruteforce(non_sr) == is_serializable(non_sr)

    def test_rejects_large_histories(self):
        h = _history(*[(i, ReadOp("a")) for i in range(1, 10)])
        with pytest.raises(ValueError):
            is_serializable_bruteforce(h)

    @settings(max_examples=120, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),
            st.sampled_from(["r", "w", "i"]),
            st.sampled_from(["a", "b"]),
        ),
        min_size=1,
        max_size=8,
    ))
    def test_graph_checker_matches_bruteforce(self, script):
        """Conflict-graph SR == exhaustive permutation SR.

        Note: for conflict-equivalence both notions coincide exactly;
        this is the core soundness/completeness property test.
        """
        h = History()
        for tid, kind, key in script:
            if kind == "r":
                h.record(tid, ReadOp(key))
            elif kind == "w":
                h.record(tid, WriteOp(key, tid))
            else:
                h.record(tid, IncrementOp(key, 1))
        assert is_serializable(h) == is_serializable_bruteforce(h)


class TestQueryOverlaps:
    def test_empty_overlap_for_isolated_query(self):
        h = _history(
            (1, WriteOp("a", 1), 0.0),
            (2, ReadOp("a"), 5.0),
        )
        assert query_overlaps(h) == {2: []}

    def test_concurrent_conflicting_update_in_overlap(self):
        h = _history(
            (2, ReadOp("a"), 0.0),
            (1, WriteOp("a", 1), 1.0),
            (2, ReadOp("b"), 2.0),
        )
        assert query_overlaps(h) == {2: [1]}

    def test_non_conflicting_concurrent_update_excluded(self):
        h = _history(
            (2, ReadOp("a"), 0.0),
            (1, WriteOp("z", 1), 1.0),
            (2, ReadOp("b"), 2.0),
        )
        assert query_overlaps(h) == {2: []}

    def test_overlap_counts_multiple_updates(self):
        h = _history(
            (3, ReadOp("a"), 0.0),
            (1, WriteOp("a", 1), 1.0),
            (2, WriteOp("a", 2), 2.0),
            (3, ReadOp("a"), 3.0),
        )
        assert query_overlaps(h)[3] == [1, 2]


class TestReplicaChecks:
    def test_converged_when_identical(self):
        assert replicas_converged(
            {"s0": {"a": 1, "b": 2}, "s1": {"a": 1, "b": 2}}
        )

    def test_not_converged_on_value_mismatch(self):
        assert not replicas_converged(
            {"s0": {"a": 1}, "s1": {"a": 2}}
        )

    def test_not_converged_on_missing_key(self):
        assert not replicas_converged(
            {"s0": {"a": 1, "b": 2}, "s1": {"a": 1}}
        )

    def test_tuples_converge_as_multisets(self):
        assert replicas_converged(
            {"s0": {"log": ("x", "y")}, "s1": {"log": ("y", "x")}}
        )

    def test_single_site_trivially_converged(self):
        assert replicas_converged({"s0": {"a": 1}})

    def test_one_copy_sr_same_order(self):
        h0 = _history((1, WriteOp("a", 1), 0.0), (2, WriteOp("a", 2), 1.0))
        h1 = _history((1, WriteOp("a", 1), 5.0), (2, WriteOp("a", 2), 6.0))
        assert is_one_copy_serializable({"s0": h0, "s1": h1})

    def test_one_copy_sr_fails_on_opposite_orders(self):
        h0 = _history((1, WriteOp("a", 1), 0.0), (2, WriteOp("a", 2), 1.0))
        h1 = _history((2, WriteOp("a", 2), 0.0), (1, WriteOp("a", 1), 1.0))
        assert not is_one_copy_serializable({"s0": h0, "s1": h1})

    def test_one_copy_sr_tolerates_time_skew(self):
        """Replicas applying the same serial order at different times
        must pass — the regression the union-graph fix addressed."""
        h0 = _history(
            (1, MultiplyOp("a", 2), 0.0), (2, IncrementOp("a", 1), 1.0),
        )
        h1 = _history(
            (1, MultiplyOp("a", 2), 10.0), (2, IncrementOp("a", 1), 11.0),
        )
        assert is_one_copy_serializable({"s0": h0, "s1": h1})

    def test_merge_site_histories_orders_by_time(self):
        h0 = _history((1, WriteOp("a", 1), 3.0))
        h1 = _history((2, WriteOp("a", 2), 1.0))
        merged = merge_site_histories({"s0": h0, "s1": h1})
        assert [ev.tid for ev in merged] == [2, 1]

    def test_merge_applies_key_map(self):
        h0 = _history((1, WriteOp("a@s0", 1), 0.0))
        merged = merge_site_histories({"s0": h0}, key_map={"a@s0": "a"})
        assert [ev.op.key for ev in merged] == ["a"]
