"""Tests for optimistic (validation-based) divergence control."""

import pytest

from repro.core.divergence import Admission, OptimisticDC
from repro.core.operations import IncrementOp, ReadOp, WriteOp
from repro.core.scheduler import LocalScheduler
from repro.core.transactions import (
    EpsilonSpec,
    ETStatus,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.sim.events import Simulator
from repro.storage.kv import KeyValueStore


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestEngine:
    def test_operations_always_admitted(self):
        dc = OptimisticDC()
        u = UpdateET([ReadOp("x"), WriteOp("x", 1)])
        dc.begin(u)
        assert dc.request(u, ReadOp("x")).admission is Admission.GRANT
        assert dc.request(u, WriteOp("x", 1)).admission is Admission.GRANT

    def test_clean_update_validates(self):
        dc = OptimisticDC()
        u = UpdateET([WriteOp("x", 1)])
        dc.begin(u)
        dc.request(u, WriteOp("x", 1))
        assert dc.validate(u)
        dc.commit(u)

    def test_stale_read_fails_update_validation(self):
        dc = OptimisticDC()
        reader = UpdateET([ReadOp("x"), WriteOp("y", 1)])
        writer = UpdateET([WriteOp("x", 2)])
        dc.begin(reader)
        dc.begin(writer)
        dc.request(reader, ReadOp("x"))
        dc.request(writer, WriteOp("x", 2))
        dc.validate(writer)
        dc.commit(writer)  # writer commits first
        assert not dc.validate(reader)  # reader's x is stale

    def test_disjoint_transactions_both_validate(self):
        dc = OptimisticDC()
        a = UpdateET([WriteOp("x", 1)])
        b = UpdateET([ReadOp("y"), WriteOp("y", 2)])
        dc.begin(a)
        dc.begin(b)
        dc.request(a, WriteOp("x", 1))
        dc.request(b, ReadOp("y"))
        dc.commit(a)
        assert dc.validate(b)

    def test_query_charges_instead_of_failing(self):
        dc = OptimisticDC()
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=1))
        writer = UpdateET([WriteOp("x", 2)])
        dc.begin(q)
        dc.begin(writer)
        dc.request(q, ReadOp("x"))
        dc.request(writer, WriteOp("x", 2))
        dc.commit(writer)
        assert dc.validate(q)  # charged, not refused
        assert dc.inconsistency_of(q.tid) == 1

    def test_exhausted_query_fails_validation(self):
        dc = OptimisticDC()
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        writer = UpdateET([WriteOp("x", 2)])
        dc.begin(q)
        dc.begin(writer)
        dc.request(q, ReadOp("x"))
        dc.request(writer, WriteOp("x", 2))
        dc.commit(writer)
        assert not dc.validate(q)

    def test_gc_retains_only_potentially_conflicting(self):
        dc = OptimisticDC()
        for i in range(5):
            u = UpdateET([WriteOp("x", i)])
            dc.begin(u)
            dc.request(u, WriteOp("x", i))
            dc.commit(u)
        assert dc.gc() == 0  # nothing active: all write-sets droppable
        late = QueryET([ReadOp("x")])
        dc.begin(late)
        u = UpdateET([WriteOp("x", 9)])
        dc.begin(u)
        dc.request(u, WriteOp("x", 9))
        dc.commit(u)
        assert dc.gc() == 1  # the one commit after the query began


class TestSchedulerIntegration:
    def _scheduler(self):
        sim = Simulator(seed=1)
        sched = LocalScheduler(
            sim, OptimisticDC(), KeyValueStore({"x": 0, "y": 0})
        )
        return sim, sched

    def test_conflicting_updates_serialize_via_restart(self):
        sim, sched = self._scheduler()
        # Two read-modify-write ETs race on x; the loser restarts and
        # re-reads, so no update is lost.
        sched.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]))
        sched.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]))
        sim.run()
        assert sched.drained()
        assert sched.abort_count >= 1
        assert sched.store.get("x") == 2

    def test_queries_never_force_update_restarts(self):
        sim, sched = self._scheduler()
        sched.submit(
            QueryET(
                [ReadOp("x"), ReadOp("y")], EpsilonSpec(import_limit=5)
            )
        )
        sched.submit(UpdateET([WriteOp("x", 7), WriteOp("y", 7)]))
        sim.run()
        assert sched.drained()
        statuses = [r.status for r in sched.completed]
        assert all(s == ETStatus.COMMITTED for s in statuses)

    def test_strict_query_restarts_until_consistent(self):
        sim, sched = self._scheduler()
        sched.submit(
            QueryET([ReadOp("x"), ReadOp("y")], EpsilonSpec(import_limit=0))
        )
        sched.submit(UpdateET([WriteOp("x", 7), WriteOp("y", 7)]))
        sim.run()
        assert sched.drained()
        query = [r for r in sched.completed if r.et.is_query][0]
        assert query.status == ETStatus.COMMITTED
        # After restarting past the update it reads a consistent pair.
        assert query.values in (
            {"x": 0, "y": 0}, {"x": 7, "y": 7},
        )
