"""Unit tests for online overlap tracking."""

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.overlap import OverlapTracker
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _update(*keys):
    return UpdateET([IncrementOp(k, 1) for k in keys])


def _query(*keys):
    return QueryET([ReadOp(k) for k in keys])


class TestOverlapDefinition:
    def test_update_active_at_query_start_included(self):
        tracker = OverlapTracker()
        u = _update("a")
        tracker.update_started(u)
        q = _query("a")
        record = tracker.query_started(q)
        assert record.members == {u.tid}

    def test_update_starting_during_query_included(self):
        tracker = OverlapTracker()
        q = _query("a")
        tracker.query_started(q)
        u = _update("a")
        tracker.update_started(u)
        assert tracker.current_overlap(q.tid) == 1

    def test_finished_update_excluded(self):
        tracker = OverlapTracker()
        u = _update("a")
        tracker.update_started(u)
        tracker.update_finished(u.tid)
        q = _query("a")
        record = tracker.query_started(q)
        assert record.members == set()

    def test_disjoint_keys_excluded(self):
        tracker = OverlapTracker()
        u = _update("z")
        tracker.update_started(u)
        q = _query("a")
        record = tracker.query_started(q)
        assert record.members == set()
        u2 = _update("w")
        tracker.update_started(u2)
        assert tracker.current_overlap(q.tid) == 0

    def test_empty_overlap_means_sr(self):
        """Paper: 'If a query ET's overlap is empty, then it is SR.'"""
        tracker = OverlapTracker()
        q = _query("a")
        record = tracker.query_started(q)
        tracker.query_finished(q.tid)
        assert record.size == 0


class TestLifecycle:
    def test_query_finished_archives_record(self):
        tracker = OverlapTracker()
        u = _update("a")
        tracker.update_started(u)
        q = _query("a")
        tracker.query_started(q)
        record = tracker.query_finished(q.tid)
        assert record is not None
        assert tracker.overlap_members(q.tid) == {u.tid}
        assert tracker.finished_records() == [record]

    def test_finish_unknown_query_returns_none(self):
        assert OverlapTracker().query_finished(99) is None

    def test_active_counts(self):
        tracker = OverlapTracker()
        tracker.update_started(_update("a"))
        tracker.query_started(_query("a"))
        assert tracker.active_update_count == 1
        assert tracker.active_query_count == 1

    def test_overlap_accumulates_multiple_updates(self):
        tracker = OverlapTracker()
        q = _query("a", "b")
        tracker.query_started(q)
        u1, u2, u3 = _update("a"), _update("b"), _update("c")
        for u in (u1, u2, u3):
            tracker.update_started(u)
        assert tracker.overlap_members(q.tid) == {u1.tid, u2.tid}
