"""Unit tests for inconsistency counters and lock-counter tables."""

import pytest

from repro.core.inconsistency import (
    EpsilonExceeded,
    InconsistencyCounter,
    LockCounterTable,
)
from repro.core.transactions import EpsilonSpec, UNLIMITED


class TestInconsistencyCounter:
    def test_charge_accumulates(self):
        counter = InconsistencyCounter(1, EpsilonSpec(import_limit=3))
        assert counter.charge() == 1
        assert counter.charge() == 2
        assert counter.value == 2

    def test_charge_at_limit_raises(self):
        counter = InconsistencyCounter(1, EpsilonSpec(import_limit=1))
        counter.charge()
        with pytest.raises(EpsilonExceeded):
            counter.charge()
        assert counter.value == 1  # unchanged after refusal

    def test_zero_limit_forbids_any_charge(self):
        counter = InconsistencyCounter(1, EpsilonSpec(import_limit=0))
        with pytest.raises(EpsilonExceeded):
            counter.charge()

    def test_unlimited_never_raises(self):
        counter = InconsistencyCounter(1, EpsilonSpec())
        for _ in range(1000):
            counter.charge()
        assert counter.value == 1000

    def test_sources_tracked(self):
        counter = InconsistencyCounter(1, EpsilonSpec(import_limit=5))
        counter.charge(source=7)
        counter.charge(source=9)
        assert counter.imported == {7, 9}

    def test_can_charge_and_exhausted(self):
        counter = InconsistencyCounter(1, EpsilonSpec(import_limit=2))
        assert counter.can_charge(2)
        assert not counter.can_charge(3)
        counter.charge(2)
        assert counter.exhausted

    def test_exception_carries_details(self):
        counter = InconsistencyCounter(42, EpsilonSpec(import_limit=0))
        with pytest.raises(EpsilonExceeded) as exc:
            counter.charge()
        assert exc.value.tid == 42
        assert exc.value.limit == 0


class TestLockCounterTable:
    def test_raise_and_count(self):
        table = LockCounterTable()
        assert table.count("x") == 0
        table.raise_for(1, "x")
        table.raise_for(2, "x")
        assert table.count("x") == 2

    def test_release_decrements_all_held(self):
        table = LockCounterTable()
        table.raise_for(1, "x")
        table.raise_for(1, "y")
        table.release(1)
        assert table.count("x") == 0 and table.count("y") == 0

    def test_release_only_own_raises(self):
        table = LockCounterTable()
        table.raise_for(1, "x")
        table.raise_for(2, "x")
        table.release(1)
        assert table.count("x") == 1

    def test_inconsistency_of_sums_counters(self):
        table = LockCounterTable()
        table.raise_for(1, "x")
        table.raise_for(2, "x")
        table.raise_for(3, "y")
        assert table.inconsistency_of(("x", "y")) == 3
        assert table.inconsistency_of(("x",)) == 2
        assert table.inconsistency_of(("z",)) == 0

    def test_exceeds_limit(self):
        table = LockCounterTable()
        table.raise_for(1, "x")
        assert table.exceeds("x", 1)
        assert not table.exceeds("x", 2)
        assert not table.exceeds("x", UNLIMITED)

    def test_saga_defers_release(self):
        """Section 4.2: counters stay raised for the whole saga."""
        table = LockCounterTable()
        table.raise_for(1, "x")
        table.enroll_in_saga("saga1", 1)
        table.release(1)  # deferred
        assert table.count("x") == 1
        table.end_saga("saga1")
        assert table.count("x") == 0

    def test_saga_releases_all_steps_together(self):
        table = LockCounterTable()
        for tid in (1, 2, 3):
            table.raise_for(tid, "x")
            table.enroll_in_saga("s", tid)
            table.release(tid)
        assert table.count("x") == 3
        table.end_saga("s")
        assert table.count("x") == 0

    def test_end_unknown_saga_is_noop(self):
        LockCounterTable().end_saga("nothing")
