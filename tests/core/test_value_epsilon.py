"""Tests for value-based epsilon specs (section 5.1 extension).

Besides counting conflicting updates, a query may bound the total
worst-case *value drift* it imports — the "data value changed
asynchronously" spatial-consistency criterion the paper relates to
interdependent data management and controlled inconsistency.
"""

import pytest

from repro.core.inconsistency import EpsilonExceeded, InconsistencyCounter
from repro.core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestValueDeltas:
    def test_increment_delta_is_amount(self):
        assert IncrementOp("x", 7).value_delta() == 7
        assert DecrementOp("x", 7).value_delta() == 7

    def test_multiply_delta_unknown(self):
        assert MultiplyOp("x", 2).value_delta() is None

    def test_write_delta_unknown(self):
        assert WriteOp("x", 5).value_delta() is None

    def test_read_delta_unknown(self):
        assert ReadOp("x").value_delta() is None

    def test_append_delta_is_one(self):
        assert AppendOp("x", "item").value_delta() == 1.0


class TestSpec:
    def test_value_limit_validated(self):
        with pytest.raises(ValueError):
            EpsilonSpec(value_limit=-1)

    def test_zero_value_limit_is_strict(self):
        assert EpsilonSpec(value_limit=0).is_strict

    def test_default_unlimited(self):
        assert EpsilonSpec().value_limit == UNLIMITED


class TestCounterValueBudget:
    def _counter(self, value_limit, import_limit=UNLIMITED):
        return InconsistencyCounter(
            1,
            EpsilonSpec(import_limit=import_limit, value_limit=value_limit),
        )

    def test_drift_accumulates(self):
        counter = self._counter(value_limit=100)
        counter.charge(1, source=7, drift=30.0)
        counter.charge(1, source=8, drift=40.0)
        assert counter.value_drift == pytest.approx(70.0)

    def test_drift_over_budget_raises(self):
        counter = self._counter(value_limit=50)
        counter.charge(1, source=7, drift=30.0)
        with pytest.raises(EpsilonExceeded):
            counter.charge(1, source=8, drift=40.0)
        assert counter.value_drift == pytest.approx(30.0)

    def test_unknown_drift_needs_unlimited_budget(self):
        limited = self._counter(value_limit=1000)
        assert not limited.can_charge(1, drift=None)
        unlimited = self._counter(value_limit=UNLIMITED)
        assert unlimited.can_charge(1, drift=None)

    def test_count_limit_still_enforced(self):
        counter = self._counter(value_limit=UNLIMITED, import_limit=1)
        counter.charge(1, source=7, drift=5.0)
        assert not counter.can_charge(1, drift=0.0)

    def test_exhausted_by_drift(self):
        counter = self._counter(value_limit=10)
        counter.charge(1, source=7, drift=10.0)
        assert counter.exhausted


class TestEndToEndValueBound:
    def _system(self):
        return ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(
                n_sites=3,
                seed=9,
                latency=UniformLatency(2.0, 5.0),
                initial=(("balance", 0),),
            ),
        )

    def test_query_drift_bounded(self):
        system = self._system()
        # Three concurrent deposits of 100 each.
        for i in range(3):
            system.submit_at(
                float(i) * 0.1,
                UpdateET([IncrementOp("balance", 100)]),
                "site%d" % i,
            )
        # The auditor tolerates at most 150 of drift: it may observe at
        # most one in-flight deposit.
        results = []
        system.submit_at(
            0.3,
            QueryET(
                [ReadOp("balance")],
                EpsilonSpec(value_limit=150),
            ),
            "site0",
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency <= 1

    def test_unlimited_value_budget_unchanged(self):
        system = self._system()
        for i in range(3):
            system.submit_at(
                float(i) * 0.1,
                UpdateET([IncrementOp("balance", 100)]),
                "site%d" % i,
            )
        system.submit_at(
            0.3,
            QueryET([ReadOp("balance")], EpsilonSpec()),
            "site0",
        )
        system.run_to_quiescence()
        assert system.converged()
