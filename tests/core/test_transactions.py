"""Unit tests for epsilon-transactions and their specs."""

import pytest

from repro.core.operations import IncrementOp, ReadOp, WriteOp
from repro.core.transactions import (
    EpsilonSpec,
    EpsilonTransaction,
    ETResult,
    ETStatus,
    QueryET,
    UNLIMITED,
    UpdateET,
    make_et,
    reset_tid_counter,
)


@pytest.fixture(autouse=True)
def _fresh_tids():
    reset_tid_counter()


class TestEpsilonSpec:
    def test_default_is_unlimited(self):
        spec = EpsilonSpec()
        assert spec.import_limit == UNLIMITED
        assert spec.export_limit == UNLIMITED
        assert not spec.is_strict

    def test_zero_is_strict(self):
        assert EpsilonSpec(import_limit=0).is_strict

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            EpsilonSpec(import_limit=-1)
        with pytest.raises(ValueError):
            EpsilonSpec(export_limit=-1)


class TestClassification:
    def test_reads_only_is_query(self):
        et = make_et([ReadOp("a"), ReadOp("b")])
        assert isinstance(et, QueryET)
        assert et.is_query and not et.is_update

    def test_any_write_makes_update(self):
        et = make_et([ReadOp("a"), IncrementOp("b", 1)])
        assert isinstance(et, UpdateET)
        assert et.is_update and not et.is_query

    def test_query_et_rejects_writes(self):
        with pytest.raises(ValueError):
            QueryET([WriteOp("a", 1)])

    def test_update_et_requires_a_write(self):
        with pytest.raises(ValueError):
            UpdateET([ReadOp("a")])

    def test_empty_et_rejected(self):
        with pytest.raises(ValueError):
            EpsilonTransaction(())


class TestKeySets:
    def test_read_write_sets(self):
        et = make_et([ReadOp("a"), IncrementOp("b", 1), ReadOp("c")])
        assert et.read_set == ("a", "c")
        assert et.write_set == ("b",)
        assert et.keys == ("a", "b", "c")

    def test_sets_deduplicate_in_order(self):
        et = make_et([ReadOp("a"), ReadOp("a"), ReadOp("b")])
        assert et.read_set == ("a", "b")

    def test_writes_and_reads_iterators(self):
        et = make_et([ReadOp("a"), IncrementOp("b", 1)])
        assert [op.key for op in et.reads()] == ["a"]
        assert [op.key for op in et.writes()] == ["b"]


class TestTids:
    def test_tids_are_unique_and_increasing(self):
        a = make_et([ReadOp("a")])
        b = make_et([ReadOp("a")])
        assert a.tid < b.tid

    def test_reset_restarts_numbering(self):
        first = make_et([ReadOp("a")]).tid
        reset_tid_counter()
        assert make_et([ReadOp("a")]).tid == first


class TestETResult:
    def test_latency(self):
        et = make_et([ReadOp("a")])
        result = ETResult(et, start_time=2.0, finish_time=5.5)
        assert result.latency == pytest.approx(3.5)

    def test_within_bound(self):
        et = make_et([ReadOp("a")], EpsilonSpec(import_limit=2))
        assert ETResult(et, inconsistency=2).within_bound
        assert not ETResult(et, inconsistency=3).within_bound

    def test_default_status_committed(self):
        et = make_et([ReadOp("a")])
        assert ETResult(et).status == ETStatus.COMMITTED
