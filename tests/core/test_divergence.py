"""Unit tests for divergence control engines."""

import pytest

from repro.core.divergence import (
    Admission,
    BasicTimestampDC,
    TwoPhaseLockingDC,
    VTNCDC,
)
from repro.core.locks import CLASSIC_2PL, COMMU_TABLE, ORDUP_TABLE
from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UpdateET,
    reset_tid_counter,
)


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestTwoPhaseLockingDC:
    def test_classic_blocks_query_on_write(self):
        dc = TwoPhaseLockingDC(CLASSIC_2PL)
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")])
        dc.begin(u)
        dc.begin(q)
        assert dc.request(u, WriteOp("x", 1)).granted
        decision = dc.request(q, ReadOp("x"))
        assert decision.admission is Admission.WAIT
        assert decision.blocker == u.tid

    def test_ordup_admits_query_with_charge(self):
        dc = TwoPhaseLockingDC(ORDUP_TABLE)
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=2))
        dc.begin(u)
        dc.begin(q)
        dc.request(u, WriteOp("x", 1))
        decision = dc.request(q, ReadOp("x"))
        assert decision.admission is Admission.GRANT_CHARGE
        assert dc.inconsistency_of(q.tid) == 1

    def test_exhausted_query_waits(self):
        dc = TwoPhaseLockingDC(ORDUP_TABLE)
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        dc.begin(u)
        dc.begin(q)
        dc.request(u, WriteOp("x", 1))
        decision = dc.request(q, ReadOp("x"))
        assert decision.admission is Admission.WAIT
        assert dc.inconsistency_of(q.tid) == 0

    def test_wait_then_proceed_after_commit(self):
        dc = TwoPhaseLockingDC(ORDUP_TABLE)
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        dc.begin(u)
        dc.begin(q)
        dc.request(u, WriteOp("x", 1))
        assert dc.request(q, ReadOp("x")).admission is Admission.WAIT
        dc.commit(u)
        assert dc.request(q, ReadOp("x")).granted

    def test_same_source_not_double_charged(self):
        dc = TwoPhaseLockingDC(ORDUP_TABLE)
        u = UpdateET([WriteOp("x", 1), WriteOp("y", 1)])
        q = QueryET([ReadOp("x"), ReadOp("y")], EpsilonSpec(import_limit=1))
        dc.begin(u)
        dc.begin(q)
        dc.request(u, WriteOp("x", 1))
        dc.request(u, WriteOp("y", 1))
        assert dc.request(q, ReadOp("x")).granted
        assert dc.request(q, ReadOp("y")).granted  # same source: u
        assert dc.inconsistency_of(q.tid) == 1

    def test_commu_table_interleaves_commutative_updates(self):
        dc = TwoPhaseLockingDC(COMMU_TABLE)
        u1 = UpdateET([IncrementOp("x", 1)])
        u2 = UpdateET([IncrementOp("x", 2)])
        dc.begin(u1)
        dc.begin(u2)
        assert dc.request(u1, IncrementOp("x", 1)).granted
        assert dc.request(u2, IncrementOp("x", 2)).granted

    def test_commu_table_blocks_non_commutative(self):
        dc = TwoPhaseLockingDC(COMMU_TABLE)
        u1 = UpdateET([IncrementOp("x", 1)])
        u2 = UpdateET([MultiplyOp("x", 2)])
        dc.begin(u1)
        dc.begin(u2)
        assert dc.request(u1, IncrementOp("x", 1)).granted
        assert dc.request(u2, MultiplyOp("x", 2)).admission is Admission.WAIT


class TestBasicTimestampDC:
    def test_in_order_updates_granted(self):
        dc = BasicTimestampDC()
        u1 = UpdateET([WriteOp("x", 1)])
        u2 = UpdateET([WriteOp("x", 2)])
        dc.begin(u1, timestamp=1)
        dc.begin(u2, timestamp=2)
        assert dc.request(u1, WriteOp("x", 1)).granted
        assert dc.request(u2, WriteOp("x", 2)).granted

    def test_out_of_order_write_rejected(self):
        dc = BasicTimestampDC()
        u1 = UpdateET([WriteOp("x", 1)])
        u2 = UpdateET([WriteOp("x", 2)])
        dc.begin(u1, timestamp=5)
        dc.begin(u2, timestamp=2)
        dc.request(u1, WriteOp("x", 1))
        assert dc.request(u2, WriteOp("x", 2)).admission is Admission.REJECT

    def test_out_of_order_update_read_rejected(self):
        dc = BasicTimestampDC()
        u1 = UpdateET([WriteOp("x", 1)])
        u2 = UpdateET([ReadOp("x"), WriteOp("y", 1)])
        dc.begin(u1, timestamp=5)
        dc.begin(u2, timestamp=2)
        dc.request(u1, WriteOp("x", 1))
        assert dc.request(u2, ReadOp("x")).admission is Admission.REJECT

    def test_late_query_read_charges(self):
        dc = BasicTimestampDC()
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=1))
        dc.begin(u, timestamp=5)
        dc.begin(q, timestamp=2)
        dc.request(u, WriteOp("x", 1))
        decision = dc.request(q, ReadOp("x"))
        assert decision.admission is Admission.GRANT_CHARGE
        assert dc.inconsistency_of(q.tid) == 1

    def test_exhausted_query_waits_for_order(self):
        dc = BasicTimestampDC()
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        dc.begin(u, timestamp=5)
        dc.begin(q, timestamp=2)
        dc.request(u, WriteOp("x", 1))
        assert dc.request(q, ReadOp("x")).admission is Admission.WAIT

    def test_in_order_query_free(self):
        dc = BasicTimestampDC()
        u = UpdateET([WriteOp("x", 1)])
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        dc.begin(u, timestamp=1)
        dc.begin(q, timestamp=5)
        dc.request(u, WriteOp("x", 1))
        assert dc.request(q, ReadOp("x")).admission is Admission.GRANT


class TestVTNCDC:
    def test_visible_version_free(self):
        dc = VTNCDC()
        dc.advance(5)
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        dc.begin(q)
        assert dc.admit_version(q, 3).admission is Admission.GRANT

    def test_unstable_version_charges(self):
        dc = VTNCDC()
        dc.advance(2)
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=1))
        dc.begin(q)
        decision = dc.admit_version(q, 5, writer=77)
        assert decision.admission is Admission.GRANT_CHARGE
        assert dc.counter_of(q.tid).imported == {77}

    def test_exhausted_query_must_fall_back(self):
        dc = VTNCDC()
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        dc.begin(q)
        assert dc.admit_version(q, 5).admission is Admission.WAIT

    def test_vtnc_monotone(self):
        dc = VTNCDC()
        dc.advance(5)
        dc.advance(3)
        assert dc.vtnc == 5

    def test_request_not_supported(self):
        dc = VTNCDC()
        q = QueryET([ReadOp("x")])
        with pytest.raises(NotImplementedError):
            dc.request(q, ReadOp("x"))
