"""Unit tests for histories and serialization graphs."""

import pytest

from repro.core.history import Event, History, SerializationGraph
from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)


@pytest.fixture(autouse=True)
def _fresh_tids():
    reset_tid_counter()


class TestSerializationGraph:
    def test_empty_graph_is_acyclic(self):
        assert SerializationGraph().is_acyclic()

    def test_single_edge_acyclic(self):
        g = SerializationGraph()
        g.add_edge(1, 2)
        assert g.is_acyclic()

    def test_two_cycle_detected(self):
        g = SerializationGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert not g.is_acyclic()

    def test_long_cycle_detected(self):
        g = SerializationGraph()
        for a, b in [(1, 2), (2, 3), (3, 4), (4, 1)]:
            g.add_edge(a, b)
        assert not g.is_acyclic()

    def test_self_edges_ignored(self):
        g = SerializationGraph()
        g.add_edge(1, 1)
        assert g.is_acyclic()
        assert not g.has_edge(1, 1)

    def test_topological_order_respects_edges(self):
        g = SerializationGraph()
        g.add_edge(3, 1)
        g.add_edge(1, 2)
        order = g.topological_order()
        assert order.index(3) < order.index(1) < order.index(2)

    def test_topological_order_none_on_cycle(self):
        g = SerializationGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.topological_order() is None

    def test_topological_order_deterministic(self):
        g = SerializationGraph()
        for n in (5, 3, 1, 4, 2):
            g.add_node(n)
        assert g.topological_order() == [1, 2, 3, 4, 5]


def _history(*events):
    h = History()
    for tid, op in events:
        h.record(tid, op)
    return h


class TestHistoryBasics:
    def test_len_and_iteration(self):
        h = _history((1, ReadOp("a")), (2, WriteOp("a", 1)))
        assert len(h) == 2
        assert [ev.tid for ev in h] == [1, 2]

    def test_tids_first_appearance_order(self):
        h = _history((2, ReadOp("a")), (1, ReadOp("b")), (2, ReadOp("c")))
        assert h.tids == [2, 1]

    def test_operations_of(self):
        h = _history((1, ReadOp("a")), (2, WriteOp("a", 1)), (1, ReadOp("b")))
        assert [op.key for op in h.operations_of(1)] == ["a", "b"]

    def test_is_serial_true_for_consecutive(self):
        h = _history(
            (1, ReadOp("a")), (1, WriteOp("a", 1)),
            (2, ReadOp("a")), (2, WriteOp("a", 2)),
        )
        assert h.is_serial()

    def test_is_serial_false_for_interleaved(self):
        h = _history(
            (1, ReadOp("a")), (2, ReadOp("a")), (1, WriteOp("a", 1)),
        )
        assert not h.is_serial()


class TestClassificationAndProjection:
    def test_classification_by_logged_ops(self):
        h = _history((1, ReadOp("a")), (2, WriteOp("a", 1)))
        assert h.query_tids() == [1]
        assert h.update_tids() == [2]

    def test_classification_by_registered_et(self):
        # An update ET whose logged ops at this site happen to be reads
        # must still classify as an update.
        et = UpdateET([ReadOp("a"), WriteOp("b", 1)])
        h = History()
        h.register(et)
        h.record(et.tid, ReadOp("a"))
        assert h.update_tids() == [et.tid]

    def test_without_queries_removes_query_events(self):
        h = _history(
            (1, ReadOp("a")), (2, WriteOp("a", 1)), (1, ReadOp("b")),
        )
        projected = h.without_queries()
        assert [ev.tid for ev in projected] == [2]

    def test_project_keeps_registered_ets(self):
        et = UpdateET([WriteOp("a", 1)])
        h = History()
        h.record(et.tid, WriteOp("a", 1), et=et)
        sub = h.project([et.tid])
        assert sub.update_tids() == [et.tid]


class TestConflictPairs:
    def test_rw_conflict_detected(self):
        h = _history((1, ReadOp("a")), (2, WriteOp("a", 1)))
        pairs = h.conflict_pairs()
        assert len(pairs) == 1
        assert pairs[0][0].tid == 1 and pairs[0][1].tid == 2

    def test_commuting_writes_no_conflict(self):
        h = _history((1, IncrementOp("a", 1)), (2, IncrementOp("a", 2)))
        assert h.conflict_pairs() == []

    def test_non_commuting_writes_conflict(self):
        h = _history((1, IncrementOp("a", 1)), (2, MultiplyOp("a", 2)))
        assert len(h.conflict_pairs()) == 1

    def test_same_transaction_never_conflicts_with_itself(self):
        h = _history((1, WriteOp("a", 1)), (1, ReadOp("a")))
        assert h.conflict_pairs() == []

    def test_different_keys_no_conflict(self):
        h = _history((1, WriteOp("a", 1)), (2, WriteOp("b", 2)))
        assert h.conflict_pairs() == []


class TestSerializationGraphFromHistory:
    def test_acyclic_for_serial_history(self):
        h = _history(
            (1, WriteOp("a", 1)), (1, WriteOp("b", 1)),
            (2, WriteOp("a", 2)), (2, WriteOp("b", 2)),
        )
        assert h.serialization_graph().is_acyclic()

    def test_cycle_for_write_inversion(self):
        h = _history(
            (1, WriteOp("a", 1)), (2, WriteOp("a", 2)),
            (2, WriteOp("b", 2)), (1, WriteOp("b", 1)),
        )
        assert not h.serialization_graph().is_acyclic()
