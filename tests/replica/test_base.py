"""Unit tests for the replica control framework (system assembly)."""

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import (
    ReplicatedSystem,
    SiteExecutor,
    SystemConfig,
)
from repro.replica.commu import CommutativeOperations
from repro.sim.events import Simulator
from repro.sim.site import Site


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestSystemConfig:
    def test_site_names(self):
        assert SystemConfig(n_sites=3).site_names() == [
            "site0", "site1", "site2",
        ]

    def test_initial_values_loaded_everywhere(self):
        system = ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(n_sites=2, initial=(("a", 7),)),
        )
        for site in system.sites.values():
            assert site.store.get("a") == 7


class TestMesh:
    def test_full_mesh_of_queues(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=3)
        )
        assert len(system.queues) == 6  # 3 * 2 directed channels

    def test_submit_unknown_site_raises(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        with pytest.raises(KeyError):
            system.submit(UpdateET([IncrementOp("a", 1)]), "nowhere")

    def test_results_collected(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        system.submit(UpdateET([IncrementOp("a", 1)]), "site0")
        system.run_to_quiescence()
        assert len(system.results) == 1

    def test_submit_at_schedules(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        system.submit_at(5.0, UpdateET([IncrementOp("a", 1)]), "site0")
        system.run(until=1.0)
        assert not system.results
        system.run_to_quiescence()
        assert len(system.results) == 1
        assert system.results[0].start_time >= 5.0

    def test_default_site_is_first(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        system.submit(QueryET([ReadOp("a")]))
        system.run_to_quiescence()
        assert system.results[0].site == "site0"

    def test_origin_site_respected(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        system.submit(QueryET([ReadOp("a")], origin_site="site1"))
        system.run_to_quiescence()
        assert system.results[0].site == "site1"


class TestSiteExecutor:
    def _rig(self):
        sim = Simulator(seed=1)
        site = Site("s", sim)
        return sim, site, SiteExecutor(sim, site)

    def test_tasks_run_serially(self):
        sim, site, ex = self._rig()
        done = []
        ex.submit(1.0, lambda: done.append(sim.now))
        ex.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0]

    def test_submit_front_jumps_queue(self):
        sim, site, ex = self._rig()
        done = []
        ex.submit(1.0, lambda: done.append("a"))
        ex.submit(1.0, lambda: done.append("b"))
        ex.submit_front(1.0, lambda: done.append("front"))
        sim.run()
        # "a" is already running; "front" beats "b".
        assert done == ["a", "front", "b"]

    def test_backlog_and_idle(self):
        sim, site, ex = self._rig()
        assert ex.idle()
        ex.submit(1.0, lambda: None)
        assert ex.backlog == 1
        sim.run()
        assert ex.idle()

    def test_crash_interrupts_and_recovery_restarts(self):
        sim, site, ex = self._rig()
        done = []
        ex.submit(5.0, lambda: done.append(sim.now))
        sim.schedule(2.0, site.crash)
        sim.schedule(10.0, site.recover)
        sim.run()
        # Task restarted from scratch at recovery: 10 + 5.
        assert done == [15.0]

    def test_crash_before_any_task(self):
        sim, site, ex = self._rig()
        site.crash()
        done = []
        ex.submit(1.0, lambda: done.append(1))
        sim.run()
        assert done == []
        site.recover()
        sim.run()
        assert done == [1]


class TestQuiescenceAndConvergence:
    def test_empty_system_quiesces_immediately(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        assert system.run_to_quiescence() == 0.0
        assert system.converged()

    def test_convergence_after_updates(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=3, seed=2)
        )
        for i in range(5):
            system.submit(
                UpdateET([IncrementOp("a", i + 1)]), "site%d" % (i % 3)
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("a") == 15

    def test_global_history_merges_sites(self):
        system = ReplicatedSystem(
            CommutativeOperations(), SystemConfig(n_sites=2)
        )
        system.submit(UpdateET([IncrementOp("a", 1)]), "site0")
        system.run_to_quiescence()
        merged = system.global_history()
        # One apply event per replica.
        assert len(merged) == 2
