"""Tests for update-side export limiting in COMMU (section 3.2).

"Alternatively, we can limit the update ETs in addition to query ETs"
— an update ET with a finite ``export_limit`` defers while more than
that many live queries overlap its write set.
"""

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.sim.network import ConstantLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system():
    return ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(
            n_sites=2,
            seed=1,
            latency=ConstantLatency(1.0),
            initial=(("x", 0), ("y", 0)),
        ),
    )


class TestExportLimit:
    def test_update_defers_while_queries_active(self):
        system = _system()
        # A long query (3 reads at 0.5 each) over x.
        system.submit(
            QueryET(
                [ReadOp("x"), ReadOp("y"), ReadOp("x")],
                EpsilonSpec(import_limit=UNLIMITED),
            ),
            "site0",
        )
        # An export-0 update on x must wait for the query to finish.
        system.submit(
            UpdateET(
                [IncrementOp("x", 5)], EpsilonSpec(export_limit=0)
            ),
            "site0",
        )
        assert len(system.results) == 0  # update throttled, query running
        system.run_to_quiescence()
        update = [r for r in system.results if r.et.is_update][0]
        query = [r for r in system.results if r.et.is_query][0]
        # The update committed only after the query left the system.
        assert update.finish_time >= query.finish_time
        assert query.inconsistency == 0  # nothing was exported to it

    def test_unlimited_export_commits_immediately(self):
        system = _system()
        system.submit(QueryET([ReadOp("x")]), "site0")
        system.submit(UpdateET([IncrementOp("x", 5)]), "site0")
        update = [r for r in system.results if r.et.is_update]
        assert len(update) == 1  # committed synchronously at submit

    def test_disjoint_query_does_not_defer(self):
        system = _system()
        system.submit(QueryET([ReadOp("y"), ReadOp("y")]), "site0")
        system.submit(
            UpdateET([IncrementOp("x", 5)], EpsilonSpec(export_limit=0)),
            "site0",
        )
        update = [r for r in system.results if r.et.is_update]
        assert len(update) == 1

    def test_export_limit_one_tolerates_one_query(self):
        system = _system()
        system.submit(QueryET([ReadOp("x"), ReadOp("x")]), "site0")
        system.submit(
            UpdateET([IncrementOp("x", 5)], EpsilonSpec(export_limit=1)),
            "site0",
        )
        update = [r for r in system.results if r.et.is_update]
        assert len(update) == 1  # one exposed query is within budget

    def test_system_converges_with_export_limits(self):
        system = _system()
        for i in range(4):
            system.submit_at(
                i * 0.5, QueryET([ReadOp("x")]), "site%d" % (i % 2)
            )
            system.submit_at(
                i * 0.5 + 0.1,
                UpdateET(
                    [IncrementOp("x", 1)], EpsilonSpec(export_limit=1)
                ),
                "site%d" % (i % 2),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("x") == 4
