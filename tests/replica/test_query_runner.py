"""Direct unit tests for the shared QueryRunner."""

import pytest

from repro.core.operations import ReadOp
from repro.core.transactions import (
    ETStatus,
    QueryET,
    reset_tid_counter,
)
from repro.replica.base import QueryRunner, ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _rig():
    system = ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(n_sites=1, seed=1, initial=(("a", 10), ("b", 20))),
    )
    return system, system.sites["site0"]


def _runner(system, site, et, admit, **kw):
    done = []
    runner = QueryRunner(
        system,
        et,
        site,
        admit,
        done.append,
        inconsistency_of=lambda: 0,
        overlap_of=lambda: (),
        **kw,
    )
    return runner, done


class TestHappyPath:
    def test_reads_all_keys_in_order(self):
        system, site = _rig()
        et = QueryET([ReadOp("a"), ReadOp("b")])
        order = []

        def admit(key):
            def read():
                order.append(key)
                return site.read(et.tid, key)

            return True, read

        runner, done = _runner(system, site, et, admit)
        runner.start()
        system.sim.run()
        assert order == ["a", "b"]
        assert done[0].values == {"a": 10, "b": 20}
        assert done[0].status == ETStatus.COMMITTED

    def test_reads_take_time(self):
        system, site = _rig()
        et = QueryET([ReadOp("a"), ReadOp("b")])

        def admit(key):
            return True, lambda: site.read(et.tid, key)

        runner, done = _runner(system, site, et, admit)
        runner.start()
        system.sim.run()
        assert done[0].latency == pytest.approx(
            2 * site.config.read_time
        )


class TestBlockingModes:
    def test_retry_mode_counts_waits(self):
        system, site = _rig()
        et = QueryET([ReadOp("a")])
        gate = [False]

        def admit(key):
            if not gate[0]:
                return False, None
            return True, lambda: site.read(et.tid, key)

        runner, done = _runner(system, site, et, admit)
        runner.start()
        system.sim.schedule(1.0, lambda: gate.__setitem__(0, True))
        system.sim.run()
        assert done[0].status == ETStatus.COMMITTED
        assert done[0].waits >= 1

    def test_restart_mode_rereads_from_scratch(self):
        system, site = _rig()
        et = QueryET([ReadOp("a"), ReadOp("b")])
        reads = []
        block_second_once = [True]
        restarts = []

        def admit(key):
            if key == "b" and block_second_once[0]:
                block_second_once[0] = False
                return False, None

            def read():
                reads.append(key)
                return site.read(et.tid, key)

            return True, read

        runner, done = _runner(
            system, site, et, admit,
            restart_on_block=True,
            on_restart=lambda: restarts.append(system.sim.now),
        )
        runner.start()
        system.sim.run()
        # "a" was read, then the blocked "b" discarded it; both were
        # re-read after the restart.
        assert reads == ["a", "a", "b"]
        assert restarts
        assert done[0].values == {"a": 10, "b": 20}


class TestCrashHandling:
    def test_crash_before_read_aborts(self):
        system, site = _rig()
        et = QueryET([ReadOp("a")])

        def admit(key):
            return True, lambda: site.read(et.tid, key)

        runner, done = _runner(system, site, et, admit)
        site.crash()
        runner.start()
        system.sim.run()
        assert done[0].status == ETStatus.ABORTED

    def test_crash_mid_read_aborts(self):
        system, site = _rig()
        et = QueryET([ReadOp("a"), ReadOp("b")])

        def admit(key):
            return True, lambda: site.read(et.tid, key)

        runner, done = _runner(system, site, et, admit)
        runner.start()
        system.sim.schedule(
            site.config.read_time * 1.5, site.crash
        )
        system.sim.run()
        assert done[0].status == ETStatus.ABORTED
