"""Tests for offline partition-log merging (section 5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operations import (
    DecrementOp,
    IncrementOp,
    MultiplyOp,
    TimestampedWriteOp,
    WriteOp,
)
from repro.replica.merge import (
    LoggedOp,
    MergeResult,
    apply_merged,
    merge_partition_logs,
)
from repro.storage.kv import KeyValueStore


class TestCleanMerges:
    def test_commutative_logs_merge_cleanly(self):
        log_a = [LoggedOp(1, IncrementOp("x", 5))]
        log_b = [LoggedOp(2, IncrementOp("x", 3))]
        result = merge_partition_logs(log_a, log_b)
        assert result.merged_cleanly
        store = apply_merged(KeyValueStore({"x": 0}), result)
        assert store.get("x") == 8

    def test_disjoint_keys_merge_cleanly(self):
        log_a = [LoggedOp(1, WriteOp("x", 1))]
        log_b = [LoggedOp(2, WriteOp("y", 2))]
        result = merge_partition_logs(log_a, log_b)
        assert result.merged_cleanly
        store = apply_merged(KeyValueStore(), result)
        assert store.get("x") == 1 and store.get("y") == 2

    def test_timestamped_overwrites_merge_by_thomas_rule(self):
        log_a = [LoggedOp(1, TimestampedWriteOp("x", "a", (5, 0)))]
        log_b = [LoggedOp(2, TimestampedWriteOp("x", "b", (3, 1)))]
        result = merge_partition_logs(log_a, log_b)
        assert result.merged_cleanly
        store = apply_merged(KeyValueStore(), result)
        assert store.get("x") == "a"  # newer stamp wins either order

    def test_empty_logs(self):
        result = merge_partition_logs([], [])
        assert result.merged_cleanly
        assert result.schedule == []


class TestConflictsAndBackouts:
    def test_non_commuting_cross_ops_conflict(self):
        log_a = [LoggedOp(1, IncrementOp("x", 10))]
        log_b = [LoggedOp(2, MultiplyOp("x", 2))]
        result = merge_partition_logs(log_a, log_b)
        assert not result.merged_cleanly
        assert result.cross_conflicts == [(1, 2)]
        assert len(result.backed_out) == 1

    def test_backout_minimizes_victims(self):
        """One multiplier against three increments: back out the one."""
        log_a = [
            LoggedOp(1, IncrementOp("x", 1)),
            LoggedOp(2, IncrementOp("x", 2)),
            LoggedOp(3, IncrementOp("x", 3)),
        ]
        log_b = [LoggedOp(9, MultiplyOp("x", 2))]
        result = merge_partition_logs(log_a, log_b)
        assert result.backed_out == {9}
        store = apply_merged(KeyValueStore({"x": 0}), result)
        assert store.get("x") == 6

    def test_surviving_schedule_order_independent(self):
        """After backout every cross pair commutes: A-then-B equals
        B-then-A up to the commutativity of the survivors."""
        log_a = [LoggedOp(1, IncrementOp("x", 5))]
        log_b = [
            LoggedOp(2, MultiplyOp("x", 3)),
            LoggedOp(3, IncrementOp("x", 7)),
        ]
        result = merge_partition_logs(log_a, log_b)
        # The multiplier conflicts with both increments; it is the
        # single victim.
        assert result.backed_out == {2}
        store = apply_merged(KeyValueStore({"x": 0}), result)
        assert store.get("x") == 12

    def test_within_partition_conflicts_are_fine(self):
        """Each partition was internally SR; only cross pairs matter."""
        log_a = [
            LoggedOp(1, IncrementOp("x", 10)),
            LoggedOp(2, MultiplyOp("x", 2)),  # conflicts with 1, same side
        ]
        log_b = [LoggedOp(3, IncrementOp("y", 1))]
        result = merge_partition_logs(log_a, log_b)
        assert result.merged_cleanly
        store = apply_merged(KeyValueStore({"x": 0, "y": 0}), result)
        assert store.get("x") == 20  # A's order preserved

    def test_shared_transaction_rejected(self):
        log_a = [LoggedOp(1, IncrementOp("x", 1))]
        log_b = [LoggedOp(1, IncrementOp("x", 1))]
        with pytest.raises(ValueError):
            merge_partition_logs(log_a, log_b)

    def test_ops_examined_counts_work(self):
        log_a = [LoggedOp(1, IncrementOp("x", 1))] * 1
        log_b = [LoggedOp(2, IncrementOp("x", 1)), LoggedOp(2, IncrementOp("y", 1))]
        result = merge_partition_logs(log_a, log_b)
        assert result.ops_examined == 2


class TestMergeProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        a_ops=st.lists(
            st.tuples(
                st.sampled_from(["inc", "dec"]),
                st.sampled_from(["x", "y"]),
                st.integers(min_value=1, max_value=9),
            ),
            max_size=6,
        ),
        b_ops=st.lists(
            st.tuples(
                st.sampled_from(["inc", "dec"]),
                st.sampled_from(["x", "y"]),
                st.integers(min_value=1, max_value=9),
            ),
            max_size=6,
        ),
    )
    def test_commutative_merges_are_order_symmetric(self, a_ops, b_ops):
        def build(ops, base_tid):
            out = []
            for i, (kind, key, amount) in enumerate(ops):
                op = (
                    IncrementOp(key, amount)
                    if kind == "inc"
                    else DecrementOp(key, amount)
                )
                out.append(LoggedOp(base_tid + i, op))
            return out

        log_a = build(a_ops, 100)
        log_b = build(b_ops, 200)
        ab = merge_partition_logs(log_a, log_b)
        ba = merge_partition_logs(log_b, log_a)
        assert ab.merged_cleanly and ba.merged_cleanly
        store_ab = apply_merged(KeyValueStore({"x": 0, "y": 0}), ab)
        store_ba = apply_merged(KeyValueStore({"x": 0, "y": 0}), ba)
        assert store_ab.as_dict() == store_ba.as_dict()

    @settings(max_examples=40, deadline=None)
    @given(
        stamps_a=st.lists(
            st.integers(min_value=1, max_value=50), max_size=5,
            unique=True,
        ),
        stamps_b=st.lists(
            st.integers(min_value=51, max_value=100), max_size=5,
            unique=True,
        ),
    )
    def test_timestamped_merge_picks_global_newest(self, stamps_a, stamps_b):
        log_a = [
            LoggedOp(100 + i, TimestampedWriteOp("k", s, (s, 0)))
            for i, s in enumerate(stamps_a)
        ]
        log_b = [
            LoggedOp(200 + i, TimestampedWriteOp("k", s, (s, 1)))
            for i, s in enumerate(stamps_b)
        ]
        result = merge_partition_logs(log_a, log_b)
        assert result.merged_cleanly
        store = apply_merged(KeyValueStore(), result)
        all_stamps = stamps_a + stamps_b
        if all_stamps:
            assert store.get("k") == max(all_stamps)
