"""Unit tests for MSets and the shared method runtime."""

import pytest

from repro.core.operations import IncrementOp, ReadOp, WriteOp
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.common import MethodRuntime
from repro.replica.mset import MSet, MSetKind


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


class TestMSet:
    def test_keys_deduplicated_in_order(self):
        mset = MSet(
            1,
            MSetKind.UPDATE,
            (IncrementOp("b", 1), IncrementOp("a", 1), IncrementOp("b", 2)),
        )
        assert mset.keys == ("b", "a")

    def test_info_lookup(self):
        mset = MSet(1, MSetKind.VOTE, info=(("yes", True), ("n", 3)))
        assert mset.get_info("yes") is True
        assert mset.get_info("n") == 3
        assert mset.get_info("missing", "dflt") == "dflt"

    def test_frozen(self):
        mset = MSet(1)
        with pytest.raises(Exception):
            mset.tid = 2  # type: ignore[misc]


class TestMethodRuntimeLifecycles:
    def test_update_countdown(self):
        runtime = MethodRuntime(3)
        et = UpdateET([IncrementOp("x", 1)])
        runtime.update_submitted(et)
        assert runtime.in_flight_updates() == 1
        assert not runtime.update_applied_at_site(et.tid)
        assert not runtime.update_applied_at_site(et.tid)
        assert runtime.update_applied_at_site(et.tid)  # third copy
        assert runtime.in_flight_updates() == 0

    def test_explicit_copies(self):
        runtime = MethodRuntime(3)
        et = UpdateET([IncrementOp("x", 1)])
        runtime.update_submitted(et, copies=1)
        assert runtime.update_applied_at_site(et.tid)

    def test_unknown_tid_is_complete(self):
        runtime = MethodRuntime(3)
        assert runtime.update_applied_at_site(999)

    def test_completion_hook_fires_once(self):
        runtime = MethodRuntime(2)
        et = UpdateET([IncrementOp("x", 1)])
        runtime.update_submitted(et)
        fired = []
        runtime.when_update_complete(et.tid, lambda: fired.append(1))
        runtime.update_applied_at_site(et.tid)
        assert fired == []
        runtime.update_applied_at_site(et.tid)
        assert fired == [1]

    def test_completion_hook_immediate_when_done(self):
        runtime = MethodRuntime(1)
        et = UpdateET([IncrementOp("x", 1)])
        runtime.update_submitted(et, copies=1)
        runtime.update_applied_at_site(et.tid)
        fired = []
        runtime.when_update_complete(et.tid, lambda: fired.append(1))
        assert fired == [1]

    def test_completion_hook_parked_before_submission(self):
        runtime = MethodRuntime(1)
        et = UpdateET([IncrementOp("x", 1)])
        fired = []
        # Registered before the update exists: parked, not fired.
        runtime.when_update_complete(et.tid, lambda: fired.append(1))
        assert fired == []
        runtime.update_submitted(et, copies=1)
        runtime.update_applied_at_site(et.tid)
        assert fired == [1]

    def test_abandoned_update_completes(self):
        runtime = MethodRuntime(3)
        et = UpdateET([IncrementOp("x", 1)])
        runtime.update_submitted(et)
        runtime.update_abandoned(et.tid)
        assert runtime.in_flight_updates() == 0

    def test_in_flight_touching(self):
        runtime = MethodRuntime(2)
        a = UpdateET([IncrementOp("x", 1)])
        b = UpdateET([IncrementOp("y", 1)])
        runtime.update_submitted(a)
        runtime.update_submitted(b)
        assert runtime.in_flight_touching("x") == {a.tid}
        assert runtime.in_flight_touching("z") == set()


class TestMethodRuntimeCharging:
    def test_try_charge_respects_limit(self):
        runtime = MethodRuntime(2)
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=1))
        runtime.query_started(q)
        assert runtime.try_charge(q.tid, {101})
        assert not runtime.try_charge(q.tid, {102})
        assert runtime.inconsistency_of(q.tid) == 1

    def test_known_sources_free(self):
        runtime = MethodRuntime(2)
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=1))
        runtime.query_started(q)
        assert runtime.try_charge(q.tid, {101})
        assert runtime.try_charge(q.tid, {101})  # already imported
        assert runtime.inconsistency_of(q.tid) == 1

    def test_charge_is_atomic(self):
        runtime = MethodRuntime(2)
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=1))
        runtime.query_started(q)
        # Two new sources at once exceed the budget: nothing charged.
        assert not runtime.try_charge(q.tid, {101, 102})
        assert runtime.inconsistency_of(q.tid) == 0

    def test_non_query_always_charges_free(self):
        runtime = MethodRuntime(2)
        assert runtime.try_charge(12345, {1})

    def test_charge_unconditionally_overruns(self):
        runtime = MethodRuntime(2)
        q = QueryET([ReadOp("x")], EpsilonSpec(import_limit=0))
        runtime.query_started(q)
        runtime.charge_unconditionally(q.tid, {101, 102})
        assert runtime.inconsistency_of(q.tid) == 2

    def test_value_drift_tracked_per_update(self):
        runtime = MethodRuntime(2)
        u = UpdateET([IncrementOp("x", 30)])
        runtime.update_submitted(u)
        q = QueryET(
            [ReadOp("x")],
            EpsilonSpec(value_limit=25),
        )
        runtime.query_started(q)
        # 30 units of drift exceed a 25-unit budget.
        assert not runtime.try_charge(q.tid, {u.tid})

    def test_unknown_drift_blocks_limited_budget(self):
        runtime = MethodRuntime(2)
        u = UpdateET([WriteOp("x", 5)])  # delta unknown
        runtime.update_submitted(u)
        q = QueryET([ReadOp("x")], EpsilonSpec(value_limit=1000))
        runtime.query_started(q)
        assert not runtime.try_charge(q.tid, {u.tid})
