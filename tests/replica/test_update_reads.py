"""Tests for read-modify-write update ETs in the replica layer."""

import pytest

from repro.core.operations import IncrementOp, MultiplyOp, ReadOp, WriteOp
from repro.core.serializability import is_one_copy_serializable
from repro.core.transactions import (
    ETStatus,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations, NonCommutativeError
from repro.replica.compe import CompensationBased
from repro.replica.ordup import OrderedUpdates
from repro.replica.ritu import (
    NotReadIndependentError,
    ReadIndependentUpdates,
)
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(method, **cfg):
    defaults = dict(
        n_sites=3, seed=2, latency=UniformLatency(0.5, 2.0),
        initial=(("x", 100), ("y", 0)),
    )
    defaults.update(cfg)
    return ReplicatedSystem(method, SystemConfig(**defaults))


class TestORDUPReadModifyWrite:
    def test_reads_returned_through_result(self):
        system = _system(OrderedUpdates())
        system.submit(UpdateET([ReadOp("x"), IncrementOp("x", 5)]), "site0")
        system.run_to_quiescence()
        result = system.results[0]
        assert result.status == ETStatus.COMMITTED
        assert result.values == {"x": 100}  # pre-write serial view
        assert system.sites["site1"].store.get("x") == 105

    def test_reads_see_serial_prefix(self):
        """An RMW ordered after another update observes its effect.

        Both updates originate at the order server's site so their
        sequence tokens follow submission order deterministically.
        """
        system = _system(OrderedUpdates())
        system.submit(UpdateET([IncrementOp("x", 10)]), "site0")
        system.submit(UpdateET([ReadOp("x"), IncrementOp("y", 1)]), "site0")
        system.run_to_quiescence()
        rmw = [r for r in system.results if r.values][0]
        assert rmw.values["x"] == 110  # saw the earlier update

    def test_rmw_commit_waits_for_serial_turn(self):
        """Unlike pure-write updates, RMW commits are not instant."""
        system = _system(OrderedUpdates(), latency=UniformLatency(4.0, 6.0))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site1")
        system.submit(UpdateET([ReadOp("x"), IncrementOp("x", 1)]), "site1")
        system.run_to_quiescence()
        pure, rmw = system.results[0], system.results[1]
        assert pure.latency == 0.0 or pure.latency < rmw.latency

    def test_rmw_updates_stay_one_copy_sr(self):
        system = _system(OrderedUpdates())
        for i in range(8):
            ops = (
                [ReadOp("x"), MultiplyOp("x", 2)]
                if i % 2
                else [IncrementOp("x", 3)]
            )
            system.submit_at(float(i), UpdateET(ops), "site%d" % (i % 3))
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()


class TestOtherMethodsRejectUpdateReads:
    def test_commu_rejects(self):
        system = _system(CommutativeOperations())
        with pytest.raises(NonCommutativeError, match="ORDUP"):
            system.submit(
                UpdateET([ReadOp("x"), IncrementOp("x", 1)]), "site0"
            )

    def test_ritu_rejects(self):
        system = _system(ReadIndependentUpdates())
        with pytest.raises(NotReadIndependentError, match="blind"):
            system.submit(
                UpdateET([ReadOp("x"), WriteOp("x", 1)]), "site0"
            )

    def test_compe_rejects(self):
        system = _system(CompensationBased())
        with pytest.raises(ValueError, match="compensated"):
            system.method.submit_update(
                UpdateET([ReadOp("x"), IncrementOp("x", 1)]),
                "site0",
                lambda r: None,
            )
