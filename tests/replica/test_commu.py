"""Tests for COMMU (commutative operations) replica control."""

import pytest

from repro.core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations, NonCommutativeError
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(n=3, seed=1, method=None, **cfg):
    config = SystemConfig(
        n_sites=n, seed=seed, initial=(("x", 0), ("y", 0)), **cfg
    )
    return ReplicatedSystem(method or CommutativeOperations(), config)


class TestRestriction:
    def test_non_commutative_et_rejected(self):
        system = _system()
        et = UpdateET([IncrementOp("x", 1), MultiplyOp("x", 2)])
        with pytest.raises(NonCommutativeError):
            system.submit(et, "site0")

    def test_non_commutative_on_different_keys_allowed(self):
        system = _system()
        et = UpdateET([IncrementOp("x", 1), MultiplyOp("y", 2)])
        system.submit(et, "site0")
        system.run_to_quiescence()
        assert system.converged()

    def test_check_commutative_static(self):
        CommutativeOperations.check_commutative(
            UpdateET([IncrementOp("x", 1), DecrementOp("x", 2)])
        )
        with pytest.raises(NonCommutativeError):
            CommutativeOperations.check_commutative(
                UpdateET([WriteOp("x", 1), WriteOp("x", 2)])
            )


class TestAsynchrony:
    def test_update_commits_immediately(self):
        system = _system(latency=UniformLatency(50.0, 60.0))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        assert len(system.results) == 1
        assert system.results[0].latency == 0.0

    def test_out_of_order_application_converges(self):
        system = _system(n=4, latency=UniformLatency(0.1, 10.0))
        for i in range(15):
            system.submit_at(
                float(i) * 0.3,
                UpdateET([IncrementOp("x", i + 1)]),
                "site%d" % (i % 4),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("x") == sum(range(1, 16))

    def test_append_workload_converges_as_multiset(self):
        system = _system(n=3, latency=UniformLatency(0.5, 5.0))
        for i in range(6):
            system.submit_at(
                float(i) * 0.2,
                UpdateET([AppendOp("log", "item%d" % i)]),
                "site%d" % (i % 3),
            )
        system.run_to_quiescence()
        assert system.converged()
        logs = [
            sorted(site.store.get("log")) for site in system.sites.values()
        ]
        assert all(log == logs[0] for log in logs)


class TestLockCounters:
    def test_query_charged_by_in_flight_updates(self):
        system = _system(latency=UniformLatency(4.0, 6.0))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=5)), "site0"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency >= 1

    def test_strict_query_zero_error(self):
        system = _system(n=3, latency=UniformLatency(1.0, 3.0))
        for i in range(6):
            system.submit_at(
                float(i), UpdateET([IncrementOp("x", 1)]), "site1"
            )
        system.submit_at(
            2.0, QueryET([ReadOp("x")], EpsilonSpec(import_limit=0)), "site0"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency == 0

    def test_epsilon_respected(self):
        system = _system(n=4, latency=UniformLatency(1.0, 5.0))
        for i in range(12):
            system.submit_at(
                float(i) * 0.4, UpdateET([IncrementOp("x", 1)]), "site1"
            )
        system.submit_at(
            1.0,
            QueryET(
                [ReadOp("x"), ReadOp("y"), ReadOp("x")],
                EpsilonSpec(import_limit=2),
            ),
            "site0",
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency <= 2


class TestUpdateThrottling:
    def test_throttled_update_waits_for_drain(self):
        method = CommutativeOperations(update_limit=1)
        system = _system(
            method=method, latency=UniformLatency(5.0, 8.0)
        )
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        # Second update on the hot key must queue behind the first.
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        assert len(system.results) == 1  # second is throttled
        system.run_to_quiescence()
        assert len(system.results) == 2
        assert system.converged()
        assert system.sites["site1"].store.get("x") == 2

    def test_unlimited_never_throttles(self):
        system = _system(latency=UniformLatency(5.0, 8.0))
        for _ in range(5):
            system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        assert len(system.results) == 5

    def test_throttling_preserves_convergence(self):
        method = CommutativeOperations(update_limit=2)
        system = _system(method=method, n=4, latency=UniformLatency(0.5, 4.0))
        for i in range(16):
            system.submit_at(
                float(i) * 0.3, UpdateET([IncrementOp("x", 1)]), "site%d" % (i % 4)
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("x") == 16


class TestESRInvariants:
    def test_epsilon_serial_history(self):
        system = _system(n=3, latency=UniformLatency(0.5, 4.0))
        for i in range(10):
            system.submit_at(
                float(i) * 0.5, UpdateET([IncrementOp("x", 1)]), "site%d" % (i % 3)
            )
            system.submit_at(
                float(i) * 0.5 + 0.2, QueryET([ReadOp("x")]), "site%d" % ((i + 1) % 3)
            )
        system.run_to_quiescence()
        assert system.is_one_copy_serializable()
        assert system.converged()
