"""Tests for RITU (read-independent timestamped updates)."""

import pytest

from repro.core.operations import (
    IncrementOp,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
)
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.ritu import (
    NotReadIndependentError,
    ReadIndependentUpdates,
)
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(n=3, seed=1, versioning="multiversion", **cfg):
    config = SystemConfig(
        n_sites=n, seed=seed, initial=(("x", 0), ("y", 0)), **cfg
    )
    return ReplicatedSystem(
        ReadIndependentUpdates(versioning=versioning), config
    )


class TestRestriction:
    def test_non_blind_write_rejected(self):
        system = _system()
        with pytest.raises(NotReadIndependentError):
            system.submit(UpdateET([IncrementOp("x", 1)]), "site0")

    def test_blind_writes_accepted(self):
        system = _system()
        system.submit(UpdateET([WriteOp("x", 5)]), "site0")
        system.run_to_quiescence()
        assert system.converged()

    def test_invalid_versioning_rejected(self):
        with pytest.raises(ValueError):
            ReadIndependentUpdates(versioning="nope")


class TestConvergence:
    @pytest.mark.parametrize("versioning", ["overwrite", "multiversion"])
    def test_out_of_order_writes_converge(self, versioning):
        system = _system(
            n=4, versioning=versioning, latency=UniformLatency(0.1, 8.0)
        )
        for i in range(12):
            system.submit_at(
                float(i) * 0.5,
                UpdateET([WriteOp("x", 100 + i)]),
                "site%d" % (i % 4),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_last_writer_wins_by_submission_order(self):
        system = _system(versioning="overwrite")
        system.submit(UpdateET([WriteOp("x", 1)]), "site0")
        system.submit(UpdateET([WriteOp("x", 2)]), "site1")
        system.run_to_quiescence()
        # The later submission carries the larger Lamport stamp only if
        # clocks are ordered; convergence (same winner everywhere) is
        # the real guarantee.
        values = {s.store.get("x") for s in system.sites.values()}
        assert len(values) == 1

    def test_multiversion_installs_versions(self):
        system = _system(versioning="multiversion")
        system.submit(UpdateET([WriteOp("x", 5)]), "site0")
        system.run_to_quiescence()
        for site in system.sites.values():
            versions = site.mvstore.versions_of("x")
            assert [v.value for v in versions][-1] == 5

    def test_vtnc_advances_with_propagation(self):
        system = _system(versioning="multiversion")
        for i in range(3):
            system.submit(UpdateET([WriteOp("x", i)]), "site0")
        system.run_to_quiescence()
        for site in system.sites.values():
            assert site.mvstore.vtnc == 3


class TestQueriesMultiversion:
    def test_strict_query_reads_visible_version(self):
        system = _system(
            versioning="multiversion", latency=UniformLatency(5.0, 8.0)
        )
        system.submit(UpdateET([WriteOp("x", 42)]), "site0")
        # Query at a remote site before the update propagates there.
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=0)), "site1"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency == 0

    def test_relaxed_query_may_read_unstable(self):
        system = _system(
            n=3, versioning="multiversion", latency=UniformLatency(3.0, 6.0)
        )
        # Two updates from different sites: the second is unstable at
        # its origin until the first arrives there.
        system.submit(UpdateET([WriteOp("x", 1)]), "site1")
        system.submit(UpdateET([WriteOp("x", 2)]), "site2")
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=3)), "site2"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency <= 3

    def test_stable_version_above_stale_vtnc_is_free(self):
        """A lossy link delays one MSet, pinning the VTNC below later
        versions that have already propagated everywhere.  Reading such
        a fully-stable version imports no inconsistency — charging for
        it would push the counter past the query's overlap, breaking
        the paper's upper bound (regression: found by the randomized
        invariant sweep at seed=4821/wl_seed=171)."""
        from repro.workload.generator import (
            WorkloadGenerator,
            WorkloadSpec,
            drive,
        )

        config = SystemConfig(
            n_sites=5,
            seed=4821,
            latency=UniformLatency(0.2, 2.5),
            loss_rate=0.15,
            retry_interval=2.5,
            initial=tuple(("x%d" % i, 1) for i in range(5)),
        )
        system = ReplicatedSystem(ReadIndependentUpdates(), config)
        spec = WorkloadSpec(
            n_keys=5,
            count=40,
            query_fraction=0.4,
            style="blind",
            epsilon=3,
            mean_interarrival=0.7,
        )
        drive(
            system,
            WorkloadGenerator(spec, sorted(system.sites), 171).generate(),
        )
        system.run_to_quiescence()
        assert system.converged()
        for result in system.results:
            if result.et.is_query:
                assert result.inconsistency <= len(result.overlap)

    def test_query_respects_epsilon(self):
        system = _system(
            n=4, versioning="multiversion", latency=UniformLatency(1.0, 6.0)
        )
        for i in range(10):
            system.submit_at(
                float(i) * 0.5,
                UpdateET([WriteOp("x", i)]),
                "site%d" % (i % 4),
            )
        system.submit_at(
            1.0,
            QueryET(
                [ReadOp("x"), ReadOp("y"), ReadOp("x")],
                EpsilonSpec(import_limit=1),
            ),
            "site0",
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency <= 1


class TestQueriesOverwrite:
    def test_overwrite_reduces_to_commu_accounting(self):
        system = _system(
            versioning="overwrite", latency=UniformLatency(2.0, 4.0)
        )
        system.submit(UpdateET([WriteOp("x", 5)]), "site0")
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=5)), "site1"
        )
        system.run_to_quiescence()
        assert system.converged()

    def test_timestamped_write_ops_pass_through(self):
        system = _system(versioning="overwrite")
        system.submit(
            UpdateET([TimestampedWriteOp("x", 9, (99, 0))]), "site0"
        )
        system.run_to_quiescence()
        assert system.converged()
