"""Tests for the quasi-copies baseline (section 5.2)."""

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.quasicopy import ClosenessSpec, QuasiCopies
from repro.sim.network import ConstantLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(closeness=None, n=3):
    return ReplicatedSystem(
        QuasiCopies(closeness),
        SystemConfig(
            n_sites=n,
            seed=1,
            latency=ConstantLatency(1.0),
            initial=(("x", 0),),
        ),
    )


class TestClosenessSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosenessSpec(version_lag=-1)
        with pytest.raises(ValueError):
            ClosenessSpec(max_age=0)

    def test_defaults(self):
        spec = ClosenessSpec()
        assert spec.version_lag == 2


class TestPrimaryUpdates:
    def test_updates_serialize_at_primary(self):
        system = _system()
        system.submit(UpdateET([IncrementOp("x", 5)]), "site1")
        system.run_to_quiescence()
        assert system.sites["site0"].store.get("x") == 5

    def test_update_from_primary_is_cheaper(self):
        system = _system()
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.submit(UpdateET([IncrementOp("x", 1)]), "site2")
        system.run_to_quiescence()
        by_site = {r.site: r for r in system.results}
        # Both report primary as the executing site; compare latency by
        # origin instead.
        latencies = sorted(r.latency for r in system.results)
        assert latencies[0] < latencies[1]


class TestCloseness:
    def test_within_lag_no_refresh(self):
        """Secondaries may lag up to version_lag versions."""
        system = _system(ClosenessSpec(version_lag=5))
        for _ in range(3):
            system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.run_to_quiescence()
        assert system.method.refresh_count == 0
        # Quasi-copies intentionally do NOT converge: bounded staleness
        # persists at quiescence (the contrast with ESR).
        assert system.sites["site1"].store.get("x") == 0

    def test_exceeding_lag_triggers_refresh(self):
        system = _system(ClosenessSpec(version_lag=2))
        for _ in range(4):
            system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.run_to_quiescence()
        assert system.method.refresh_count > 0
        # After the refresh the secondary is within the bound again.
        primary = system.sites["site0"].store.get("x")
        secondary = system.sites["site1"].store.get("x")
        assert primary - secondary <= 2 + 1  # one in-flight refresh slack

    def test_zero_lag_keeps_secondaries_current(self):
        system = _system(ClosenessSpec(version_lag=0))
        for _ in range(3):
            system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.run_to_quiescence()
        assert system.sites["site1"].store.get("x") == 3

    def test_age_trigger_refreshes(self):
        system = _system(
            ClosenessSpec(version_lag=None, max_age=5.0)
        )
        system.submit(UpdateET([IncrementOp("x", 7)]), "site0")
        # Queries keep the system busy so the age sweep keeps running.
        for i in range(4):
            system.submit_at(
                2.0 + 3 * i, QueryET([ReadOp("x")]), "site1"
            )
        system.run_to_quiescence()
        assert system.method.refresh_count > 0
        assert system.sites["site1"].store.get("x") == 7


class TestQueries:
    def test_local_reads_report_staleness(self):
        system = _system(ClosenessSpec(version_lag=10))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.run_to_quiescence()
        system.submit(QueryET([ReadOp("x")]), "site1")
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.values["x"] == 0  # stale quasi-copy
        assert query.inconsistency == 1  # one stale key detected

    def test_primary_reads_never_stale(self):
        system = _system(ClosenessSpec(version_lag=10))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.run_to_quiescence()
        system.submit(QueryET([ReadOp("x")]), "site0")
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.values["x"] == 1
        assert query.inconsistency == 0
