"""Tests for the synchronous 1SR baselines."""

import pytest

from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.coherency import (
    PrimaryCopy,
    QuorumConsensus,
    ReadOneWriteAll2PC,
)
from repro.sim.network import ConstantLatency, UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(method, n=3, seed=1, **cfg):
    config = SystemConfig(
        n_sites=n, seed=seed, initial=(("x", 0), ("y", 0)), **cfg
    )
    return ReplicatedSystem(method, config)


class TestROWA2PC:
    def test_update_applies_everywhere_synchronously(self):
        system = _system(ReadOneWriteAll2PC(), latency=ConstantLatency(1.0))
        system.submit(UpdateET([IncrementOp("x", 5)]), "site0")
        system.run_to_quiescence()
        assert system.converged()
        assert all(s.store.get("x") == 5 for s in system.sites.values())

    def test_commit_latency_includes_two_rounds(self):
        system = _system(ReadOneWriteAll2PC(), latency=ConstantLatency(2.0))
        system.submit(UpdateET([IncrementOp("x", 5)]), "site0")
        system.run_to_quiescence()
        # prepare out + vote back + decision out + ack back >= 4 hops.
        assert system.results[0].latency >= 8.0

    def test_non_commutative_updates_serialize(self):
        system = _system(
            ReadOneWriteAll2PC(), latency=UniformLatency(0.5, 2.0)
        )
        system.submit(UpdateET([IncrementOp("x", 10)]), "site0")
        system.submit(UpdateET([MultiplyOp("x", 2)]), "site1")
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_conflicting_rounds_eventually_commit(self):
        system = _system(
            ReadOneWriteAll2PC(lock_timeout=3.0, backoff=2.0),
            n=3,
            latency=UniformLatency(0.2, 1.0),
        )
        for i in range(6):
            system.submit_at(
                float(i) * 0.1, UpdateET([IncrementOp("x", 1)]), "site%d" % (i % 3)
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("x") == 6

    def test_queries_strictly_consistent(self):
        system = _system(ReadOneWriteAll2PC(), latency=ConstantLatency(1.0))
        system.submit(UpdateET([IncrementOp("x", 5)]), "site0")
        system.submit(QueryET([ReadOp("x")]), "site1")
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency == 0


class TestQuorumConsensus:
    def test_quorum_sizes_default_to_majority(self):
        system = _system(QuorumConsensus(), n=5)
        assert system.method.w == 3
        assert system.method.r == 3

    def test_invalid_quorums_rejected(self):
        with pytest.raises(ValueError):
            _system(QuorumConsensus(read_quorum=1, write_quorum=1), n=4)
        with pytest.raises(ValueError):
            _system(QuorumConsensus(read_quorum=4, write_quorum=1), n=4)

    def test_non_blind_write_rejected(self):
        system = _system(QuorumConsensus())
        with pytest.raises(ValueError):
            system.submit(UpdateET([IncrementOp("x", 1)]), "site0")

    def test_write_then_read_sees_latest(self):
        system = _system(QuorumConsensus(), latency=ConstantLatency(1.0))
        system.submit(UpdateET([WriteOp("x", 42)]), "site0")
        system.run_to_quiescence()
        system.submit(QueryET([ReadOp("x")]), "site2")
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.values["x"] == 42

    def test_concurrent_writes_converge(self):
        system = _system(
            QuorumConsensus(), n=5, latency=UniformLatency(0.5, 3.0)
        )
        for i in range(8):
            system.submit_at(
                float(i) * 0.2,
                UpdateET([WriteOp("x", 100 + i)]),
                "site%d" % (i % 5),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_commit_waits_for_write_quorum(self):
        system = _system(QuorumConsensus(), latency=ConstantLatency(2.0))
        system.submit(UpdateET([WriteOp("x", 1)]), "site0")
        system.run_to_quiescence()
        # Phase 1 (version read) + phase 2 (write) across the quorum.
        assert system.results[0].latency >= 4.0


class TestPrimaryCopy:
    def test_update_propagates_to_all_backups(self):
        system = _system(PrimaryCopy(), latency=ConstantLatency(1.0))
        system.submit(UpdateET([IncrementOp("x", 3)]), "site1")
        system.run_to_quiescence()
        assert system.converged()
        assert all(s.store.get("x") == 3 for s in system.sites.values())

    def test_non_commutative_updates_ordered_by_primary(self):
        system = _system(PrimaryCopy(), latency=UniformLatency(0.5, 4.0))
        system.submit(UpdateET([IncrementOp("x", 10)]), "site1")
        system.submit(UpdateET([MultiplyOp("x", 2)]), "site2")
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_strict_queries_go_to_primary(self):
        system = _system(PrimaryCopy(), latency=ConstantLatency(1.0))
        system.submit(QueryET([ReadOp("x")]), "site2")
        system.run_to_quiescence()
        assert system.results[0].site == "site0"

    def test_read_local_mode_stays_at_site(self):
        system = _system(
            PrimaryCopy(read_local=True), latency=ConstantLatency(1.0)
        )
        system.submit(QueryET([ReadOp("x")]), "site2")
        system.run_to_quiescence()
        assert system.results[0].site == "site2"

    def test_update_at_primary_is_cheaper(self):
        system = _system(PrimaryCopy(), latency=ConstantLatency(2.0))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        system.submit(UpdateET([IncrementOp("y", 1)]), "site2")
        system.run_to_quiescence()
        by_site = {r.site: r.latency for r in system.results}
        assert by_site["site0"] < by_site["site2"]
