"""Tests for COMPE (compensation-based backward replica control)."""

import pytest

from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.core.transactions import (
    EpsilonSpec,
    ETStatus,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.compe import CompensationBased
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(n=3, seed=1, method=None, **cfg):
    config = SystemConfig(
        n_sites=n, seed=seed, initial=(("x", 1), ("y", 1)), **cfg
    )
    return ReplicatedSystem(
        method or CompensationBased(decision_delay=5.0), config
    )


def _submit_update(system, et, origin, will_abort=False):
    results = []
    system._pending_ets += 1

    def done(result):
        system._pending_ets -= 1
        system.results.append(result)
        results.append(result)

    system.method.submit_update(et, origin, done, will_abort=will_abort)
    return results


class TestOptimisticCommit:
    def test_committed_update_converges(self):
        system = _system()
        _submit_update(system, UpdateET([IncrementOp("x", 5)]), "site0")
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site1"].store.get("x") == 6
        assert system.method.stats.commits == 1

    def test_decision_latency(self):
        system = _system()
        results = _submit_update(
            system, UpdateET([IncrementOp("x", 5)]), "site0"
        )
        system.run_to_quiescence()
        assert results[0].latency == pytest.approx(5.0)

    def test_operation_without_inverse_rejected(self):
        from dataclasses import dataclass, field
        from repro.core.operations import Operation

        @dataclass(frozen=True)
        class NoUndoOp(Operation):
            is_write_op: bool = field(default=True, init=False, repr=False)

            def apply(self, value):
                return value

            def inverse(self, prior_value):
                return None

            def commutes_with(self, other):
                return False

        system = _system()
        et = UpdateET([NoUndoOp("x")])
        with pytest.raises(ValueError):
            _submit_update(system, et, "site0")

    def test_log_records_kept_until_decision(self):
        system = _system(latency=UniformLatency(0.5, 1.0))
        _submit_update(system, UpdateET([IncrementOp("x", 5)]), "site0")
        system.run(until=3.0)  # applied, not yet decided
        assert len(system.sites["site0"].oplog) == 1


class TestCompensation:
    def test_aborted_update_leaves_no_trace(self):
        system = _system()
        _submit_update(
            system, UpdateET([IncrementOp("x", 5)]), "site0", will_abort=True
        )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site1"].store.get("x") == 1
        assert system.method.stats.aborts == 1

    def test_aborted_result_status(self):
        system = _system()
        results = _submit_update(
            system, UpdateET([IncrementOp("x", 5)]), "site0", will_abort=True
        )
        system.run_to_quiescence()
        assert results[0].status == ETStatus.COMPENSATED

    def test_commutative_log_uses_direct_compensation(self):
        system = _system()
        _submit_update(
            system, UpdateET([IncrementOp("x", 5)]), "site0", will_abort=True
        )
        _submit_update(system, UpdateET([IncrementOp("x", 3)]), "site1")
        system.run_to_quiescence()
        assert system.method.stats.direct_compensations >= 1
        assert system.method.stats.rollback_replays == 0
        assert system.sites["site2"].store.get("x") == 4

    def test_non_commutative_log_uses_rollback_replay(self):
        method = CompensationBased(decision_delay=5.0, ordered=True)
        system = _system(method=method, latency=UniformLatency(0.2, 0.5))
        _submit_update(
            system, UpdateET([IncrementOp("x", 10)]), "site0", will_abort=True
        )
        system.run(until=2.0)  # let the Inc apply everywhere
        _submit_update(system, UpdateET([MultiplyOp("x", 2)]), "site1")
        system.run_to_quiescence()
        assert system.method.stats.rollback_replays >= 1
        assert system.converged()
        # Inc aborted: only Mul survives -> x = 1 * 2.
        assert system.sites["site2"].store.get("x") == 2

    def test_abort_overtaking_update_is_safe(self):
        """ABORT decisions racing ahead of their update MSets."""
        system = _system(
            n=4, seed=3,
            method=CompensationBased(decision_delay=0.5),
            latency=UniformLatency(0.2, 12.0),
            loss_rate=0.1,
            retry_interval=2.0,
        )
        for i in range(10):
            _submit_update(
                system,
                UpdateET([IncrementOp("x", 1)]),
                "site%d" % (i % 4),
                will_abort=(i % 2 == 0),
            )
        system.run_to_quiescence()
        assert system.converged()
        assert system.sites["site0"].store.get("x") == 6  # 1 + 5 commits


class TestPessimisticFallback:
    def test_budget_exhaustion_switches_to_pessimistic(self):
        method = CompensationBased(decision_delay=2.0, max_compensations=1)
        system = _system(method=method)
        _submit_update(
            system, UpdateET([IncrementOp("x", 1)]), "site0", will_abort=True
        )
        system.run_to_quiescence()
        assert system.method.stats.aborts == 1
        # Budget used up: next updates run pessimistically.
        _submit_update(system, UpdateET([IncrementOp("x", 2)]), "site0")
        _submit_update(
            system, UpdateET([IncrementOp("x", 4)]), "site0", will_abort=True
        )
        system.run_to_quiescence()
        assert system.method.stats.pessimistic_updates == 2
        assert system.converged()
        assert system.sites["site1"].store.get("x") == 3  # 1 + 2

    def test_pessimistic_abort_has_no_effect_anywhere(self):
        method = CompensationBased(decision_delay=2.0, max_compensations=0)
        system = _system(method=method)
        results = _submit_update(
            system, UpdateET([IncrementOp("x", 9)]), "site0", will_abort=True
        )
        system.run_to_quiescence()
        assert results[0].status == ETStatus.ABORTED
        assert system.sites["site0"].store.get("x") == 1


class TestQueries:
    def test_query_charged_for_undecided_updates(self):
        system = _system(latency=UniformLatency(0.5, 1.0))
        _submit_update(system, UpdateET([IncrementOp("x", 5)]), "site0")
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=5)), "site0"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency >= 1

    def test_post_hoc_inconsistency_recorded(self):
        system = _system(latency=UniformLatency(0.2, 0.5))
        _submit_update(
            system, UpdateET([IncrementOp("x", 5)]), "site0", will_abort=True
        )
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=5)), "site0"
        )
        system.run_to_quiescence()
        assert system.method.stats.post_hoc_inconsistent_queries == 1

    def test_strict_query_waits_out_undecided_updates(self):
        system = _system(latency=UniformLatency(0.2, 0.5))
        _submit_update(system, UpdateET([IncrementOp("x", 5)]), "site0")
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=0)), "site0"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency == 0
        assert query.waits >= 1
        assert query.values["x"] == 6  # reads the committed state


class TestSagas:
    def test_successful_saga_commits_all_steps(self):
        system = _system(method=CompensationBased(decision_delay=1.0))
        steps = [
            (UpdateET([IncrementOp("x", 1)]), False),
            (UpdateET([IncrementOp("y", 2)]), False),
        ]
        outcomes = []
        system._pending_ets += 1

        def done(results):
            system._pending_ets -= 1
            outcomes.extend(results)

        system.method.submit_saga("s1", steps, "site0", done)
        system.run_to_quiescence()
        assert len(outcomes) == 2
        assert system.sites["site1"].store.get("x") == 2
        assert system.sites["site1"].store.get("y") == 3
        assert system.converged()

    def test_failing_saga_compensates_earlier_steps(self):
        system = _system(method=CompensationBased(decision_delay=1.0))
        steps = [
            (UpdateET([IncrementOp("x", 1)]), False),
            (UpdateET([IncrementOp("y", 2)]), True),  # fails
        ]
        system._pending_ets += 1

        def done(results):
            system._pending_ets -= 1

        system.method.submit_saga("s1", steps, "site0", done)
        system.run_to_quiescence()
        # Step 1 compensated, step 2 never committed: initial state.
        assert system.sites["site1"].store.get("x") == 1
        assert system.sites["site1"].store.get("y") == 1
        assert system.converged()


class TestLogGC:
    def test_log_bounded_under_committed_traffic(self):
        """'Remember the executed MSets until there is no risk of
        rollback' — and not a moment longer: decided updates' records
        are reclaimed, so the log does not grow with history."""
        system = _system(method=CompensationBased(decision_delay=1.0))
        for i in range(30):
            system.submit_at(
                i * 2.0,
                # schedule through the driver helper to set will_abort
                UpdateET([IncrementOp("x", 1)]),
                "site0",
            )
        # Replace default submit path with COMPE-aware submission.
        system.sim.run()
        system.run_to_quiescence()
        assert system.method.stats.log_records_reclaimed > 0
        for site in system.sites.values():
            assert len(site.oplog) <= 4  # only the undecided tail

    def test_gc_spares_undecided_updates(self):
        method = CompensationBased(decision_delay=50.0)
        system = _system(method=method, latency=UniformLatency(0.2, 0.5))
        _submit_update(system, UpdateET([IncrementOp("x", 5)]), "site0")
        system.run(until=10.0)  # applied everywhere, still undecided
        site = system.sites["site0"]
        assert site.oplog.records_of(1)  # retained: rollback possible
        system.run_to_quiescence()

    def test_gc_preserves_compensability(self):
        """Interleaved commits and aborts with GC running: every abort
        still compensates correctly."""
        method = CompensationBased(decision_delay=2.0)
        system = _system(method=method, latency=UniformLatency(0.2, 0.8))
        for i in range(12):
            _submit_update(
                system,
                UpdateET([IncrementOp("x", 1)]),
                "site%d" % (i % 3),
                will_abort=(i % 3 == 0),
            )
        system.run_to_quiescence()
        assert system.converged()
        # 12 submissions, every third aborts -> 8 survive.
        assert system.sites["site1"].store.get("x") == 9
