"""Tests for ORDUP (ordered updates) replica control."""

import pytest

from repro.core.operations import IncrementOp, MultiplyOp, ReadOp, WriteOp
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.ordup import OrderedUpdates
from repro.sim.network import UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(n=3, seed=1, ordering="central", **cfg):
    config = SystemConfig(
        n_sites=n, seed=seed,
        initial=(("x", 0), ("y", 0)),
        **cfg,
    )
    return ReplicatedSystem(OrderedUpdates(ordering=ordering), config)


class TestOrderedExecution:
    def test_non_commutative_updates_converge(self):
        """Inc then Mul at different origins: same order everywhere."""
        system = _system(latency=UniformLatency(0.5, 5.0))
        system.submit(UpdateET([IncrementOp("x", 10)]), "site1")
        system.submit(UpdateET([MultiplyOp("x", 2)]), "site2")
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_many_conflicting_updates_converge(self):
        system = _system(n=4, latency=UniformLatency(0.2, 4.0))
        for i in range(20):
            op = IncrementOp("x", 1) if i % 2 else MultiplyOp("x", 2)
            system.submit_at(float(i), UpdateET([op]), "site%d" % (i % 4))
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_update_commits_asynchronously(self):
        """Commit happens at ordering time, not propagation time."""
        system = _system(latency=UniformLatency(10.0, 20.0))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        # The result callback fires long before replicas catch up.
        assert len(system.results) == 1
        assert system.results[0].latency < 10.0

    def test_quiescent_reports_holdback(self):
        system = _system(latency=UniformLatency(5.0, 6.0))
        system.submit(UpdateET([IncrementOp("x", 1)]), "site0")
        assert not system.method.quiescent()
        system.run_to_quiescence()
        assert system.method.quiescent()


class TestLamportOrdering:
    def test_lamport_converges_non_commutative(self):
        system = _system(
            ordering="lamport", latency=UniformLatency(0.5, 5.0)
        )
        system.submit(UpdateET([IncrementOp("x", 10)]), "site1")
        system.submit(UpdateET([MultiplyOp("x", 2)]), "site2")
        system.run_to_quiescence()
        assert system.converged()
        assert system.is_one_copy_serializable()

    def test_lamport_sets_fifo_channels(self):
        system = _system(ordering="lamport")
        assert all(q.fifo for q in system.queues.values())

    def test_central_mode_keeps_non_fifo(self):
        system = _system(ordering="central")
        assert not any(q.fifo for q in system.queues.values())

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            OrderedUpdates(ordering="magic")


class TestQueries:
    def test_strict_query_runs_in_global_order(self):
        system = _system()
        system.submit(UpdateET([IncrementOp("x", 5)]), "site0")
        system.submit(
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=0)), "site0"
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency == 0
        assert query.waits >= 1  # executor-ordered atomic run

    def test_free_query_bounded_by_epsilon(self):
        system = _system(n=4, latency=UniformLatency(1.0, 3.0))
        for i in range(10):
            system.submit_at(
                float(i), UpdateET([IncrementOp("x", 1)]), "site1"
            )
        system.submit_at(
            2.0,
            QueryET(
                [ReadOp("x"), ReadOp("y"), ReadOp("x")],
                EpsilonSpec(import_limit=2),
            ),
            "site0",
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency <= 2

    def test_query_values_returned(self):
        system = _system()
        system.submit(UpdateET([WriteOp("x", 9)]), "site0")
        system.run_to_quiescence()
        system.submit(QueryET([ReadOp("x")]), "site1")
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.values == {"x": 9}

    def test_unlimited_query_never_waits(self):
        system = _system(n=4)
        for i in range(10):
            system.submit_at(
                float(i) / 2, UpdateET([IncrementOp("x", 1)]), "site1"
            )
        system.submit_at(
            1.0,
            QueryET([ReadOp("x")], EpsilonSpec(import_limit=UNLIMITED)),
            "site0",
        )
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.waits == 0


class TestOverlapBound:
    def test_error_bounded_by_overlap(self):
        system = _system(n=3, latency=UniformLatency(1.0, 4.0))
        for i in range(8):
            system.submit_at(
                float(i), UpdateET([IncrementOp("x", 1)]), "site1"
            )
        system.submit_at(1.5, QueryET([ReadOp("x"), ReadOp("y")]), "site0")
        system.run_to_quiescence()
        query = [r for r in system.results if r.et.is_query][0]
        assert query.inconsistency <= len(query.overlap) or (
            query.inconsistency == 0
        )
