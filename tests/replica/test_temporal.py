"""Tests for temporal ET services: deadlines and periodic updates."""

import pytest

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.coherency import PrimaryCopy
from repro.replica.temporal import DeadlineTracker, PeriodicSubmitter
from repro.sim.failures import FailureInjector, PartitionEvent
from repro.sim.network import ConstantLatency, UniformLatency


@pytest.fixture(autouse=True)
def _fresh():
    reset_tid_counter()


def _system(method=None, **cfg):
    defaults = dict(
        n_sites=3, seed=1, latency=ConstantLatency(1.0),
        initial=(("x", 0),),
    )
    defaults.update(cfg)
    return ReplicatedSystem(
        method or CommutativeOperations(), SystemConfig(**defaults)
    )


class TestDeadlineTracker:
    def test_met_deadline(self):
        system = _system()
        tracker = DeadlineTracker(system)
        record = tracker.submit(
            UpdateET([IncrementOp("x", 1)]), "site0", relative_deadline=50.0
        )
        system.run_to_quiescence()
        assert record.met is True
        assert not record.escalated
        assert tracker.met_fraction() == 1.0

    def test_missed_deadline(self):
        system = _system(latency=ConstantLatency(30.0))
        tracker = DeadlineTracker(system, escalate=False)
        record = tracker.submit(
            UpdateET([IncrementOp("x", 1)]), "site0", relative_deadline=5.0
        )
        system.run_to_quiescence()
        assert record.met is False
        assert tracker.missed() == [record]

    def test_escalation_kicks_queues(self):
        system = _system(retry_interval=500.0)
        injector = FailureInjector(
            system.sim, system.network, system.sites
        )
        injector.schedule_partition(
            PartitionEvent((("site0",), ("site1", "site2")), 0.0, 10.0)
        )
        tracker = DeadlineTracker(system, escalate=True)
        record = tracker.submit(
            UpdateET([IncrementOp("x", 1)]), "site0", relative_deadline=15.0
        )
        system.run_to_quiescence(max_time=200.0)
        # Without the escalation kick at t=15, the 500-unit retry timer
        # would have blown way past the deadline window.
        assert record.escalated
        assert record.propagated_at < 100.0
        assert system.converged()

    def test_rejects_queries_and_bad_deadlines(self):
        system = _system()
        tracker = DeadlineTracker(system)
        with pytest.raises(ValueError):
            tracker.submit(QueryET([ReadOp("x")]), "site0", 5.0)
        with pytest.raises(ValueError):
            tracker.submit(UpdateET([IncrementOp("x", 1)]), "site0", 0.0)

    def test_synchronous_method_counts_as_propagated_at_commit(self):
        system = _system(method=PrimaryCopy())
        tracker = DeadlineTracker(system)
        record = tracker.submit(
            UpdateET([IncrementOp("x", 1)]), "site0", relative_deadline=50.0
        )
        system.run_to_quiescence()
        assert record.met is True


class TestPeriodicSubmitter:
    def test_fires_count_times(self):
        system = _system()
        submitter = PeriodicSubmitter(
            system,
            lambda: UpdateET([IncrementOp("x", 1)]),
            "site0",
            period=2.0,
            count=5,
        )
        system.run_to_quiescence()
        assert submitter.fired == 5
        assert system.sites["site1"].store.get("x") == 5
        assert system.converged()

    def test_cancel_stops_firing(self):
        system = _system()
        submitter = PeriodicSubmitter(
            system,
            lambda: UpdateET([IncrementOp("x", 1)]),
            "site0",
            period=2.0,
            count=100,
        )
        system.sim.schedule_at(5.0, submitter.cancel)
        system.run_to_quiescence()
        assert submitter.fired == 2  # t=2 and t=4 only

    def test_rejects_bad_period(self):
        system = _system()
        with pytest.raises(ValueError):
            PeriodicSubmitter(
                system, lambda: UpdateET([IncrementOp("x", 1)]),
                "site0", period=0.0,
            )

    def test_rejects_query_template(self):
        system = _system()
        PeriodicSubmitter(
            system, lambda: QueryET([ReadOp("x")]), "site0",
            period=1.0, count=1,
        )
        with pytest.raises(ValueError):
            system.run_to_quiescence()
