"""E6 — COMMU lock-counter bounding (section 3.2).

Paper claims: with no hard limit "the system can run freely"; limiting
the update ETs means "query ETs ... have a better chance of completion
without waiting due to inconsistency limitations".  Expected shape: a
tighter update lock-counter limit throttles updates (their effective
latency rises) while query stalls stay in check; error stays within
epsilon in every configuration.
"""

from conftest import run_once

from repro.core.transactions import UNLIMITED
from repro.harness.experiments import experiment_e6_commu

LIMITS = (UNLIMITED, 2, 1)


def test_e6_commu_lock_counters(benchmark, show):
    text, data = run_once(
        benchmark, experiment_e6_commu, limits=LIMITS, count=100
    )
    show(text)

    # Error bounded by epsilon (2) in every configuration.
    for limit in LIMITS:
        assert data[limit]["max_inconsistency"] <= 2
        assert data[limit]["converged"] == 1.0

    # Tightening the update limit throttles updates: under the hot-key
    # zipfian workload, updates queue behind the counter.
    assert (
        data[1]["update_latency"] >= data[UNLIMITED]["update_latency"]
    )

    # Throughput is paid for the bounding, never improved by it.
    assert data[1]["throughput"] <= data[UNLIMITED]["throughput"] + 1e-9
