"""Extension — value-based epsilon (paper section 5.1).

The paper relates ESR to 'interdependent data management' and
'controlled inconsistency', whose spatial criteria bound the *data
value* changed asynchronously rather than the number of operations.
The library implements that as ``EpsilonSpec(value_limit=...)``:
queries bound the worst-case numeric drift they import.

Expected shape: sweeping the value budget on a fixed-deposit workload
steps the number of admitted in-flight updates — budget // deposit —
and the measured drift never exceeds the budget.
"""

import pytest

from conftest import run_once

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from repro.harness.report import render_series
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.sim.network import UniformLatency

DEPOSIT = 100
BUDGETS = (0, 150, 250, UNLIMITED)


def _run(budget):
    reset_tid_counter()
    system = ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(
            n_sites=4,
            seed=13,
            latency=UniformLatency(3.0, 6.0),
            initial=(("balance", 0),),
        ),
    )
    # Four concurrent deposits of 100, one per site.
    for i in range(4):
        system.submit_at(
            0.1 * i,
            UpdateET([IncrementOp("balance", DEPOSIT)]),
            "site%d" % i,
        )
    system.submit_at(
        0.5,
        QueryET([ReadOp("balance")], EpsilonSpec(value_limit=budget)),
        "site0",
    )
    system.run_to_quiescence()
    query = [r for r in system.results if r.et.is_query][0]
    return {
        "imported_updates": query.inconsistency,
        "waits": query.waits,
        "converged": system.converged(),
    }


def test_ext_value_epsilon(benchmark, show):
    def sweep():
        return {b: _run(b) for b in BUDGETS}

    data = run_once(benchmark, sweep)
    xs = ["inf" if b == UNLIMITED else int(b) for b in BUDGETS]
    show(render_series(
        "Extension: value-bounded queries (4 concurrent 100-unit deposits)",
        "value_budget",
        xs,
        {
            "imported": [data[b]["imported_updates"] for b in BUDGETS],
            "waits": [data[b]["waits"] for b in BUDGETS],
        },
    ))

    # Budget//deposit bounds the number of imported updates.
    assert data[0]["imported_updates"] == 0
    assert data[150]["imported_updates"] <= 1
    assert data[250]["imported_updates"] <= 2
    # Monotone in the budget.
    imports = [data[b]["imported_updates"] for b in BUDGETS]
    assert imports == sorted(imports)
    # Convergence unaffected.
    assert all(d["converged"] for d in data.values())
