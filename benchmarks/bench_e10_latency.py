"""E10 — Commit latency vs link latency (section 2.4).

Paper claim: a commit agreement protocol "is a big handicap when
network links have very low bandwidth or moderately high latency.  To
solve this problem, replica control propagates updates independently."
Expected shape: synchronous baselines' update latency grows linearly
in the link latency (multiple round trips); COMMU and RITU commit
locally at zero network cost at every point; ORDUP pays only the order
server round trip.
"""

from conftest import run_once

from repro.harness.experiments import experiment_e10_latency

LATENCIES = (0.5, 2.0, 8.0, 32.0)


def test_e10_link_latency_sweep(benchmark, show):
    text, data = run_once(
        benchmark, experiment_e10_latency, latencies=LATENCIES, count=40
    )
    show(text)

    # COMMU and RITU commit locally: flat (and ~zero) at all latencies.
    for method in ("COMMU", "RITU"):
        assert data[method][32.0] <= data[method][0.5] + 0.5

    # Synchronous methods scale with the link latency.
    for method in ("ROWA-2PC", "QUORUM", "PRIMARY"):
        assert data[method][32.0] > data[method][0.5] * 4

    # At every latency point, the async methods beat every sync one.
    for latency in LATENCIES:
        async_worst = max(
            data[m][latency] for m in ("COMMU", "RITU", "ORDUP")
        )
        sync_best = min(
            data[m][latency] for m in ("ROWA-2PC", "QUORUM", "PRIMARY")
        )
        assert async_worst < sync_best

    # ORDUP's only network cost is the order-server round trip: it
    # grows with latency but stays well under the 2PC protocols.
    assert data["ORDUP"][32.0] < data["ROWA-2PC"][32.0]
    assert data["ORDUP"][32.0] < data["QUORUM"][32.0]
