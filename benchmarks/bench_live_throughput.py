"""Live runtime — async update throughput vs the ROWA sync baseline.

The live analogue of E2: on a real 3-replica localhost TCP cluster,
asynchronous replica control (COMMU, ORDUP) commits updates at local
speed while the synchronous write-all baseline pays a round of peer
acknowledgements per commit.  Reported per method: update throughput
(ET/s) and p50/p99 query latency, with convergence checked at
quiescence.

Standalone:  PYTHONPATH=src python benchmarks/bench_live_throughput.py
Under pytest: pytest benchmarks/bench_live_throughput.py --benchmark-only
"""

import asyncio
import time

from repro.core.transactions import EpsilonSpec
from repro.live import LiveCluster

N_SITES = 3
N_UPDATES = 200
N_QUERIES = 60
KEYS = ["acct%d" % i for i in range(4)]
METHODS = ("commu", "ordup", "rowa")


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _drive(method):
    """One measured run: concurrent updates, then timed queries."""
    cluster = LiveCluster(n_sites=N_SITES, method=method)
    await cluster.start()
    try:
        clients = [await cluster.client(name) for name in cluster.names]

        t0 = time.monotonic()
        await asyncio.gather(
            *(
                clients[i % N_SITES].increment(KEYS[i % len(KEYS)], 1)
                for i in range(N_UPDATES)
            )
        )
        update_seconds = time.monotonic() - t0

        latencies = []
        spec = EpsilonSpec(import_limit=5)
        for i in range(N_QUERIES):
            client = clients[i % N_SITES]
            t1 = time.monotonic()
            await client.query([KEYS[i % len(KEYS)]], spec)
            latencies.append(time.monotonic() - t1)

        await cluster.settle(timeout=30)
        converged = await cluster.converged()
        values = (await cluster.site_values())[cluster.names[0]]
        total = sum(values.get(key, 0) for key in KEYS)
    finally:
        await cluster.stop()
    return {
        "throughput": N_UPDATES / max(update_seconds, 1e-9),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "converged": converged,
        "total": total,
    }


def run_live_throughput():
    """Run every method; return (report text, per-method data)."""
    data = {}
    for method in METHODS:
        data[method] = asyncio.run(_drive(method))
    lines = [
        "Live runtime: %d-replica localhost TCP cluster, %d update ETs, "
        "%d bounded queries" % (N_SITES, N_UPDATES, N_QUERIES),
        "",
        "%-8s %14s %12s %12s %10s"
        % ("method", "updates (ET/s)", "query p50", "query p99", "converged"),
    ]
    for method in METHODS:
        d = data[method]
        lines.append(
            "%-8s %14.0f %9.2f ms %9.2f ms %10s"
            % (
                method.upper(),
                d["throughput"],
                d["p50_ms"],
                d["p99_ms"],
                "yes" if d["converged"] else "NO",
            )
        )
    return "\n".join(lines), data


def test_live_throughput(benchmark, show):
    from conftest import run_once

    text, data = run_once(benchmark, run_live_throughput)
    show(text)

    for method in METHODS:
        assert data[method]["converged"], "%s diverged" % method
        assert data[method]["total"] == N_UPDATES, "%s lost updates" % method

    # The asynchronous methods commit without a synchronous peer round:
    # their update throughput beats the write-all baseline.
    assert data["commu"]["throughput"] > data["rowa"]["throughput"]


if __name__ == "__main__":
    started = time.monotonic()
    text, _ = run_live_throughput()
    print(text)
    print("\ntotal wall time: %.1fs" % (time.monotonic() - started))
