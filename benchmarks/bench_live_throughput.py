"""Live runtime — async update throughput vs the ROWA sync baseline,
plus a propagation-throughput mode measuring the batched pipeline.

The live analogue of E2: on a real 3-replica localhost TCP cluster,
asynchronous replica control (COMMU, ORDUP) commits updates at local
speed while the synchronous write-all baseline pays a round of peer
acknowledgements per commit.  Reported per method: update throughput
(ET/s) and p50/p99 query latency, with convergence checked at
quiescence.

The **propagation mode** isolates the inter-replica hot path: one
writer replica is partitioned off, commits a backlog of updates
locally (asynchronous commit does not need its peers), then the
partition heals and the drain of that backlog across both peer
channels is timed — pure MSet propagation, no client traffic in the
measurement window.  Run at batch sizes {1, 8, 64} (batch size 1 is
paired with window 1, reproducing the old stop-and-wait path) it shows
what batching + pipelining + group commit buy: channel MSets/sec and
mean batch-ack latency per configuration.

The **overhead mode** answers "what does the observability layer
cost on the hot path?": the same propagation drain is run with
metrics + tracing enabled and with ``observability=False`` (the null
registry), best-of-N each, and the relative throughput delta is
reported.  The acceptance bound is <5% overhead on the drain.

The **shards mode** measures what partitioning the keyspace into
independent replica groups buys on a contended mixed workload.  One
engine owning every key is a convoy: each strict (``epsilon = 0``)
query blocks on whatever lock counters are held, and every apply/ack
wakes *every* blocked query to re-check (O(blocked x events) under
one engine lock).  Sharding divides both the keyspace and the blocked
population by N, so aggregate throughput scales superlinearly in the
convoy regime even on a single core — this is contention removal, not
CPU parallelism.  Run with ``--shards 1,4`` it drives the same
updates + strict-reads workload through the ``ShardRouter`` at each
shard count and reports aggregate ops/s and the speedup.

Standalone:  PYTHONPATH=src python benchmarks/bench_live_throughput.py
             PYTHONPATH=src python benchmarks/bench_live_throughput.py \\
                 --mode propagation --quick --json
             PYTHONPATH=src python benchmarks/bench_live_throughput.py \\
                 --mode overhead --quick
             PYTHONPATH=src python benchmarks/bench_live_throughput.py \\
                 --shards 1,4 --quick --json BENCH_live_shards.json
Under pytest: pytest benchmarks/bench_live_throughput.py --benchmark-only
"""

import asyncio
import gc
import json
import os
import pathlib
import statistics
import time

from repro.core.transactions import EpsilonSpec
from repro.live import (
    FaultPlan,
    LiveCluster,
    ShardedCluster,
    persist_cluster_artifacts,
)

N_SITES = 3
N_UPDATES = 200
N_QUERIES = 60
KEYS = ["acct%d" % i for i in range(4)]
METHODS = ("commu", "ordup", "rowa")

#: propagation mode: (batch_size, window) configurations measured.
#: batch 1 / window 1 reproduces the unbatched stop-and-wait baseline.
BATCH_CONFIGS = ((1, 1), (8, 4), (64, 4))
N_PROPAGATION_UPDATES = 400
N_PROPAGATION_UPDATES_QUICK = 120


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _drive(method):
    """One measured run: concurrent updates, then timed queries."""
    cluster = LiveCluster(n_sites=N_SITES, method=method)
    await cluster.start()
    try:
        clients = [await cluster.client(name) for name in cluster.names]

        t0 = time.monotonic()
        await asyncio.gather(
            *(
                clients[i % N_SITES].increment(KEYS[i % len(KEYS)], 1)
                for i in range(N_UPDATES)
            )
        )
        update_seconds = time.monotonic() - t0

        latencies = []
        spec = EpsilonSpec(import_limit=5)
        for i in range(N_QUERIES):
            client = clients[i % N_SITES]
            t1 = time.monotonic()
            await client.query([KEYS[i % len(KEYS)]], spec)
            latencies.append(time.monotonic() - t1)

        await cluster.settle(timeout=30)
        converged = await cluster.converged()
        values = (await cluster.site_values())[cluster.names[0]]
        total = sum(values.get(key, 0) for key in KEYS)
    finally:
        await cluster.stop()
    return {
        "throughput": N_UPDATES / max(update_seconds, 1e-9),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "converged": converged,
        "total": total,
    }


def run_live_throughput():
    """Run every method; return (report text, per-method data)."""
    data = {}
    for method in METHODS:
        data[method] = asyncio.run(_drive(method))
    lines = [
        "Live runtime: %d-replica localhost TCP cluster, %d update ETs, "
        "%d bounded queries" % (N_SITES, N_UPDATES, N_QUERIES),
        "",
        "%-8s %14s %12s %12s %10s"
        % ("method", "updates (ET/s)", "query p50", "query p99", "converged"),
    ]
    for method in METHODS:
        d = data[method]
        lines.append(
            "%-8s %14.0f %9.2f ms %9.2f ms %10s"
            % (
                method.upper(),
                d["throughput"],
                d["p50_ms"],
                d["p99_ms"],
                "yes" if d["converged"] else "NO",
            )
        )
    return "\n".join(lines), data


async def _drive_propagation(
    batch_size, window, n_updates, observability=True, artifacts_dir=None
):
    """One propagation measurement: backlog behind a partition, then
    time the healed drain across both peer channels."""
    plan = FaultPlan(0)  # no link faults; partition/heal control only
    cluster = LiveCluster(
        n_sites=N_SITES,
        method="commu",
        faults=plan,
        fsync=True,  # make the group-commit effect part of the story
        batch_size=batch_size,
        window=window,
        observability=observability,
        # Tight reconnect timing so post-heal redial latency does not
        # pollute the drain measurement.
        server_options={"retry_base": 0.005, "retry_max": 0.02},
    )
    await cluster.start()
    try:
        writer = cluster.names[0]
        others = cluster.names[1:]
        client = await cluster.client(writer)
        plan.partition([[writer], others])
        for i in range(n_updates):
            await client.increment(KEYS[i % len(KEYS)], 1)
        t0 = time.monotonic()
        plan.heal_all()
        await cluster.settle(timeout=120)
        elapsed = time.monotonic() - t0
        stats = (await cluster.site_stats())[writer]
        ack_samples = [
            peer["ack_ms"]
            for peer in stats["peers"].values()
            if peer["ack_ms"] is not None
        ]
        converged = await cluster.converged()
        values = (await cluster.site_values())[writer]
        total = sum(values.get(key, 0) for key in KEYS)
        if artifacts_dir is not None:
            await persist_cluster_artifacts(
                cluster, pathlib.Path(artifacts_dir)
            )
    finally:
        await cluster.stop()
    n_msets = n_updates * (N_SITES - 1)  # each update crosses 2 channels
    return {
        "batch_size": batch_size,
        "window": window,
        "n_updates": n_updates,
        "drain_seconds": elapsed,
        "msets_per_sec": n_msets / max(elapsed, 1e-9),
        "ack_ms": (
            sum(ack_samples) / len(ack_samples) if ack_samples else None
        ),
        "converged": converged,
        "total": total,
    }


def run_propagation_throughput(
    configs=BATCH_CONFIGS, quick=False, artifacts_dir=None
):
    """Measure the propagation drain at each batch configuration."""
    n_updates = (
        N_PROPAGATION_UPDATES_QUICK if quick else N_PROPAGATION_UPDATES
    )
    data = {}
    for batch_size, window in configs:
        run_artifacts = (
            pathlib.Path(artifacts_dir) / ("batch%d" % batch_size)
            if artifacts_dir is not None
            else None
        )
        data[batch_size] = asyncio.run(
            _drive_propagation(
                batch_size, window, n_updates,
                artifacts_dir=run_artifacts,
            )
        )
    baseline = data[configs[0][0]]["msets_per_sec"]
    lines = [
        "Propagation drain: %d updates committed behind a partition, "
        "then healed and timed to settle (%d-replica COMMU cluster, "
        "fsync on)" % (n_updates, N_SITES),
        "",
        "%-6s %-7s %12s %14s %12s %10s"
        % ("batch", "window", "drain (s)", "msets/s", "ack (ms)", "speedup"),
    ]
    for batch_size, window in configs:
        d = data[batch_size]
        lines.append(
            "%-6d %-7d %12.3f %14.0f %12s %9.1fx"
            % (
                batch_size,
                window,
                d["drain_seconds"],
                d["msets_per_sec"],
                (
                    "%.2f" % d["ack_ms"]
                    if d["ack_ms"] is not None
                    else "-"
                ),
                d["msets_per_sec"] / max(baseline, 1e-9),
            )
        )
    return "\n".join(lines), data


OVERHEAD_BOUND_PCT = 5.0
OVERHEAD_CYCLES = 5
OVERHEAD_CYCLES_QUICK = 3


async def _drive_overhead(observability, n_updates, cycles):
    """Best-of-``cycles`` drain rate inside ONE cluster boot.

    A fresh cluster per sample makes the comparison hostage to boot-
    to-boot machine drift (±15% observed), which swamps the effect
    being measured; repeating the partition → backlog → heal → settle
    cycle against one booted cluster and keeping the best cycle gives
    a stable estimate of peak drain throughput.  fsync stays off so
    group-commit timing jitter does not enter the measurement — the
    point is the CPU cost of the metrics + trace calls on the hot
    path, not disk scheduling."""
    plan = FaultPlan(0)
    cluster = LiveCluster(
        n_sites=N_SITES,
        method="commu",
        faults=plan,
        fsync=False,
        batch_size=64,
        window=4,
        observability=observability,
        server_options={"retry_base": 0.005, "retry_max": 0.02},
    )
    await cluster.start()
    rates = []
    try:
        writer = cluster.names[0]
        others = cluster.names[1:]
        client = await cluster.client(writer)
        for _ in range(cycles):
            plan.partition([[writer], others])
            for i in range(n_updates):
                await client.increment(KEYS[i % len(KEYS)], 1)
            t0 = time.monotonic()
            plan.heal_all()
            await cluster.settle(timeout=120)
            elapsed = time.monotonic() - t0
            rates.append(
                n_updates * (N_SITES - 1) / max(elapsed, 1e-9)
            )
        converged = await cluster.converged()
    finally:
        await cluster.stop()
    assert converged, "overhead run diverged"
    return max(rates), rates


def run_metrics_overhead(quick=False, cycles=None):
    """Propagation drain with observability on vs off (null registry),
    reporting the relative throughput cost of the metrics + trace
    instrumentation on the hot path."""
    n_updates = (
        N_PROPAGATION_UPDATES_QUICK if quick else N_PROPAGATION_UPDATES
    )
    if cycles is None:
        cycles = OVERHEAD_CYCLES_QUICK if quick else OVERHEAD_CYCLES
    best = {}
    for enabled in (False, True):
        best[enabled], _ = asyncio.run(
            _drive_overhead(enabled, n_updates, cycles)
        )
    overhead_pct = 100.0 * (1.0 - best[True] / max(best[False], 1e-9))
    lines = [
        "Observability overhead on the propagation drain "
        "(batch=64 window=4, %d updates/cycle, best of %d cycles each)"
        % (n_updates, cycles),
        "",
        "%-16s %14s" % ("observability", "msets/s"),
        "%-16s %14.0f" % ("off (null)", best[False]),
        "%-16s %14.0f" % ("on", best[True]),
        "",
        "overhead: %.1f%% (bound: <%.0f%%)"
        % (overhead_pct, OVERHEAD_BOUND_PCT),
    ]
    data = {
        "off_msets_per_sec": best[False],
        "on_msets_per_sec": best[True],
        "overhead_pct": overhead_pct,
    }
    return "\n".join(lines), data


#: wire mode: single-channel drain, JSON codec vs negotiated binary.
#: Two sites isolate one peer channel; fsync stays off so the
#: comparison is codec CPU, not disk scheduling (same reasoning as
#: the overhead mode).  Each update is a multi-op MSet with realistic
#: string payloads — the shape the codec cost actually scales with.
WIRE_BATCH = 128
WIRE_WINDOW = 8
#: enough backlog that the timed drain runs for hundreds of ms —
#: post-heal reconnect latency (~20 ms) must be noise, not signal.
WIRE_UPDATES = 4000
WIRE_UPDATES_QUICK = 1500
WIRE_CYCLES = 3
WIRE_CYCLES_QUICK = 2
#: full-mode acceptance: regression floor for the binary fast path's
#: end-to-end drain advantage.  Measured headroom on an idle machine
#: is 1.3-1.5x; the floor sits below it so scheduler noise cannot
#: fail an honest run.  The end-to-end ratio is bounded well under
#: the codec's own >10x (see bench_micro_substrate's wire_* cases):
#: both codecs still pay the shared receive pipeline — payload parse,
#: op decode, engine apply, durable record, ack bookkeeping — so the
#: drain can only expose the JSON-only share (frame re-encode per
#: hop + log re-serialize per record), not the whole codec gap.
WIRE_SPEEDUP_BOUND = 1.2


def _wire_ops(i):
    """One update's operation list: a transfer-ish ET touching two
    counters, two string registers, and an audit append."""
    from repro.core.operations import AppendOp, IncrementOp, WriteOp

    return [
        IncrementOp("acct%d" % (i % 4), 1),
        IncrementOp("acct%d" % ((i + 1) % 4), 1),
        WriteOp("status%d" % (i % 8), "state-%016d-%08d" % (i, i * 7)),
        WriteOp("owner%d" % (i % 8), "client-%016d" % (i % 31)),
        AppendOp("audit%d" % (i % 4), {"n": i, "who": "site0"}),
    ]


class _WireRig:
    """One 2-site cluster pinned to a codec, reusable across cycles."""

    def __init__(self, wire):
        self.wire = wire
        self.plan = FaultPlan(0)
        self.cluster = LiveCluster(
            n_sites=2,
            method="commu",
            faults=self.plan,
            fsync=False,
            batch_size=WIRE_BATCH,
            window=WIRE_WINDOW,
            server_options={
                "retry_base": 0.005, "retry_max": 0.02, "wire": wire,
            },
        )
        self.client = None
        self.rates = []

    async def start(self):
        await self.cluster.start()
        self.client = await self.cluster.client(self.cluster.names[0])

    async def cycle(self, n_updates):
        """One partition → backlog → heal → timed drain."""
        writer, receiver = self.cluster.names
        self.plan.partition([[writer], [receiver]])
        # Pipelined backlog build (not part of the measurement).
        await asyncio.gather(
            *(self.client.update(_wire_ops(i)) for i in range(n_updates))
        )
        # Collect before timing: the JSON path allocates more, so a
        # collection landing inside one codec's drain (but not the
        # other's) would skew a paired cycle.
        gc.collect()
        t0 = time.monotonic()
        self.plan.heal_all()
        await self.cluster.settle(timeout=120)
        self.rates.append(n_updates / max(time.monotonic() - t0, 1e-9))

    async def finish(self, n_updates, cycles):
        cluster, wire = self.cluster, self.wire
        writer, receiver = cluster.names
        converged = await cluster.converged()
        stats = (await cluster.site_stats())[writer]
        negotiated = stats["peers"][receiver]["wire"]
        values = (await cluster.site_values())[receiver]
        total = sum(values.get("acct%d" % k, 0) for k in range(4))
        # Frames actually sent at the codec under test — negotiation
        # alone is not enough (a late hello-ack would let the drain
        # stream JSON on a channel that *reports* bin1 afterwards).
        frames = cluster.servers[writer].registry.get_sample(
            "propagation_frames_total", peer=receiver, wire_codec=wire
        )
        assert converged, "wire=%s run diverged" % wire
        expected = 2 * n_updates * cycles  # two increments per update
        assert total == expected, (
            "wire=%s lost updates (%d != %d)" % (wire, total, expected)
        )
        # The negotiation must have produced the codec under test, or
        # the comparison silently measures JSON twice.
        assert negotiated == wire, (
            "wire=%s channel negotiated %r" % (wire, negotiated)
        )
        assert frames and frames > 0, (
            "wire=%s negotiated but sent no %s-coded frames"
            % (wire, wire)
        )
        return {
            "wire": wire,
            "n_updates": n_updates,
            "cycles": cycles,
            "negotiated": negotiated,
            "msets_per_sec": max(self.rates),
            "rates": self.rates,
        }


async def _drive_wire_paired(n_updates, cycles):
    """Interleaved paired cycles: json drain, then bin1 drain,
    back-to-back inside each cycle, both clusters booted up front.

    Running the codecs minutes apart lets machine drift (a noisy
    neighbor, a background compaction) masquerade as a codec effect;
    pairing them per cycle and taking the median per-cycle ratio
    cancels drift that is slow relative to one cycle."""
    rigs = {wire: _WireRig(wire) for wire in ("json", "bin1")}
    data = {}
    try:
        for rig in rigs.values():
            await rig.start()
        for _ in range(cycles):
            for rig in rigs.values():
                await rig.cycle(n_updates)
        for wire, rig in rigs.items():
            data[wire] = await rig.finish(n_updates, cycles)
    finally:
        for rig in rigs.values():
            await rig.cluster.stop()
    return data


def run_wire_throughput(quick=False, cycles=None):
    """Drain the same multi-op backlog over one peer channel with the
    JSON codec and the negotiated binary codec; report the speedup."""
    n_updates = WIRE_UPDATES_QUICK if quick else WIRE_UPDATES
    if cycles is None:
        cycles = WIRE_CYCLES_QUICK if quick else WIRE_CYCLES
    data = asyncio.run(_drive_wire_paired(n_updates, cycles))
    ratios = [
        b / max(j, 1e-9)
        for j, b in zip(data["json"]["rates"], data["bin1"]["rates"])
    ]
    # Headline = ratio of best rates (the overhead mode's best-of
    # discipline): both codecs' best cycles run on the same freshly
    # collected heap, so this isolates the codec; later cycles add
    # shared accumulated-state cost that dilutes the ratio without
    # saying anything about the wire.  Per-cycle ratios stay in the
    # report as a drift diagnostic.
    speedup = data["bin1"]["msets_per_sec"] / max(
        data["json"]["msets_per_sec"], 1e-9
    )
    data["cycle_ratios"] = ratios
    lines = [
        "Wire codec: single-channel drain of %d multi-op updates "
        "(2-site COMMU, batch=%d window=%d, %d paired cycles)"
        % (n_updates, WIRE_BATCH, WIRE_WINDOW, cycles),
        "",
        "%-8s %12s %14s %10s"
        % ("wire", "negotiated", "best msets/s", "best"),
    ]
    for wire in ("json", "bin1"):
        d = data[wire]
        lines.append(
            "%-8s %12s %14.0f %9.2fx"
            % (
                wire,
                d["negotiated"],
                d["msets_per_sec"],
                d["msets_per_sec"]
                / max(data["json"]["msets_per_sec"], 1e-9),
            )
        )
    lines.append("")
    lines.append(
        "per-cycle bin1/json ratios: %s (median %.2fx)"
        % (
            " ".join("%.2f" % r for r in ratios),
            statistics.median(ratios),
        )
    )
    data["speedup"] = speedup
    return "\n".join(lines), data


#: shards mode: the contended mixed workload.  32 keys spread the
#: crc32 routing evenly across up to 8 groups; the strict reads are
#: the convoy — each one parks on the owning engine's condition
#: variable until its key's lock counters drain, and every apply/ack
#: wakes all parked readers on that engine to re-check.
SHARD_KEYS = ["k%03d" % i for i in range(32)]
SHARD_UPDATES = 600
SHARD_READS = 200
SHARD_UPDATES_QUICK = 240
SHARD_READS_QUICK = 80
#: full-mode acceptance: 4 shards must sustain >= 2.5x the aggregate
#: throughput of 1 shard on this workload.  Quick (CI smoke) runs
#: only require any speedup at all — shared runners are too noisy
#: for a calibrated bound.
SHARD_SPEEDUP_BOUND = 2.5


async def _drive_shards(n_shards, n_updates, n_reads):
    """One measured run: the mixed convoy workload at ``n_shards``.

    An update burst is issued with the strict (``epsilon = 0``) reads
    pipelined right behind it, and the elapsed time to *full
    completion* is measured — the reads block on the burst's pending
    lock counters, and that blocking is the effect under test, so it
    cannot be split out of the clock.  Settle/convergence/totals are
    checked after the clock stops."""
    cluster = ShardedCluster(n_shards=n_shards, replicas=N_SITES,
                             method="commu")
    await cluster.start()
    try:
        router = cluster.router()
        # Pre-dial every group: a cold dial inside the timed window
        # queues the update frames behind the handshake and lets the
        # reads reach the server first, dissolving the very backlog
        # contention being measured.
        await router.ping()
        ops = []
        for i in range(n_updates):
            ops.append(router.increment(SHARD_KEYS[i % len(SHARD_KEYS)], 1))
        for i in range(n_reads):
            ops.append(router.read(SHARD_KEYS[i % len(SHARD_KEYS)],
                                   epsilon=0))
        t0 = time.monotonic()
        await asyncio.gather(*ops)
        elapsed = time.monotonic() - t0

        await router.settle(timeout=60)
        converged = await cluster.converged()
        values = await router.values()
        total = sum(values.get(key, 0) for key in SHARD_KEYS)
    finally:
        await cluster.stop()
    n_ops = n_updates + n_reads
    return {
        "n_shards": n_shards,
        "n_updates": n_updates,
        "n_reads": n_reads,
        "seconds": elapsed,
        "ops_per_sec": n_ops / max(elapsed, 1e-9),
        "converged": converged,
        "total": total,
    }


def run_shard_scaling(counts=(1, 4), quick=False):
    """Drive the convoy workload at each shard count; report the
    aggregate ops/s and the speedup over the first count."""
    n_updates = SHARD_UPDATES_QUICK if quick else SHARD_UPDATES
    n_reads = SHARD_READS_QUICK if quick else SHARD_READS
    data = {}
    for count in counts:
        data[count] = asyncio.run(
            _drive_shards(count, n_updates, n_reads)
        )
    baseline = data[counts[0]]["ops_per_sec"]
    lines = [
        "Shard scaling: %d updates + %d strict reads over %d keys, "
        "%d-replica COMMU group per shard (cpu_count=%s)"
        % (n_updates, n_reads, len(SHARD_KEYS), N_SITES, os.cpu_count()),
        "",
        "%-8s %12s %14s %10s %10s"
        % ("shards", "elapsed (s)", "ops/s", "speedup", "converged"),
    ]
    for count in counts:
        d = data[count]
        lines.append(
            "%-8d %12.3f %14.0f %9.1fx %10s"
            % (
                count,
                d["seconds"],
                d["ops_per_sec"],
                d["ops_per_sec"] / max(baseline, 1e-9),
                "yes" if d["converged"] else "NO",
            )
        )
    return "\n".join(lines), data


def test_live_throughput(benchmark, show):
    from conftest import run_once

    text, data = run_once(benchmark, run_live_throughput)
    show(text)

    for method in METHODS:
        assert data[method]["converged"], "%s diverged" % method
        assert data[method]["total"] == N_UPDATES, "%s lost updates" % method

    # The asynchronous methods commit without a synchronous peer round:
    # their update throughput beats the write-all baseline.
    assert data["commu"]["throughput"] > data["rowa"]["throughput"]


def test_propagation_batching(benchmark, show):
    from conftest import run_once

    text, data = run_once(
        benchmark,
        run_propagation_throughput,
        configs=((1, 1), (64, 4)),
        quick=True,
    )
    show(text)

    for batch_size in (1, 64):
        d = data[batch_size]
        assert d["converged"], "batch=%d diverged" % batch_size
        assert d["total"] == d["n_updates"], (
            "batch=%d lost updates" % batch_size
        )
    # Batching + pipelining must beat stop-and-wait (the full 2x
    # criterion is asserted on the standalone run; loaded CI machines
    # get the looser bound).
    assert data[64]["msets_per_sec"] > data[1]["msets_per_sec"]


def test_wire_codec_speedup(benchmark, show):
    from conftest import run_once

    text, data = run_once(benchmark, run_wire_throughput, quick=True)
    show(text)

    # Correctness (convergence, totals, negotiation, codec-of-record)
    # is asserted inside the drive.  The calibrated regression floor
    # is asserted on the standalone full run; loaded CI machines get
    # the looser any-speedup bound.
    assert data["bin1"]["msets_per_sec"] > data["json"]["msets_per_sec"]


def test_shard_scaling(benchmark, show):
    from conftest import run_once

    text, data = run_once(
        benchmark, run_shard_scaling, counts=(1, 4), quick=True
    )
    show(text)

    expected = SHARD_UPDATES_QUICK
    for count in (1, 4):
        d = data[count]
        assert d["converged"], "shards=%d diverged" % count
        assert d["total"] == expected, "shards=%d lost updates" % count
    # The calibrated 2.5x bound is asserted on the standalone full
    # run; loaded CI machines get the looser any-speedup bound.
    assert data[4]["ops_per_sec"] > data[1]["ops_per_sec"]


def _main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=(
            "throughput", "propagation", "overhead", "wire", "shards",
            "all",
        ),
        default="all",
    )
    parser.add_argument(
        "--shards", default=None, metavar="COUNTS",
        help="comma-separated shard counts to compare (e.g. 1,4); "
        "implies --mode shards",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller propagation backlog (CI smoke runs)",
    )
    parser.add_argument(
        "--batch-sizes", default=None,
        help="comma-separated batch sizes for propagation mode "
        "(e.g. 1,64); size 1 runs with window 1, others with window 4",
    )
    parser.add_argument(
        "--json", nargs="?", const="BENCH_live_propagation.json",
        default=None, metavar="PATH",
        help="write propagation results to PATH as JSON",
    )
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist per-config metrics + trace artifacts under "
        "DIR/batch<N>/ (propagation mode)",
    )
    args = parser.parse_args(argv)
    if args.shards:
        args.mode = "shards"

    started = time.monotonic()
    if args.mode in ("throughput", "all"):
        text, _ = run_live_throughput()
        print(text)
        print()
    if args.mode in ("propagation", "all"):
        configs = BATCH_CONFIGS
        if args.batch_sizes:
            configs = tuple(
                (size, 1 if size == 1 else 4)
                for size in (
                    int(part) for part in args.batch_sizes.split(",")
                )
            )
        text, data = run_propagation_throughput(
            configs, quick=args.quick, artifacts_dir=args.artifacts
        )
        print(text)
        if args.artifacts:
            print("\nartifacts under %s/" % args.artifacts)
        for size, _ in configs:
            if not data[size]["converged"]:
                print("\nFAIL: batch=%d diverged" % size)
                return 1
            if data[size]["total"] != data[size]["n_updates"]:
                print("\nFAIL: batch=%d lost updates" % size)
                return 1
        if len(configs) > 1:
            small, large = configs[0][0], configs[-1][0]
            if data[large]["msets_per_sec"] <= data[small]["msets_per_sec"]:
                print(
                    "\nFAIL: batch=%d did not beat batch=%d"
                    % (large, small)
                )
                return 1
        if args.json:
            payload = {
                "benchmark": "live_propagation",
                "quick": args.quick,
                "results": [data[size] for size, _ in configs],
            }
            pathlib.Path(args.json).write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            print("\nwrote %s" % args.json)
    if args.mode == "overhead":
        text, data = run_metrics_overhead(quick=args.quick)
        print(text)
        if data["overhead_pct"] >= OVERHEAD_BOUND_PCT:
            print(
                "\nFAIL: observability overhead %.1f%% exceeds %.0f%%"
                % (data["overhead_pct"], OVERHEAD_BOUND_PCT)
            )
            return 1
    if args.mode == "wire":
        text, data = run_wire_throughput(quick=args.quick)
        print(text)
        speedup = data["speedup"]
        bound = 1.0 if args.quick else WIRE_SPEEDUP_BOUND
        if speedup < bound or (args.quick and speedup <= 1.0):
            print(
                "\nFAIL: bin1 speedup %.2fx below %.1fx bound"
                % (speedup, bound)
            )
            return 1
        if args.json:
            path = args.json
            if path == "BENCH_live_propagation.json":
                path = "BENCH_live_wire.json"
            payload = {
                "benchmark": "live_wire",
                "quick": args.quick,
                "cpu_count": os.cpu_count(),
                "results": [data["json"], data["bin1"]],
                "speedup": speedup,
            }
            pathlib.Path(path).write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            print("\nwrote %s" % path)
    if args.mode == "shards":
        counts = tuple(
            int(part) for part in (args.shards or "1,4").split(",")
        )
        text, data = run_shard_scaling(counts, quick=args.quick)
        print(text)
        for count in counts:
            if not data[count]["converged"]:
                print("\nFAIL: shards=%d diverged" % count)
                return 1
            if data[count]["total"] != data[count]["n_updates"]:
                print("\nFAIL: shards=%d lost updates" % count)
                return 1
        speedup = None
        if len(counts) > 1:
            base, top = counts[0], counts[-1]
            speedup = (
                data[top]["ops_per_sec"]
                / max(data[base]["ops_per_sec"], 1e-9)
            )
            bound = 1.0 if args.quick else SHARD_SPEEDUP_BOUND
            if speedup < bound or (args.quick and speedup <= 1.0):
                print(
                    "\nFAIL: shards=%d speedup %.2fx below %.1fx bound"
                    % (top, speedup, bound)
                )
                return 1
        if args.json:
            path = args.json
            if path == "BENCH_live_propagation.json":
                path = "BENCH_live_shards.json"
            payload = {
                "benchmark": "live_shards",
                "quick": args.quick,
                "cpu_count": os.cpu_count(),
                "results": [data[count] for count in counts],
                "speedup": speedup,
            }
            pathlib.Path(path).write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            print("\nwrote %s" % path)
    print("\ntotal wall time: %.1fs" % (time.monotonic() - started))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main())
