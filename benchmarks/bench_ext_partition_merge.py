"""Extension — offline partition merging vs online ESR (section 5.3).

The paper's contrast: optimistic partition handling processes logs at
reconnection time (work and backouts grow with the partition), while
ESR "control[s] divergence dynamically" and needs no reconnection
processing.  The benchmark sweeps partition duration: the offline
merger's examined-pairs and backed-out transactions grow, while the
equivalent COMMU run converges with zero reconnect work beyond its
normal queue draining.
"""

import random

import pytest

from conftest import run_once

from repro.core.operations import IncrementOp, MultiplyOp
from repro.core.transactions import UpdateET, reset_tid_counter
from repro.harness.report import render_series
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.merge import LoggedOp, merge_partition_logs
from repro.sim.failures import FailureInjector, PartitionEvent
from repro.sim.network import ConstantLatency

DURATIONS = (10, 30, 90)
RATE = 1.0  # updates per time unit per partition side


def _partition_logs(duration, seed, multiply_fraction=0.1):
    """Synthesize the two sides' logs for a partition of ``duration``."""
    rng = random.Random(seed)
    keys = ["k%d" % i for i in range(5)]

    def side(base_tid):
        log = []
        for i in range(int(duration * RATE)):
            key = rng.choice(keys)
            if rng.random() < multiply_fraction:
                op = MultiplyOp(key, 2)
            else:
                op = IncrementOp(key, rng.randint(1, 5))
            log.append(LoggedOp(base_tid + i, op))
        return log

    return side(1_000), side(2_000)


def _esr_reconnect_work(duration):
    """The same offered load run under COMMU through a real partition:
    reconnection work = messages exchanged after healing."""
    reset_tid_counter()
    system = ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(
            n_sites=2,
            seed=int(duration),
            latency=ConstantLatency(1.0),
            retry_interval=3.0,
            initial=tuple(("k%d" % i, 0) for i in range(5)),
        ),
    )
    injector = FailureInjector(
        system.sim, system.network, system.sites,
        on_heal=system.kick_queues,
    )
    injector.schedule_partition(
        PartitionEvent((("site0",), ("site1",)), at=0.0, duration=duration)
    )
    for i in range(int(duration * RATE * 2)):
        system.submit_at(
            i * 0.5,
            UpdateET([IncrementOp("k%d" % (i % 5), 1)]),
            "site%d" % (i % 2),
        )
    system.run(until=duration)
    sent_before_heal = system.network.stats.sent
    quiescence = system.run_to_quiescence()
    return {
        "catchup_messages": system.network.stats.sent - sent_before_heal,
        "catchup_time": quiescence - duration,
        "backouts": 0,  # ESR never backs out committed updates
        "converged": system.converged(),
    }


def test_ext_partition_merge(benchmark, show):
    def sweep():
        data = {}
        for duration in DURATIONS:
            log_a, log_b = _partition_logs(duration, seed=duration)
            merged = merge_partition_logs(log_a, log_b)
            esr = _esr_reconnect_work(duration)
            data[duration] = {
                "merge_pairs": merged.ops_examined,
                "merge_backouts": len(merged.backed_out),
                "esr_catchup_msgs": esr["catchup_messages"],
                "esr_backouts": esr["backouts"],
                "esr_converged": esr["converged"],
            }
        return data

    data = run_once(benchmark, sweep)
    show(render_series(
        "Extension: offline merge vs ESR reconnect, by partition length",
        "duration",
        list(DURATIONS),
        {
            "pairs": [data[d]["merge_pairs"] for d in DURATIONS],
            "backouts": [data[d]["merge_backouts"] for d in DURATIONS],
            "esr_msgs": [data[d]["esr_catchup_msgs"] for d in DURATIONS],
        },
    ))

    # Offline merge work grows superlinearly with partition length
    # (pairwise comparison), and backouts grow with it.
    assert data[90]["merge_pairs"] > data[10]["merge_pairs"] * 9
    assert data[90]["merge_backouts"] >= data[10]["merge_backouts"]
    assert data[90]["merge_backouts"] > 0

    # ESR: zero backouts at every duration, always converges.
    for duration in DURATIONS:
        assert data[duration]["esr_backouts"] == 0
        assert data[duration]["esr_converged"]
