"""E9 — Availability under partitions (sections 1, 2.2, 5.3).

Paper claims: asynchronous replica control "is robust in face of very
slow links, network partitions, and site failures"; synchronous commit
protocols block.  Expected shape: COMMU/RITU commit every update
submitted during a partition immediately; the synchronous baselines
commit none until the partition heals; ORDUP sits in between (only the
partition side holding the order server stays available); everyone
converges after healing.
"""

from conftest import run_once

from repro.harness.experiments import experiment_e9_availability


def test_e9_partition_availability(benchmark, show):
    text, data = run_once(benchmark, experiment_e9_availability, count=60)
    show(text)

    # Fully asynchronous methods: all updates commit during the
    # partition at local speed.
    assert data["COMMU"]["availability"] == 1.0
    assert data["RITU"]["availability"] == 1.0

    # Synchronous methods: nothing commits until the partition heals.
    assert data["ROWA-2PC"]["availability"] == 0.0
    assert data["QUORUM"]["availability"] == 0.0
    assert data["PRIMARY"]["availability"] == 0.0

    # ORDUP: ordering is central, so only the server-side partition
    # makes progress — strictly between the two extremes.
    assert 0.0 < data["ORDUP"]["availability"] < 1.0

    # The paper's other half: availability does not cost convergence.
    for method in data.values():
        assert method["converged"] == 1.0
