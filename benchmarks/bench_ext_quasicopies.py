"""Extension — quasi-copies vs ESR bounded queries (paper section 5.2).

The paper: "Quasi-copies ... require that all updates be 1SR. ...
Inconsistency is only introduced because quasi-copies may lag the
primary copy.  Replica control methods, in contrast, constrain the
degree of inconsistency of ETs directly."

This benchmark runs the same update/query workload under both designs
and measures what each buys:

* QUASI: updates pay the primary round trip; queries are local and may
  be stale within the closeness bound; replicas do *not* converge at
  quiescence (staleness persists by design).
* COMMU (ESR): updates commit locally; queries meter their own error
  against an epsilon budget; replicas converge exactly.
"""

import pytest

from conftest import run_once

from repro.core.operations import IncrementOp, ReadOp
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.harness.report import render_table
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.quasicopy import ClosenessSpec, QuasiCopies
from repro.sim.network import ConstantLatency


def _run(method):
    reset_tid_counter()
    system = ReplicatedSystem(
        method,
        SystemConfig(
            n_sites=4,
            seed=19,
            latency=ConstantLatency(2.0),
            initial=(("stock", 0),),
        ),
    )
    for i in range(20):
        system.submit_at(
            i * 1.0,
            UpdateET([IncrementOp("stock", 1)]),
            "site%d" % (i % 4),
        )
        system.submit_at(
            i * 1.0 + 0.5,
            QueryET([ReadOp("stock")], EpsilonSpec(import_limit=3)),
            "site%d" % ((i + 1) % 4),
        )
    quiescence = system.run_to_quiescence()
    updates = [r for r in system.results if r.et.is_update]
    queries = [r for r in system.results if r.et.is_query]
    return {
        "update_latency": sum(r.latency for r in updates) / len(updates),
        "mean_query_error": sum(r.inconsistency for r in queries)
        / len(queries),
        "max_query_error": max(r.inconsistency for r in queries),
        "converged": system.converged(),
        "quiescence": quiescence,
    }


def test_ext_quasicopies_vs_esr(benchmark, show):
    def sweep():
        return {
            "QUASI lag=2": _run(QuasiCopies(ClosenessSpec(version_lag=2))),
            "QUASI lag=8": _run(QuasiCopies(ClosenessSpec(version_lag=8))),
            "COMMU eps=3": _run(CommutativeOperations()),
        }

    data = run_once(benchmark, sweep)
    rows = [
        [
            name,
            round(d["update_latency"], 2),
            round(d["mean_query_error"], 2),
            d["max_query_error"],
            d["converged"],
        ]
        for name, d in data.items()
    ]
    show(render_table(
        "Extension: quasi-copies vs ESR (20 updates, 20 queries)",
        ["design", "upd_lat", "qry_err_mean", "qry_err_max", "converged"],
        rows,
    ))

    # Updates: ESR commits locally; quasi-copies pay the primary trip.
    assert (
        data["COMMU eps=3"]["update_latency"]
        < data["QUASI lag=2"]["update_latency"]
    )

    # Queries: a looser closeness bound means more staleness.
    assert (
        data["QUASI lag=8"]["mean_query_error"]
        >= data["QUASI lag=2"]["mean_query_error"]
    )

    # The structural difference: ESR converges exactly at quiescence;
    # quasi-copies retain bounded staleness forever.
    assert data["COMMU eps=3"]["converged"]
    assert not data["QUASI lag=8"]["converged"]

    # ESR's error is bounded by epsilon everywhere.
    assert data["COMMU eps=3"]["max_query_error"] <= 3
