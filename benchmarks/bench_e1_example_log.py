"""E1 — Reproduce the paper's worked example log (1), section 2.1.

R1(a) W1(b) W2(b) R3(a) W2(a) R3(b): not serial, not SR, but
epsilon-serial because deleting the query ET leaves a serial update
log.  Also benchmarks the checker itself on synthetic logs.
"""

from conftest import run_once

from repro.core.history import History
from repro.core.operations import IncrementOp, ReadOp, WriteOp
from repro.core.serializability import is_epsilon_serial, is_serializable
from repro.core.transactions import (
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.harness.experiments import experiment_e1_example_log


def test_e1_render(benchmark, show):
    text, data = run_once(benchmark, experiment_e1_example_log)
    show(text)
    assert data == {
        "full_log_serial": False,
        "full_log_sr": False,
        "epsilon_serial": True,
        "update_projection_serial": True,
    }


def _synthetic_log(n_txns, ops_per_txn):
    reset_tid_counter()
    history = History()
    ets = []
    for t in range(n_txns):
        if t % 3 == 2:
            et = QueryET([ReadOp("k%d" % (i % 7)) for i in range(ops_per_txn)])
        else:
            et = UpdateET(
                [IncrementOp("k%d" % (i % 7), 1) for i in range(ops_per_txn)]
            )
        history.register(et)
        ets.append(et)
    # Round-robin interleaving.
    for i in range(ops_per_txn):
        for et in ets:
            history.record(et.tid, et.operations[i])
    return history


def test_epsilon_serial_checker_throughput(benchmark, show):
    """Checker cost on a 100-transaction, 800-operation log."""
    history = _synthetic_log(100, 8)
    result = benchmark(lambda: is_epsilon_serial(history))
    assert result  # commutative updates: always epsilon-serial


def test_sr_checker_throughput(benchmark):
    history = _synthetic_log(60, 6)
    benchmark(lambda: is_serializable(history))
