"""Ablation — COMPE's decision delay: optimism window vs query exposure.

The longer a global update stays undecided, the longer queries carry
its potential-compensation charge (waits for strict queries, imported
error for relaxed ones) and the more finished queries turn out
post-hoc inconsistent when it aborts.  Sweeping the decision delay
quantifies the paper's warning that unbounded compensation exposure
breaks query error bounds (section 4.2).
"""

import pytest

from conftest import run_once

from repro.core.transactions import reset_tid_counter
from repro.harness.report import render_series
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.compe import CompensationBased
from repro.sim.network import UniformLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive

DELAYS = (2.0, 8.0, 24.0)


def _run(delay):
    reset_tid_counter()
    config = SystemConfig(
        n_sites=3,
        seed=23,
        latency=UniformLatency(0.5, 1.5),
        initial=tuple(("x%d" % i, 1) for i in range(5)),
    )
    system = ReplicatedSystem(
        CompensationBased(decision_delay=delay), config
    )
    spec = WorkloadSpec(
        n_keys=5,
        count=80,
        query_fraction=0.5,
        style="commutative",
        epsilon=2,
        mean_interarrival=0.8,
        abort_rate=0.2,
    )
    drive(
        system,
        WorkloadGenerator(spec, sorted(system.sites), 7).generate(),
        compe_aborts=True,
    )
    system.run_to_quiescence()
    queries = [r for r in system.results if r.et.is_query]
    return {
        "query_waits": sum(r.waits for r in queries),
        "mean_error": sum(r.inconsistency for r in queries) / len(queries),
        "post_hoc": system.method.stats.post_hoc_inconsistent_queries,
        "converged": system.converged(),
    }


def test_ablation_compe_decision_delay(benchmark, show):
    def sweep():
        return {delay: _run(delay) for delay in DELAYS}

    data = run_once(benchmark, sweep)
    show(render_series(
        "Ablation: COMPE decision delay (20% aborts, query eps=2)",
        "delay",
        list(DELAYS),
        {
            "waits": [data[d]["query_waits"] for d in DELAYS],
            "mean_err": [round(data[d]["mean_error"], 2) for d in DELAYS],
            "post_hoc": [data[d]["post_hoc"] for d in DELAYS],
        },
    ))

    # Convergence is delay-independent.
    assert all(d["converged"] for d in data.values())

    # A longer optimism window means more query stalling: undecided
    # updates hold their conservative charge longer.
    assert data[24.0]["query_waits"] > data[2.0]["query_waits"]
