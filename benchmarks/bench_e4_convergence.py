"""E4 — Divergence over time and convergence at quiescence (§2.2).

Paper claim: "under ESR all replicas converge to the same 1SR value
when the update MSets queued at individual sites are processed, and the
system reaches a quiescent state."  Expected shape: divergence rises
while a partition blocks propagation, then collapses to exactly zero
after healing + quiescence.
"""

from conftest import run_once

from repro.harness.experiments import experiment_e4_convergence


def test_e4_convergence(benchmark, show):
    text, data = run_once(benchmark, experiment_e4_convergence, count=60)
    show(text)

    # Divergence was really exercised: the partition forced the
    # replicas visibly apart...
    assert data["peak_divergence"] > 0

    # ...and quiescence drove it back to exactly zero (the paper's
    # convergence guarantee, not merely "small").
    assert data["final_divergence"] == 0.0

    # Divergence during the partition window exceeds the settled tail.
    times, divergences = data["times"], data["divergences"]
    during = [
        d for t, d in zip(times, divergences) if 10.0 <= t <= 50.0
    ]
    after = [d for t, d in zip(times, divergences) if t > 80.0]
    assert max(during) > max(after or [0.0])
