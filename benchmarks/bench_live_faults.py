"""Live runtime under faults — availability and invariants during chaos.

The live analogue of E9 (availability during a partition), escalated:
a real 3-replica TCP cluster runs a seeded schedule of frame drops,
delays, duplications, and reordering, plus one network partition and
(for COMMU) one crash/restart — while a concurrent update/query
workload keeps hammering it.  Reported per method: update
acknowledgement rate under fault pressure, bounded-query availability,
the fail-fast latency of ``epsilon = 0`` reads at the partitioned
replica, the injected fault counts, and the invariant verdict (no
acked-update loss, no epsilon breach, convergence after heal).

ORDUP runs without the crash phase: a crash between order-token grant
and durable logging leaves a gap that stalls the global order (a
documented limitation; see docs/LIVE.md).

Each run persists its observability artifacts (per-site Prometheus
text, combined metrics JSON, merged lifecycle trace) under
``BENCH_live_faults_artifacts/<method>/`` when run standalone with
``--artifacts``.

Standalone:  PYTHONPATH=src python benchmarks/bench_live_faults.py
             PYTHONPATH=src python benchmarks/bench_live_faults.py \\
                 --artifacts BENCH_live_faults_artifacts
Under pytest: pytest benchmarks/bench_live_faults.py --benchmark-only
"""

import pathlib
import time

from repro.live import ChaosConfig, run_chaos_sync

SEED = 7
METHODS = ("commu", "ordup")


def _config(method):
    return ChaosConfig(
        seed=SEED,
        n_sites=3,
        method=method,
        n_updates=120,
        n_queries=36,
        workload_duration=3.5,
        drop=0.08,
        duplicate=0.05,
        reorder=0.10,
        delay_max=0.012,
        partition_at=0.3,
        partition_duration=1.8,
        crash=(method == "commu"),
        crash_at=2.4,
        crash_duration=0.4,
    )


def run_live_faults(artifacts_dir=None):
    """Run the chaos scenario per method; return (text, reports)."""
    reports = {}
    for method in METHODS:
        method_artifacts = (
            pathlib.Path(artifacts_dir) / method
            if artifacts_dir is not None
            else None
        )
        reports[method] = run_chaos_sync(
            _config(method), artifacts_dir=method_artifacts
        )
    lines = [
        "Live runtime under faults: seeded chaos (seed=%d), 3 replicas, "
        "drops+delays+dups+reorder, 1 partition, crash/restart on COMMU"
        % SEED,
        "",
        "%-8s %10s %10s %14s %12s %10s"
        % (
            "method",
            "acked",
            "answered",
            "eps0 refuse",
            "faults",
            "invariants",
        ),
    ]
    for method in METHODS:
        r = reports[method]
        injected = sum(
            r.fault_counts.get(k, 0)
            for k in ("dropped", "duplicated", "delayed", "reordered")
        )
        elapsed, code = r.strict_probe if r.strict_probe else (0.0, "?")
        lines.append(
            "%-8s %6d/%-3d %6d/%-3d %7.0fms %s %9d %10s"
            % (
                method.upper(),
                sum(r.acked.values()),
                sum(r.attempted.values()),
                r.queries_ok,
                r.queries_ok + r.bounded_failures,
                elapsed * 1e3,
                code[:4],
                injected,
                "held" if r.ok else "BROKEN",
            )
        )
    for method in METHODS:
        problems = reports[method].violations()
        for problem in problems:
            lines.append("  %s: %s" % (method.upper(), problem))
    return "\n".join(lines), reports


def test_live_faults(benchmark, show):
    from conftest import run_once

    text, reports = run_once(benchmark, run_live_faults)
    show(text)

    for method in METHODS:
        report = reports[method]
        assert report.violations() == [], report.render()
        # The run exercised real fault pressure, not a clean network.
        assert report.fault_counts["dropped"] > 0
        assert report.fault_counts["blocked"] > 0
        # Honest degradation was observed at the partitioned replica.
        elapsed, code = report.strict_probe
        assert code == "UNAVAILABLE" and elapsed < 1.0
        assert report.partition_bounded_ok is True
        # Availability: fault pressure must not collapse throughput —
        # the overwhelming majority of updates still acknowledge.
        acked = sum(report.acked.values())
        attempted = sum(report.attempted.values())
        assert acked >= 0.9 * attempted


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist per-method metrics + trace artifacts under "
        "DIR/<method>/",
    )
    args = parser.parse_args()
    started = time.monotonic()
    text, reports = run_live_faults(artifacts_dir=args.artifacts)
    print(text)
    if args.artifacts:
        for method in METHODS:
            print(
                "%s artifacts: %s"
                % (method, reports[method].artifacts.get("dir", "-"))
            )
    print("\ntotal wall time: %.1fs" % (time.monotonic() - started))
