"""Live runtime under faults — availability and invariants during chaos.

The live analogue of E9 (availability during a partition), escalated:
a real 3-replica TCP cluster runs a seeded schedule of frame drops,
delays, duplications, and reordering, plus one network partition and
(for COMMU) one crash/restart — while a concurrent update/query
workload keeps hammering it.  Reported per method: update
acknowledgement rate under fault pressure, bounded-query availability,
the fail-fast latency of ``epsilon = 0`` reads at the partitioned
replica, the injected fault counts, and the invariant verdict (no
acked-update loss, no epsilon breach, convergence after heal).

ORDUP runs without the crash phase in faults mode: the chaos crash is
uncoordinated, and an origin that dies between order-token grant and
durable logging leaves a sequence gap that stalls the global order (a
documented liveness limitation; see docs/LIVE.md).  Sequencer crashes
are measured separately by ``--mode elect``, which kills the elected
leader at quiescence and reports the *failover blackout window* —
crash to first survivor-acknowledged update, spanning failure
detection, the epoch-bumping election, and order re-acquisition —
across several seeds, persisting the numbers to
``BENCH_live_elect.json`` with ``--json``.

Each run persists its observability artifacts (per-site Prometheus
text, combined metrics JSON, merged lifecycle trace) under
``BENCH_live_faults_artifacts/<method>/`` when run standalone with
``--artifacts``.

``--mode rejoin`` measures recovery instead: a wiped replica rejoins
a 3-site cluster once via snapshot catch-up (anti-entropy transfer of
a compacted checkpoint) and once via full channel replay (catch-up
disabled, every surviving log record re-delivered and re-applied).
The workload is donor-only so replay *can* fully recover the victim —
that is the fairest possible ground for the baseline, and snapshot
catch-up must still beat it on records re-applied at the victim.

``--mode saga`` measures COMPE compensation-storm recovery: sagas are
submitted across a 3-replica cluster, roughly half are aborted
(backward recovery fans compensating operations out to every replica),
and one replica is disk-wipe crashed in the middle of the storm.
Reported per seed: sagas committed/aborted, compensations applied
cluster-wide, compensation-log records written, the idempotence
re-issue delta (must be zero), the victim's snapshot-install rejoin,
and the exact-convergence verdict.  ``--json`` persists the numbers to
``BENCH_live_saga.json``.

Standalone:  PYTHONPATH=src python benchmarks/bench_live_faults.py
             PYTHONPATH=src python benchmarks/bench_live_faults.py \\
                 --artifacts BENCH_live_faults_artifacts
             PYTHONPATH=src python benchmarks/bench_live_faults.py \\
                 --mode rejoin
             PYTHONPATH=src python benchmarks/bench_live_faults.py \\
                 --mode elect --json
             PYTHONPATH=src python benchmarks/bench_live_faults.py \\
                 --mode saga --json
Under pytest: pytest benchmarks/bench_live_faults.py --benchmark-only
"""

import asyncio
import json
import pathlib
import time

from repro.live import (
    ChaosConfig,
    ElectConfig,
    LiveCluster,
    SagaConfig,
    run_chaos_sync,
    run_elect_sync,
    run_saga_sync,
)

SEED = 7
METHODS = ("commu", "ordup")


def _config(method):
    return ChaosConfig(
        seed=SEED,
        n_sites=3,
        method=method,
        n_updates=120,
        n_queries=36,
        workload_duration=3.5,
        drop=0.08,
        duplicate=0.05,
        reorder=0.10,
        delay_max=0.012,
        partition_at=0.3,
        partition_duration=1.8,
        crash=(method == "commu"),
        crash_at=2.4,
        crash_duration=0.4,
    )


def run_live_faults(artifacts_dir=None):
    """Run the chaos scenario per method; return (text, reports)."""
    reports = {}
    for method in METHODS:
        method_artifacts = (
            pathlib.Path(artifacts_dir) / method
            if artifacts_dir is not None
            else None
        )
        reports[method] = run_chaos_sync(
            _config(method), artifacts_dir=method_artifacts
        )
    lines = [
        "Live runtime under faults: seeded chaos (seed=%d), 3 replicas, "
        "drops+delays+dups+reorder, 1 partition, crash/restart on COMMU"
        % SEED,
        "",
        "%-8s %10s %10s %14s %12s %10s"
        % (
            "method",
            "acked",
            "answered",
            "eps0 refuse",
            "faults",
            "invariants",
        ),
    ]
    for method in METHODS:
        r = reports[method]
        injected = sum(
            r.fault_counts.get(k, 0)
            for k in ("dropped", "duplicated", "delayed", "reordered")
        )
        elapsed, code = r.strict_probe if r.strict_probe else (0.0, "?")
        lines.append(
            "%-8s %6d/%-3d %6d/%-3d %7.0fms %s %9d %10s"
            % (
                method.upper(),
                sum(r.acked.values()),
                sum(r.attempted.values()),
                r.queries_ok,
                r.queries_ok + r.bounded_failures,
                elapsed * 1e3,
                code[:4],
                injected,
                "held" if r.ok else "BROKEN",
            )
        )
    for method in METHODS:
        problems = reports[method].violations()
        for problem in problems:
            lines.append("  %s: %s" % (method.upper(), problem))
    return "\n".join(lines), reports


REJOIN_UPDATES = 600


async def _rejoin_variant(snapshot_catchup):
    """Wipe-and-rejoin one replica; recover via snapshot or replay.

    Returns a dict with the rejoin wall time, how many records the
    victim had to re-apply through peer channels, and the invariant
    verdict (convergence, no acked-update loss).
    """
    cluster = LiveCluster(
        n_sites=3,
        method="commu",
        heartbeat_interval=0.15,
        suspect_after=0.6,
        server_options={"catchup": snapshot_catchup},
    )
    await cluster.start()
    try:
        victim = cluster.names[-1]
        donors = cluster.names[:-1]
        clients = {name: await cluster.client(name) for name in donors}
        # Donor-only workload: every record the victim loses to the
        # wipe survives in a donor outbox, so pure channel replay can
        # (slowly) recover everything and the comparison is fair.
        acked = 0
        for i in range(REJOIN_UPDATES):
            donor = donors[i % len(donors)]
            await clients[donor].increment("k%d" % (i % 8), 1)
            acked += 1
        await cluster.settle()
        if snapshot_catchup:
            # Checkpoint + compact: donor logs can no longer serve
            # seq 1, so the wiped victim *must* take the snapshot.
            await cluster.snapshot_all()
        before = await cluster.site_values()

        await cluster.wipe(victim)
        started = time.monotonic()
        await cluster.restart(victim)
        if snapshot_catchup:
            await cluster.wait_caught_up(victim)
        # settle() alone is not enough: a donor looks drained until
        # the victim's first heartbeat-ack exposes the regression, so
        # wait for the values themselves to agree.
        deadline = started + 120.0
        while time.monotonic() < deadline:
            await cluster.settle(timeout=120.0)
            if await cluster.converged():
                break
            await asyncio.sleep(0.05)
        rejoin_seconds = time.monotonic() - started

        stats = await cluster.site_stats()
        vstats = stats[victim]
        replayed = sum(
            int(vstats["inbox_frontier"][src])
            - int(vstats["log_bases"]["inbox"][src])
            for src in donors
        )
        return {
            "mode": "snapshot" if snapshot_catchup else "replay",
            "acked": acked,
            "rejoin_seconds": rejoin_seconds,
            "replayed": replayed,
            "installs": int(vstats["catchup_installs"]),
            "converged": await cluster.converged(),
            "lost": _canonical_diff(before, await cluster.site_values()),
        }
    finally:
        await cluster.stop()


def _canonical_diff(before, after):
    """Keys whose pre-wipe value regressed anywhere after rejoin."""
    lost = []
    reference = before[sorted(before)[0]]
    for site_values in after.values():
        for key, value in reference.items():
            if site_values.get(key) != value:
                lost.append(key)
    return sorted(set(lost))


def run_live_rejoin():
    """Snapshot catch-up vs full replay for a wiped replica."""
    results = [
        asyncio.run(_rejoin_variant(True)),
        asyncio.run(_rejoin_variant(False)),
    ]
    lines = [
        "Wiped-replica rejoin: 3 replicas (COMMU), %d donor updates, "
        "victim disk wiped, then restarted" % REJOIN_UPDATES,
        "",
        "%-10s %10s %12s %10s %10s %10s"
        % ("recovery", "rejoin s", "re-applied", "installs", "converged",
           "lost"),
    ]
    for r in results:
        lines.append(
            "%-10s %9.2fs %8d rec %10d %10s %10d"
            % (
                r["mode"],
                r["rejoin_seconds"],
                r["replayed"],
                r["installs"],
                "yes" if r["converged"] else "NO",
                len(r["lost"]),
            )
        )
    snap, replay = results
    lines.append("")
    lines.append(
        "snapshot catch-up re-applied %d/%d of the records full replay "
        "did (%.1fx wall time)"
        % (
            snap["replayed"],
            replay["replayed"],
            snap["rejoin_seconds"] / max(replay["rejoin_seconds"], 1e-9),
        )
    )
    return "\n".join(lines), results


ELECT_SEEDS = (7, 11, 23)


def run_live_elect(artifacts_dir=None):
    """Sequencer failover across seeds; return (text, reports, json)."""
    reports = []
    for seed in ELECT_SEEDS:
        seed_artifacts = (
            pathlib.Path(artifacts_dir) / ("seed%d" % seed)
            if artifacts_dir is not None
            else None
        )
        reports.append(
            run_elect_sync(
                ElectConfig(seed=seed), artifacts_dir=seed_artifacts
            )
        )
    config = reports[0].config
    lines = [
        "Sequencer failover: 3 replicas (ORDUP), leader killed at "
        "quiescence, blackout = crash -> first survivor-acked update "
        "(heartbeat %.2fs, suspect %.2fs, dead at 3x)"
        % (config.heartbeat_interval, config.suspect_after),
        "",
        "%-6s %10s %14s %12s %10s %10s"
        % ("seed", "blackout", "leader", "epoch", "acked", "invariants"),
    ]
    for r in reports:
        lines.append(
            "%-6d %8.2fs %14s %12d %6d/%-3d %10s"
            % (
                r.config.seed,
                r.blackout_seconds,
                "%s>%s" % (r.old_leader, r.new_leader or "?"),
                r.epoch_after,
                sum(r.acked.values()),
                sum(r.attempted.values()),
                "held" if r.ok else "BROKEN",
            )
        )
    for r in reports:
        for problem in r.violations():
            lines.append("  seed %d: %s" % (r.config.seed, problem))
    blackouts = [r.blackout_seconds for r in reports]
    lines.append("")
    lines.append(
        "blackout window: min %.2fs / mean %.2fs / max %.2fs over %d "
        "seeds (budget %.1fs)"
        % (
            min(blackouts),
            sum(blackouts) / len(blackouts),
            max(blackouts),
            len(blackouts),
            config.blackout_limit,
        )
    )
    payload = {
        "benchmark": "live_elect",
        "method": config.method,
        "n_sites": config.n_sites,
        "heartbeat_interval": config.heartbeat_interval,
        "suspect_after": config.suspect_after,
        "blackout_limit": config.blackout_limit,
        "blackout_seconds": {
            "min": min(blackouts),
            "mean": sum(blackouts) / len(blackouts),
            "max": max(blackouts),
        },
        "per_seed": [
            {
                "seed": r.config.seed,
                "blackout_seconds": r.blackout_seconds,
                "old_leader": r.old_leader,
                "new_leader": r.new_leader,
                "epoch_after": r.epoch_after,
                "acked": sum(r.acked.values()),
                "attempted": sum(r.attempted.values()),
                "update_failures": r.update_failures,
                "converged": r.converged,
                "violations": r.violations(),
            }
            for r in reports
        ],
    }
    return "\n".join(lines), reports, payload


SAGA_SEEDS = (7, 11, 23)


def run_live_saga(artifacts_dir=None):
    """COMPE compensation storm across seeds; (text, reports, json)."""
    reports = []
    for seed in SAGA_SEEDS:
        seed_artifacts = (
            pathlib.Path(artifacts_dir) / ("seed%d" % seed)
            if artifacts_dir is not None
            else None
        )
        reports.append(
            run_saga_sync(
                SagaConfig(seed=seed), artifacts_dir=seed_artifacts
            )
        )
    config = reports[0].config
    lines = [
        "COMPE compensation storm: %d replicas, %d sagas x %d steps, "
        "~%d%% aborted, victim disk-wiped mid-storm, snapshot rejoin"
        % (
            config.n_sites,
            config.n_sagas,
            config.steps_per_saga,
            int(config.abort_fraction * 100),
        ),
        "",
        "%-6s %12s %12s %10s %10s %10s %10s"
        % (
            "seed",
            "aborted",
            "compensate",
            "log recs",
            "reissue",
            "wall",
            "invariants",
        ),
    ]
    for r in reports:
        lines.append(
            "%-6d %6d/%-5d %12d %10d %10d %9.1fs %10s"
            % (
                r.config.seed,
                r.sagas_aborted,
                r.sagas_aborted + r.sagas_committed,
                r.compensations_total,
                r.compensation_log_records_total,
                r.reissue_decided + r.reissue_compensation_delta,
                r.wall_seconds,
                "held" if r.ok else "BROKEN",
            )
        )
    for r in reports:
        for problem in r.violations():
            lines.append("  seed %d: %s" % (r.config.seed, problem))
    total_comp = sum(r.compensations_total for r in reports)
    lines.append("")
    lines.append(
        "%d compensations applied across %d seeds; every run converged "
        "to the exact committed-effects prediction through the "
        "mid-storm disk wipe" % (total_comp, len(reports))
        if all(r.ok for r in reports)
        else "%d compensations applied across %d seeds; INVARIANT "
        "VIOLATIONS above" % (total_comp, len(reports))
    )
    payload = {
        "benchmark": "live_saga",
        "method": config.method,
        "n_sites": config.n_sites,
        "n_sagas": config.n_sagas,
        "steps_per_saga": config.steps_per_saga,
        "abort_fraction": config.abort_fraction,
        "per_seed": [
            {
                "seed": r.config.seed,
                "sagas_committed": r.sagas_committed,
                "sagas_aborted": r.sagas_aborted,
                "steps_compensated": r.steps_compensated,
                "compensations_total": r.compensations_total,
                "compensation_log_records_total": (
                    r.compensation_log_records_total
                ),
                "reissue_decided": r.reissue_decided,
                "reissue_compensation_delta": (
                    r.reissue_compensation_delta
                ),
                "catchup_installs": r.catchup_installs,
                "converged": r.converged,
                "wall_seconds": r.wall_seconds,
                "violations": r.violations(),
            }
            for r in reports
        ],
    }
    return "\n".join(lines), reports, payload


def test_live_saga(benchmark, show):
    from conftest import run_once

    text, reports, payload = run_once(benchmark, run_live_saga)
    show(text)

    for report in reports:
        assert report.violations() == [], report.render()
        # The storm was real: aborts happened and fanned compensating
        # operations out to every replica.
        assert report.sagas_aborted > 0
        assert report.compensations_total > 0
        assert report.compensation_log_records_total > 0
        # Re-issuing every abort decision moved nothing: replay of the
        # compensation path is idempotent.
        assert report.reissue_decided == 0
        assert report.reissue_compensation_delta == 0


def test_live_elect(benchmark, show):
    from conftest import run_once

    text, reports, payload = run_once(benchmark, run_live_elect)
    show(text)

    for report in reports:
        assert report.violations() == [], report.render()
        # The blackout window is bounded well inside the budget: the
        # detector needs 3x suspect_after to declare the leader dead,
        # and everything after (election + lease + retry) is fast.
        assert report.blackout_seconds <= report.config.blackout_limit
        assert report.epoch_after > report.epoch_before
        assert report.new_leader and report.new_leader != report.old_leader


def test_live_rejoin(benchmark, show):
    from conftest import run_once

    text, results = run_once(benchmark, run_live_rejoin)
    show(text)

    snap, replay = results
    for r in results:
        assert r["converged"], r
        assert r["lost"] == [], r
    # The snapshot path installed at least one checkpoint and skipped
    # channel replay almost entirely; the replay baseline re-applied
    # every surviving record one by one.
    assert snap["installs"] >= 1
    assert replay["installs"] == 0
    assert replay["replayed"] >= REJOIN_UPDATES
    assert snap["replayed"] < 0.5 * replay["replayed"]
    # "Measurably faster": catch-up must not be slower than replay.
    assert snap["rejoin_seconds"] <= replay["rejoin_seconds"]


def test_live_faults(benchmark, show):
    from conftest import run_once

    text, reports = run_once(benchmark, run_live_faults)
    show(text)

    for method in METHODS:
        report = reports[method]
        assert report.violations() == [], report.render()
        # The run exercised real fault pressure, not a clean network.
        assert report.fault_counts["dropped"] > 0
        assert report.fault_counts["blocked"] > 0
        # Honest degradation was observed at the partitioned replica.
        elapsed, code = report.strict_probe
        assert code == "UNAVAILABLE" and elapsed < 1.0
        assert report.partition_bounded_ok is True
        # Availability: fault pressure must not collapse throughput —
        # the overwhelming majority of updates still acknowledge.
        acked = sum(report.acked.values())
        attempted = sum(report.attempted.values())
        assert acked >= 0.9 * attempted


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("faults", "rejoin", "elect", "saga"),
        default="faults",
        help="'faults' = chaos availability run (default); 'rejoin' = "
        "snapshot catch-up vs full-replay recovery of a wiped replica; "
        "'elect' = sequencer-failover blackout window across seeds; "
        "'saga' = COMPE compensation-storm recovery across seeds",
    )
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist per-run metrics + trace artifacts under "
        "DIR/<method or seed>/ (faults, elect, and saga modes)",
    )
    parser.add_argument(
        "--json", metavar="FILE", nargs="?", const="", default=None,
        help="elect/saga modes: write the numbers to FILE (default "
        "BENCH_live_elect.json / BENCH_live_saga.json)",
    )
    args = parser.parse_args()
    if args.json == "":
        # Bare --json: pick the mode's canonical artifact name.
        args.json = "BENCH_live_%s.json" % args.mode
    started = time.monotonic()
    if args.mode == "saga":
        text, _, payload = run_live_saga(artifacts_dir=args.artifacts)
        print(text)
        if args.json:
            pathlib.Path(args.json).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print("\nwrote %s" % args.json)
    elif args.mode == "elect":
        text, _, payload = run_live_elect(artifacts_dir=args.artifacts)
        print(text)
        if args.json:
            pathlib.Path(args.json).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print("\nwrote %s" % args.json)
    elif args.mode == "rejoin":
        text, _ = run_live_rejoin()
        print(text)
    else:
        text, reports = run_live_faults(artifacts_dir=args.artifacts)
        print(text)
        if args.artifacts:
            for method in METHODS:
                print(
                    "%s artifacts: %s"
                    % (method, reports[method].artifacts.get("dir", "-"))
                )
    print("\ntotal wall time: %.1fs" % (time.monotonic() - started))
