"""Live runtime — epsilon-budget read scaling across replicas.

The paper's Table 1 asymmetry is that queries tolerating a bounded
inconsistency import (``epsilon > 0``) need none of the update path's
coordination — so read *service* capacity should scale with the number
of replicas allowed to serve, while strict (``epsilon = 0``) reads stay
pinned to a single consistent serving replica and gain nothing.

This benchmark measures exactly that, on one fixed 3-replica COMMU
cluster (replication factor held constant — the comparison is *how
many replicas may serve reads*, not cluster size), on a single core:

* WAN-profile link delays are injected on the primary's peer channels,
  so an update's MSet holds its COMMU lock counters at the origin for
  the peer round-trip.  Under a steady write stream the primary always
  has in-flight updates charging inconsistency to overlapping reads.
* **pinned**: every bounded (``epsilon > 0``) read is served by the
  primary.  Each read overlapping the write stream must either wait
  out lock holders or fit the charge inside its budget — reads and
  writes convoy on one replica.
* **fan-out**: the same reads spread across all 3 replicas, weighted
  by applied-frontier lag.  At the secondaries the stream's updates
  have either not arrived or are already applied — an instant bounded
  read overlaps nothing and completes immediately.

The scaling is therefore *contention removal* (blocked wall-clock
time eliminated), not CPU parallelism — the honest mechanism on a
1-core host, same as the shards mode of ``bench_live_throughput``.

Acceptance (written to ``BENCH_live_reads.json``):

* bounded reads, 3 serving replicas vs 1: **>= 2x** throughput;
* strict reads (pin to the primary in both configurations): **no
  scaling** (ratio ~1);
* every server-served read's reported inconsistency ``<= epsilon``
  (the engine blocks rather than exceed a budget — checked on every
  single read of the run);
* every cache-served read's import estimate ``<= epsilon``;
* SESSION reads under fan-out never miss the session's own writes.

Standalone:  PYTHONPATH=src python benchmarks/bench_live_reads.py
             PYTHONPATH=src python benchmarks/bench_live_reads.py \\
                 --quick --json BENCH_live_reads.json
Under pytest: pytest benchmarks/bench_live_reads.py --benchmark-only
"""

import asyncio
import json
import pathlib
import random
import time

from repro.consistency import Consistency, ReadOptions
from repro.core.transactions import UNLIMITED
from repro.errors import ETError
from repro.live import FaultPlan, LinkFaults, LiveCluster
from repro.live.client import LiveClient
from repro.live.read_cache import EpsilonReadCache

N_SITES = 3
HOT_KEYS = ["hot%d" % i for i in range(4)]
EPSILON = 4.0
#: peer-link one-way delay range (primary <-> peers), seconds.  Long
#: enough that in-flight updates dependably hold their origin lock
#: counters across a read, short enough to keep runs quick.
LINK_DELAY = (0.02, 0.05)
N_WRITERS = 8
#: pause between a writer's increments — paces the stream so a steady
#: handful of updates is always in flight (holding origin lock
#: counters) without flooding the propagation queues.
WRITER_PAUSE = 0.01
MEASURE_SECONDS = 4.0
MEASURE_SECONDS_QUICK = 1.5
N_READERS = 12


def _read_opts(epsilon, fan_out):
    if epsilon == 0:
        level = Consistency.STRICT
    else:
        level = Consistency.BOUNDED(epsilon)
    return ReadOptions(
        consistency=level, prefer="any" if fan_out else "primary"
    )


async def _start_cluster(tmpdir, seed):
    faults = FaultPlan(seed=seed)
    slow = LinkFaults(delay_min=LINK_DELAY[0], delay_max=LINK_DELAY[1])
    primary = "site0"
    for i in range(1, N_SITES):
        peer = "site%d" % i
        faults.set_link(primary, peer, slow)
        faults.set_link(peer, primary, slow)
    cluster = LiveCluster(
        n_sites=N_SITES, method="commu", data_dir=tmpdir, faults=faults
    )
    await cluster.start()
    return cluster


async def _writer_stream(cluster, stop, counters):
    """N_WRITERS coroutines incrementing the hot keys at the primary
    back-to-back; each in-flight update holds COMMU lock counters at
    the origin until the (delayed) peer acks return."""
    client = await cluster.client(cluster.names[0])

    async def one(index):
        rng = random.Random(1000 + index)
        while not stop.is_set():
            key = HOT_KEYS[rng.randrange(len(HOT_KEYS))]
            try:
                await client.increment(key)
                counters["writes"] += 1
            except (ETError, ConnectionError, OSError):
                pass
            await asyncio.sleep(WRITER_PAUSE)

    return [asyncio.ensure_future(one(i)) for i in range(N_WRITERS)]


async def _measure_reads(cluster, epsilon, fan_out, seconds, seed):
    """Closed-loop readers for ``seconds``; returns throughput plus the
    budget-compliance evidence for every single read."""
    opts = _read_opts(epsilon, fan_out)
    client = LiveClient(
        list(cluster.addrs.values()),
        request_timeout=max(2.0, seconds),
        fan_out=fan_out,
        rng=random.Random(seed),
    )
    await client._ensure_connected()
    if fan_out:
        # Learn the replica set once up front so the first reads
        # already have fan-out candidates.
        await client.stats()
    completed = 0
    served_by = {}
    max_inconsistency = 0.0
    budget_violations = 0
    loop = asyncio.get_event_loop()
    deadline = loop.time() + seconds

    async def reader(index):
        nonlocal completed, max_inconsistency, budget_violations
        rng = random.Random(2000 + index)
        while loop.time() < deadline:
            key = HOT_KEYS[rng.randrange(len(HOT_KEYS))]
            try:
                result = await client.query([key], opts)
            except (ETError, ConnectionError, OSError):
                continue
            completed += 1
            served_by[result.served_by] = (
                served_by.get(result.served_by, 0) + 1
            )
            observed = result.inconsistency or 0
            max_inconsistency = max(max_inconsistency, observed)
            if epsilon != UNLIMITED and observed > epsilon:
                budget_violations += 1

    started = loop.time()
    await asyncio.gather(*(reader(i) for i in range(N_READERS)))
    elapsed = loop.time() - started
    await client.close()
    return {
        "epsilon": epsilon,
        "fan_out": fan_out,
        "completed": completed,
        "seconds": round(elapsed, 3),
        "reads_per_sec": completed / max(elapsed, 1e-9),
        "served_by": served_by,
        "max_inconsistency": max_inconsistency,
        "budget_violations": budget_violations,
    }


async def _measure_cache(cluster, rounds, seed):
    """Read-through cache under the write stream: hit ratio plus the
    per-hit budget compliance (estimate <= epsilon on every hit).

    Every 20th read is strict — its reply advances the client's known
    frontier vector, so cached entries' import estimates genuinely
    accumulate and budget expiry is exercised, not just the TTL."""
    client = LiveClient(
        list(cluster.addrs.values()),
        request_timeout=3.0,
        fan_out=True,
        cache=EpsilonReadCache(ttl=30.0),
        rng=random.Random(seed),
    )
    await client._ensure_connected()
    await client.stats()
    bounded = ReadOptions(
        consistency=Consistency.BOUNDED(EPSILON), prefer="any"
    )
    # An unlimited-budget read of a never-cached probe key always
    # fetches and never blocks; its reply carries the serving
    # replica's frontier vector, advancing the client's evidence so
    # cached entries' import estimates genuinely grow.
    refresh = ReadOptions(consistency=Consistency(), prefer="primary")
    reads = hits = 0
    hit_violations = 0
    max_estimate = 0.0
    rng = random.Random(seed + 1)
    for i in range(rounds):
        if i % 20 == 19:
            try:
                await client.query(["probe%d" % i], refresh)
            except (ETError, ConnectionError, OSError):
                pass
            continue
        key = HOT_KEYS[rng.randrange(len(HOT_KEYS))]
        opts = bounded
        try:
            result = await client.query([key], opts)
        except (ETError, ConnectionError, OSError):
            continue
        reads += 1
        if result.from_cache:
            hits += 1
            estimate = result.staleness or 0
            max_estimate = max(max_estimate, estimate)
            if estimate > EPSILON:
                hit_violations += 1
        await asyncio.sleep(0.001)
    stats = client.cache.stats()
    await client.close()
    return {
        "reads": reads,
        "hits": hits,
        "hit_ratio": hits / max(reads, 1),
        "max_hit_estimate": max_estimate,
        "hit_violations": hit_violations,
        "cache": stats,
    }


async def _measure_session(cluster, rounds, seed):
    """Read-your-writes under fan-out: a session increments its own
    counter and must observe every own write on the very next SESSION
    read, no matter which replica serves it."""
    client = LiveClient(
        list(cluster.addrs.values()),
        request_timeout=5.0,
        fan_out=True,
        rng=random.Random(seed),
    )
    await client._ensure_connected()
    await client.stats()
    violations = 0
    floor = 0
    async with client.session() as session:
        for i in range(rounds):
            await session.increment("session-acct")
            value = await session.read(
                "session-acct", ReadOptions(consistency=Consistency.SESSION)
            )
            # Monotonic floor: every own committed increment must be
            # visible, and values may only grow along the session.
            if value < i + 1 or value < floor:
                violations += 1
            floor = max(floor, value)
    stale_retries = client.session_stale_retries
    await client.close()
    return {
        "rounds": rounds,
        "violations": violations,
        "session_stale_retries": stale_retries,
        "final_value": floor,
    }


async def _run(seconds, seed):
    import tempfile

    data = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-reads-") as tmp:
        cluster = await _start_cluster(tmp, seed)
        try:
            stop = asyncio.Event()
            counters = {"writes": 0}
            writers = await _writer_stream(cluster, stop, counters)
            # Let the stream reach steady state before measuring.
            await asyncio.sleep(0.3)

            # Bounded series + cache + session run under the write
            # stream (the contention is the point).
            data["bounded_pinned"] = await _measure_reads(
                cluster, EPSILON, False, seconds, seed + 10
            )
            data["bounded_fanout"] = await _measure_reads(
                cluster, EPSILON, True, seconds, seed + 11
            )
            data["cache"] = await _measure_cache(
                cluster, max(200, int(seconds * 200)), seed + 14
            )
            data["session"] = await _measure_session(
                cluster, max(10, int(seconds * 10)), seed + 15
            )

            stop.set()
            for task in writers:
                task.cancel()
            await asyncio.gather(*writers, return_exceptions=True)
            data["writes_committed"] = counters["writes"]
            await cluster.settle(timeout=60)

            # Strict series on the quiesced cluster: with epsilon = 0
            # every read pins to the primary whether fan-out is on or
            # not — the extra replicas cannot serve, so throughput
            # must not scale.  (Under the write stream strict reads
            # starve at any serving replica — they need a moment with
            # zero conflicting lock holders — which would measure
            # contention, not serving capacity.)
            data["strict_pinned"] = await _measure_reads(
                cluster, 0, False, seconds, seed + 12
            )
            data["strict_fanout"] = await _measure_reads(
                cluster, 0, True, seconds, seed + 13
            )
            converged = await cluster.converged()
            data["converged"] = converged
        finally:
            await cluster.stop()

    data["bounded_scaling"] = (
        data["bounded_fanout"]["reads_per_sec"]
        / max(data["bounded_pinned"]["reads_per_sec"], 1e-9)
    )
    data["strict_scaling"] = (
        data["strict_fanout"]["reads_per_sec"]
        / max(data["strict_pinned"]["reads_per_sec"], 1e-9)
    )
    return data


def run_read_scaling(quick=False, seed=7):
    seconds = MEASURE_SECONDS_QUICK if quick else MEASURE_SECONDS
    data = asyncio.run(_run(seconds, seed))
    lines = [
        "Live read scaling: %d-replica COMMU cluster, %d writers on %d "
        "hot keys, %.0f-%.0fms peer-link delay, %d closed-loop readers, "
        "%.1fs per series"
        % (
            N_SITES, N_WRITERS, len(HOT_KEYS),
            LINK_DELAY[0] * 1e3, LINK_DELAY[1] * 1e3,
            N_READERS, seconds,
        ),
        "",
        "%-22s %10s %12s %16s" % (
            "series", "reads", "reads/s", "max import",
        ),
    ]
    for name in (
        "bounded_pinned", "bounded_fanout", "strict_pinned", "strict_fanout"
    ):
        d = data[name]
        lines.append(
            "%-22s %10d %12.0f %16.1f"
            % (name, d["completed"], d["reads_per_sec"],
               d["max_inconsistency"])
        )
    lines += [
        "",
        "bounded (eps=%g) scaling 1 -> %d serving replicas: %.2fx"
        % (EPSILON, N_SITES, data["bounded_scaling"]),
        "strict  (eps=0) scaling 1 -> %d serving replicas: %.2fx "
        "(primary-bound, expected ~1x)" % (N_SITES, data["strict_scaling"]),
        "cache: %d/%d hits (%.0f%%), max hit estimate %.1f (budget %g)"
        % (
            data["cache"]["hits"], data["cache"]["reads"],
            data["cache"]["hit_ratio"] * 100,
            data["cache"]["max_hit_estimate"], EPSILON,
        ),
        "session: %d rounds, %d read-your-writes violations, %d stale "
        "retries" % (
            data["session"]["rounds"], data["session"]["violations"],
            data["session"]["session_stale_retries"],
        ),
        "writes committed during run: %d; converged at quiescence: %s"
        % (data["writes_committed"], data["converged"]),
    ]
    return "\n".join(lines), data


def _assert_invariants(data):
    """The chaos-style budget assertions, checked on every run mode."""
    for name in (
        "bounded_pinned", "bounded_fanout", "strict_pinned", "strict_fanout"
    ):
        d = data[name]
        assert d["budget_violations"] == 0, (
            "%s: %d reads exceeded their epsilon budget"
            % (name, d["budget_violations"])
        )
        assert d["completed"] > 0, "%s completed no reads" % name
    assert data["strict_pinned"]["max_inconsistency"] == 0
    assert data["strict_fanout"]["max_inconsistency"] == 0
    assert data["cache"]["hit_violations"] == 0, (
        "cache served hits past their epsilon budget"
    )
    assert data["session"]["violations"] == 0, (
        "session reads missed the session's own writes"
    )
    assert data["converged"], "cluster diverged"
    # Strict reads pin to the primary under both configurations: all
    # servings come from one replica, and throughput does not scale.
    assert set(data["strict_fanout"]["served_by"]) == {"site0"}
    # Fanned-out bounded reads actually spread across the group.
    assert len(data["bounded_fanout"]["served_by"]) >= 2


def test_read_scaling(benchmark, show):
    from conftest import run_once

    text, data = run_once(benchmark, run_read_scaling, quick=True)
    show(text)
    _assert_invariants(data)
    # The calibrated 2x bound is asserted on the standalone full run;
    # loaded CI machines get the looser must-scale / must-not-scale
    # bounds.
    assert data["bounded_scaling"] > 1.3
    assert data["strict_scaling"] < 1.3


def _main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter measurement windows (CI smoke runs)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", nargs="?", const="BENCH_live_reads.json",
        default=None, metavar="PATH",
        help="write results to PATH as JSON",
    )
    args = parser.parse_args(argv)

    started = time.monotonic()
    text, data = run_read_scaling(quick=args.quick, seed=args.seed)
    print(text)
    _assert_invariants(data)
    if args.quick:
        assert data["bounded_scaling"] > 1.3, (
            "bounded reads did not scale: %.2fx" % data["bounded_scaling"]
        )
    else:
        assert data["bounded_scaling"] >= 2.0, (
            "bounded reads did not reach 2x: %.2fx" % data["bounded_scaling"]
        )
    assert data["strict_scaling"] < 1.3, (
        "strict reads scaled (%.2fx) — they must stay primary-bound"
        % data["strict_scaling"]
    )
    print("\nassertions passed in %.1fs" % (time.monotonic() - started))
    if args.json:
        payload = {
            "benchmark": "live_reads",
            "n_sites": N_SITES,
            "epsilon": EPSILON,
            "link_delay": list(LINK_DELAY),
            "writers": N_WRITERS,
            "readers": N_READERS,
            "quick": args.quick,
            "seed": args.seed,
            "data": data,
        }
        path = pathlib.Path(args.json)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
