"""Extension — low-bandwidth links (paper section 2.4).

"This is a big handicap when network links have very low bandwidth or
moderately high latency."  The latency half is benchmark E10; this
covers the bandwidth half: per-link capacity limits serialize traffic,
so every message queues behind earlier ones.

Expected shape: synchronous update latency *blows up* as bandwidth
shrinks (each commit needs multiple protocol messages through the
bottleneck, and they contend); asynchronous commit latency stays flat
(commits are local) while only the background convergence time
stretches.
"""

import pytest

from conftest import run_once

from repro.core.transactions import reset_tid_counter
from repro.harness.report import render_series
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.coherency import PrimaryCopy
from repro.sim.network import ConstantLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive

BANDWIDTHS = (8.0, 2.0, 0.5)


def _run(method_factory, bandwidth):
    reset_tid_counter()
    config = SystemConfig(
        n_sites=4,
        seed=31,
        latency=ConstantLatency(1.0),
        bandwidth=bandwidth,
        initial=tuple(("x%d" % i, 0) for i in range(6)),
    )
    system = ReplicatedSystem(method_factory(), config)
    spec = WorkloadSpec(
        n_keys=6,
        count=40,
        query_fraction=0.0,
        style="commutative",
        mean_interarrival=2.0,
    )
    drive(system, WorkloadGenerator(spec, sorted(system.sites), 5).generate())
    quiescence = system.run_to_quiescence()
    updates = [r for r in system.results if r.et.is_update]
    return {
        "commit_latency": sum(r.latency for r in updates) / len(updates),
        "quiescence": quiescence,
        "converged": system.converged(),
    }


def test_ext_bandwidth(benchmark, show):
    def sweep():
        data = {}
        for bw in BANDWIDTHS:
            data[bw] = {
                "COMMU": _run(CommutativeOperations, bw),
                "PRIMARY": _run(PrimaryCopy, bw),
            }
        return data

    data = run_once(benchmark, sweep)
    show(render_series(
        "Extension: commit latency vs link bandwidth (latency fixed at 1)",
        "bandwidth",
        list(BANDWIDTHS),
        {
            "COMMU_commit": [
                round(data[b]["COMMU"]["commit_latency"], 2)
                for b in BANDWIDTHS
            ],
            "PRIMARY_commit": [
                round(data[b]["PRIMARY"]["commit_latency"], 2)
                for b in BANDWIDTHS
            ],
            "COMMU_quiesce": [
                round(data[b]["COMMU"]["quiescence"], 1) for b in BANDWIDTHS
            ],
        },
    ))

    # Synchronous commit latency degrades as the pipe narrows...
    assert (
        data[0.5]["PRIMARY"]["commit_latency"]
        > data[8.0]["PRIMARY"]["commit_latency"]
    )
    # ...while asynchronous commits stay local-speed at every width.
    for bw in BANDWIDTHS:
        assert data[bw]["COMMU"]["commit_latency"] == 0.0
        assert data[bw]["COMMU"]["converged"]
        assert data[bw]["PRIMARY"]["converged"]
    # The async system pays with slower background convergence instead.
    assert (
        data[0.5]["COMMU"]["quiescence"] > data[8.0]["COMMU"]["quiescence"]
    )
