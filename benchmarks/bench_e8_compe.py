"""E8 — COMPE compensation strategy costs (section 4).

Paper claims: "if all MSets on the log are commutative, then COMPE
simply runs the compensation MSet and continues"; otherwise the system
must roll back and replay the log suffix (the Inc/Mul worked example).
Expected shape: commutative logs take only direct compensations;
mixed logs incur rollback-and-replay with its extra undone/replayed
operation cost; both converge.
"""

from conftest import run_once

from repro.harness.experiments import experiment_e8_compe


def test_e8_compensation_costs(benchmark, show):
    text, data = run_once(benchmark, experiment_e8_compe, count=80)
    show(text)

    commutative, mixed = data["commutative"], data["mixed"]

    # Commutative logs never need the general rollback.
    assert commutative["rollback_replay"] == 0
    assert commutative["direct"] > 0
    assert commutative["replayed"] == 0

    # Mixed logs do, and pay replay cost for it.
    assert mixed["rollback_replay"] > 0
    assert mixed["replayed"] > 0

    # Per compensated update, the mixed strategy touches more
    # operations (undone + replayed) than the commutative one.
    commutative_cost = (
        commutative["undone"] + commutative["replayed"]
    ) / max(commutative["aborts"], 1)
    mixed_cost = (mixed["undone"] + mixed["replayed"]) / max(
        mixed["aborts"], 1
    )
    assert mixed_cost > commutative_cost

    # Backward control still converges in both regimes.
    assert commutative["converged"] and mixed["converged"]
