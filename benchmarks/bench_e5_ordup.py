"""E5 — ORDUP: free queries vs global-order queries (section 3.1).

Paper claims: update ETs stay SR under out-of-order delivery because
execution is ordered; query ETs "can be processed in any order to
increase concurrency"; an exhausted inconsistency counter forces the
query to "proceed only when it is running in the global order".
Expected shape: free queries are faster but carry bounded error;
strict queries have zero error and pay in waits; both modes keep the
system convergent and 1SR even with non-commutative updates.
"""

from conftest import run_once

from repro.harness.experiments import experiment_e5_ordup


def test_e5_ordup_modes(benchmark, show):
    text, data = run_once(benchmark, experiment_e5_ordup, count=100)
    show(text)

    free = data["free (eps=inf)"]
    strict = data["strict (eps=0)"]

    # Strict queries are serializable: zero inconsistency, and they pay
    # for it by queueing behind the update stream.
    assert strict["max_inconsistency"] == 0
    assert strict["waits"] > free["waits"]

    # Free queries finish no slower than strict ones.
    assert free["query_latency"] <= strict["query_latency"]

    # Update ETs are SR in both modes despite non-commutative ops and
    # out-of-order MSet delivery.
    for mode in data.values():
        assert mode["one_copy_sr"]
        assert mode["converged"]
