"""Microbenchmarks — substrate performance engineering.

Not a paper artifact: these track the cost of the building blocks so
substrate regressions are visible independently of the experiment
suite (which would hide a 2× simulator slowdown inside seconds-long
runs).
"""

import pytest

from repro.core.history import History
from repro.core.operations import IncrementOp, ReadOp, TimestampedWriteOp
from repro.core.serializability import is_serializable
from repro.sim.events import Simulator
from repro.sim.network import ConstantLatency, Network
from repro.sim.stable_queue import StableQueue
from repro.storage.kv import KeyValueStore
from repro.storage.mvstore import MultiVersionStore


def test_simulator_event_throughput(benchmark):
    """Schedule-and-run cost of 10k chained events."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_stable_queue_throughput(benchmark):
    """End-to-end delivery of 1k messages over a reliable link."""

    def run():
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(0.1))
        received = []
        queue = StableQueue(sim, net, "a", "b", received.append)
        for i in range(1_000):
            queue.enqueue(i)
        sim.run()
        return len(received)

    assert benchmark(run) == 1_000


def test_kv_store_apply_throughput(benchmark):
    """Operation application rate on the flat store."""

    def run():
        store = KeyValueStore()
        for i in range(5_000):
            store.apply(IncrementOp("k%d" % (i % 50), 1))
        return store.get("k0")

    assert benchmark(run) == 100


def test_mvstore_install_and_read(benchmark):
    """Versioned install + bounded read on the multiversion store."""

    def run():
        store = MultiVersionStore()
        for i in range(1, 2_001):
            store.install("k%d" % (i % 20), i, i)
        store.advance_vtnc(1_000)
        total = 0
        for i in range(20):
            total += store.read_visible("k%d" % i).txn_number
        return total

    benchmark(run)


def test_thomas_rule_throughput(benchmark):
    """Timestamped-write application rate (RITU's hot path)."""

    def run():
        store = KeyValueStore()
        for i in range(5_000):
            store.apply(
                TimestampedWriteOp("k%d" % (i % 50), i, (i, 0))
            )
        return store.get("k49")

    benchmark(run)


def test_sr_checker_scaling(benchmark):
    """Conflict-graph construction on a 200-txn, 1000-op history."""
    history = History()
    for i in range(1_000):
        tid = i % 200 + 1
        key = "k%d" % (i % 25)
        if i % 3:
            history.record(tid, IncrementOp(key, 1))
        else:
            history.record(tid, ReadOp(key))
    benchmark(lambda: is_serializable(history))

# -- wire codec (live runtime) ------------------------------------------------


def _wire_batch(n=64):
    """One outbox window of encoded channel payloads: n MSets of a few
    mixed ops each, the shape the propagation hot path actually ships."""
    from repro.core.operations import AppendOp, WriteOp
    from repro.live.protocol import encode_mset
    from repro.replica.mset import MSet

    payloads = []
    for seq in range(1, n + 1):
        mset = MSet(
            tid="site0:%d" % seq,
            ops=(
                IncrementOp("balance%d" % (seq % 8), seq),
                WriteOp("status%d" % (seq % 8), "v-%032d" % seq),
                AppendOp("audit", {"seq": seq, "who": "site0"}),
            ),
            origin="site0",
            info=(("reads", ["balance%d" % (seq % 8)]),),
        )
        payloads.append((seq, {"mset": encode_mset(mset)}))
    return payloads


def test_wire_json_batch_encode(benchmark):
    """Baseline: build + serialize one JSON mset-batch frame."""
    from repro.live.protocol import encode_batch_frame, encode_frame

    entries = _wire_batch()
    batch = [(seq, payload["mset"]) for seq, payload in entries]

    def run():
        return len(encode_frame(encode_batch_frame("site0", batch)))

    assert benchmark(run) > 0


def test_wire_bin_batch_relay(benchmark):
    """Fast path: one binary frame from pre-encoded payload blobs —
    the zero re-encode relay's per-send cost (struct pack + memcpy)."""
    from repro.live.protocol import encode_bin_batch_frame, payload_blob

    entries = _wire_batch()
    blobs = [(seq, payload_blob(payload)) for seq, payload in entries]

    def run():
        return len(encode_bin_batch_frame("site0", blobs))

    assert benchmark(run) > 0


def test_wire_json_batch_decode(benchmark):
    """Baseline receive: parse the JSON frame and validate the batch."""
    import json

    from repro.live.protocol import (
        decode_batch_frame,
        encode_batch_frame,
        encode_frame,
    )

    entries = _wire_batch()
    data = encode_frame(
        encode_batch_frame(
            "site0", [(seq, payload["mset"]) for seq, payload in entries]
        )
    )

    def run():
        frame = json.loads(data[4:])
        return len(decode_batch_frame(frame))

    assert benchmark(run) == 64


def test_wire_bin_batch_decode(benchmark):
    """Fast-path receive: split the binary envelope into (seq, blob)
    pairs; blob JSON decode happens once, on the apply path."""
    from repro.live.protocol import (
        decode_bin_frame,
        encode_bin_batch_frame,
        payload_blob,
    )

    entries = _wire_batch()
    data = encode_bin_batch_frame(
        "site0", [(seq, payload_blob(payload)) for seq, payload in entries]
    )

    def run():
        return len(decode_bin_frame(data[4:])["blobs"])

    assert benchmark(run) == 64
