"""T1 — Reproduce Table 1: replica-control method characteristics.

The table is regenerated from the live trait declarations of the four
method classes; the benchmark also *probes* two of the claims
behaviorally — ORDUP's constrained update propagation (a held-back MSet
does not execute early) versus COMMU's fully asynchronous processing —
so the rendered table is backed by measured behavior, not prose.
"""

from conftest import run_once

from repro.core.operations import IncrementOp
from repro.core.transactions import UpdateET, reset_tid_counter
from repro.harness.experiments import experiment_table1
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.ordup import OrderedUpdates
from repro.replica.mset import MSet, MSetKind


def test_table1_render(benchmark, show):
    text, data = run_once(benchmark, experiment_table1)
    show(text)
    assert data["ORDUP"]["Asynchronous Propagation"] == "Query only"
    assert data["COMMU"]["Asynchronous Propagation"] == "Query & Update"


def test_table1_probe_ordup_delivery_restriction(benchmark):
    """An out-of-order MSet must be held back by ORDUP sites."""

    def probe():
        reset_tid_counter()
        system = ReplicatedSystem(
            OrderedUpdates(), SystemConfig(n_sites=2, initial=(("x", 0),))
        )
        site = system.sites["site1"]
        # Deliver sequence number 2 before 1: must not execute.
        later = MSet(99, MSetKind.UPDATE, (IncrementOp("x", 5),),
                     "site0", (2, 0))
        system.method.runtime.update_submitted(
            UpdateET([IncrementOp("x", 5)])
        )
        system.method.handle_message(site, later)
        system.sim.run(until=10.0)
        return site.store.get("x")

    value = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert value == 0  # held back: order 1 never arrived


def test_table1_probe_commu_processes_any_order(benchmark):
    """COMMU applies MSets in whatever order they arrive."""

    def probe():
        reset_tid_counter()
        system = ReplicatedSystem(
            CommutativeOperations(),
            SystemConfig(n_sites=2, initial=(("x", 0),)),
        )
        site = system.sites["site1"]
        for tid in (7, 5):  # arbitrary, out-of-submission order
            et = UpdateET([IncrementOp("x", 1)])
            system.method._ets[et.tid] = et
            system.method.runtime.update_submitted(et, copies=1)
            mset = MSet(et.tid, MSetKind.UPDATE,
                        (IncrementOp("x", 1),), "site0")
            system.method.handle_message(site, mset)
        system.sim.run(until=10.0)
        return site.store.get("x")

    value = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert value == 2  # both applied despite no ordering information
