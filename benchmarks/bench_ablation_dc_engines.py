"""Ablation — divergence control engine: blocking vs ordering vs OCC.

The paper treats divergence control as pluggable (section 2.1 names
2PL and basic timestamps; OCC is the classical third option).  Same
single-site read-modify-write workload, three engines:

* 2PL (ORDUP table): conflicts block — and RMW transactions deadlock
  on lock *upgrades* (two holders of read locks both needing the
  write lock), resolved by the scheduler's wait timeout;
* basic timestamps: out-of-order access aborts and restarts, never
  blocks;
* optimistic: everything runs; conflicts abort at validation, never
  block.

Expected shape: 2PL pays heavily in waits (including the deadlock
timeouts), the other two pay only in restarts; all three finish with
the identical serializable final state — no lost updates anywhere.
"""

import pytest

from conftest import run_once

from repro.core.divergence import (
    BasicTimestampDC,
    OptimisticDC,
    TwoPhaseLockingDC,
)
from repro.core.locks import ORDUP_TABLE
from repro.core.operations import IncrementOp, ReadOp
from repro.core.scheduler import LocalScheduler
from repro.core.transactions import (
    EpsilonSpec,
    ETStatus,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.harness.report import render_table
from repro.sim.events import Simulator
from repro.storage.kv import KeyValueStore


def _run(make_dc):
    reset_tid_counter()
    sim = Simulator(seed=9)
    sched = LocalScheduler(
        sim, make_dc(), KeyValueStore({"a": 0, "b": 0})
    )
    keys = ("a", "b")
    for i in range(10):
        key = keys[i % 2]
        sim.schedule_at(
            i * 0.15,
            lambda k=key: sched.submit(
                UpdateET([ReadOp(k), IncrementOp(k, 1)])
            ),
        )
        if i % 2 == 0:
            sim.schedule_at(
                i * 0.15 + 0.05,
                lambda k=key: sched.submit(
                    QueryET([ReadOp(k)], EpsilonSpec(import_limit=3))
                ),
            )
    sim.run()
    committed = [
        r for r in sched.completed if r.status == ETStatus.COMMITTED
    ]
    return {
        "waits": sched.wait_count,
        "aborts": sched.abort_count,
        "committed": len(committed),
        "final_a": sched.store.get("a"),
        "final_b": sched.store.get("b"),
        "makespan": max(r.finish_time for r in sched.completed),
    }


def test_ablation_dc_engines(benchmark, show):
    def sweep():
        return {
            "2PL": _run(lambda: TwoPhaseLockingDC(ORDUP_TABLE)),
            "timestamp": _run(BasicTimestampDC),
            "optimistic": _run(OptimisticDC),
        }

    data = run_once(benchmark, sweep)
    rows = [
        [
            name,
            d["committed"],
            d["waits"],
            d["aborts"],
            round(d["makespan"], 2),
        ]
        for name, d in data.items()
    ]
    show(render_table(
        "Ablation: divergence engine on contended RMW workload",
        ["engine", "committed", "waits", "aborts", "makespan"],
        rows,
    ))

    # All engines complete the workload with identical final state:
    # five increments per key, no lost updates under any strategy.
    for name, d in data.items():
        assert d["committed"] == 15, name
        assert d["final_a"] == 5 and d["final_b"] == 5, name

    # The currencies differ: 2PL pays in blocking (plus upgrade-
    # deadlock timeouts under this RMW load); the timestamp and
    # optimistic engines never block — they abort-and-restart.
    assert data["2PL"]["waits"] > 0
    assert data["timestamp"]["waits"] == 0
    assert data["timestamp"]["aborts"] > 0
    assert data["optimistic"]["waits"] == 0
    assert data["optimistic"]["aborts"] > 0

    # Blocking plus deadlock timeouts make 2PL the slowest here.
    assert data["optimistic"]["makespan"] < data["2PL"]["makespan"]
