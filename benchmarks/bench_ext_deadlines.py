"""Extension — deferred updates: ETs with deadlines (section 5.1).

The paper maps Wiederhold & Qian's *deferred updates* to "ETs with
deadlines".  The benchmark measures the deadline hit-rate of
asynchronous propagation as the deadline tightens relative to the
propagation time, and shows the effect of deadline escalation (kicking
the stable queues when the deadline arrives).
"""

import pytest

from conftest import run_once

from repro.core.operations import IncrementOp
from repro.core.transactions import UpdateET, reset_tid_counter
from repro.harness.report import render_series
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.commu import CommutativeOperations
from repro.replica.temporal import DeadlineTracker
from repro.sim.network import UniformLatency

DEADLINES = (2.0, 6.0, 20.0)


def _run(deadline, escalate, loss):
    reset_tid_counter()
    system = ReplicatedSystem(
        CommutativeOperations(),
        SystemConfig(
            n_sites=4,
            seed=29,
            latency=UniformLatency(1.0, 4.0),
            loss_rate=loss,
            retry_interval=10.0,
            initial=(("x", 0),),
        ),
    )
    tracker = DeadlineTracker(system, escalate=escalate)
    for i in range(30):
        system.sim.schedule_at(
            i * 1.5,
            lambda i=i: tracker.submit(
                UpdateET([IncrementOp("x", 1)]),
                "site%d" % (i % 4),
                relative_deadline=deadline,
            ),
        )
    system.run_to_quiescence()
    return {
        "met": tracker.met_fraction(),
        "converged": system.converged(),
    }


def test_ext_deadlines(benchmark, show):
    def sweep():
        return {
            d: {
                "escalated": _run(d, escalate=True, loss=0.2),
                "plain": _run(d, escalate=False, loss=0.2),
            }
            for d in DEADLINES
        }

    data = run_once(benchmark, sweep)
    show(render_series(
        "Extension: deadline hit-rate (lossy links, 10-unit retry timer)",
        "deadline",
        list(DEADLINES),
        {
            "plain": [round(data[d]["plain"]["met"], 2) for d in DEADLINES],
            "escalated": [
                round(data[d]["escalated"]["met"], 2) for d in DEADLINES
            ],
        },
    ))

    # Hit-rate is monotone in the deadline.
    plain = [data[d]["plain"]["met"] for d in DEADLINES]
    assert plain == sorted(plain)

    # Escalation pays off in the regime where the retry timer (10
    # units) dominates the deadline (6 units): kicking the queues at
    # the deadline beats waiting out the timer.  (At loose deadlines
    # both configurations saturate and differ only by retry-lottery
    # noise, so no ordering is asserted there.)
    assert data[6.0]["escalated"]["met"] > data[6.0]["plain"]["met"]

    # Convergence is deadline-independent.
    for d in DEADLINES:
        assert data[d]["plain"]["converged"]
        assert data[d]["escalated"]["converged"]
