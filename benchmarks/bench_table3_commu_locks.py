"""T3 — Reproduce Table 3: 2PL compatibility for COMMU ETs.

"Comm" cells are probed twice: once with commutative operations (grant
expected) and once with non-commuting operations (conflict expected),
verifying the operation-semantics resolution the paper describes.
"""

from conftest import run_once

from repro.core.locks import COMMU_TABLE, LockManager, LockMode
from repro.core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from repro.harness.experiments import experiment_table3

_PAPER_TABLE3 = {
    "RU": ["OK", "Comm", "OK"],
    "WU": ["Comm", "Comm", "OK"],
    "RQ": ["OK", "OK", "OK"],
}


def test_table3_render(benchmark, show):
    text, rows = run_once(benchmark, experiment_table3)
    show(text)
    assert dict(rows) == _PAPER_TABLE3


def test_table3_comm_cells_resolve_by_semantics():
    """W_U/W_U: commuting increments coexist, Inc/Mul conflict."""
    manager = LockManager(COMMU_TABLE)
    assert manager.try_acquire(1, "x", LockMode.W_U, IncrementOp("x", 1))
    assert manager.try_acquire(2, "x", LockMode.W_U, IncrementOp("x", 2))

    manager = LockManager(COMMU_TABLE)
    assert manager.try_acquire(1, "x", LockMode.W_U, IncrementOp("x", 1))
    assert (
        manager.try_acquire(2, "x", LockMode.W_U, MultiplyOp("x", 2)) is None
    )


def test_table3_ru_wu_comm_cell():
    """R_U/W_U is 'Comm': a plain write never commutes with a read."""
    manager = LockManager(COMMU_TABLE)
    assert manager.try_acquire(1, "x", LockMode.R_U, ReadOp("x"))
    assert (
        manager.try_acquire(2, "x", LockMode.W_U, WriteOp("x", 1)) is None
    )


def test_commu_concurrency_gain(benchmark, show):
    """The point of Table 3: COMMU admits interleavings classic 2PL
    rejects.  Count grants for 50 concurrent increments on one object.
    """
    from repro.core.locks import CLASSIC_2PL

    def grants_under(table):
        manager = LockManager(table)
        granted = 0
        for tid in range(1, 51):
            if manager.try_acquire(
                tid, "hot", LockMode.W_U, IncrementOp("hot", 1)
            ):
                granted += 1
        return granted

    commu_grants = benchmark(lambda: grants_under(COMMU_TABLE))
    classic_grants = grants_under(CLASSIC_2PL)
    show(
        "T3 concurrency probe: 50 concurrent increments on one object\n"
        "  COMMU table grants:   %d\n"
        "  classic 2PL grants:   %d" % (commu_grants, classic_grants)
    )
    assert commu_grants == 50
    assert classic_grants == 1
