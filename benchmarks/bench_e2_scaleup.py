"""E2 — Throughput/latency vs number of replicas (sections 1, 2.4, 6).

Paper claim: "synchronous methods decrease system availability and
throughput as the size of the system increases" while asynchronous
replica control commits updates at local speed.  Expected shape:
async update latency ~flat in the replica count; ROWA-2PC / quorum /
primary-copy grow with it (and sit far above the async methods).
"""

from conftest import run_once

from repro.harness.experiments import experiment_e2_scaleup


def test_e2_scaleup(benchmark, show):
    text, data = run_once(
        benchmark, experiment_e2_scaleup, site_counts=(2, 4, 8), count=60
    )
    show(text)

    # Async methods commit without waiting for propagation: their
    # update latency is independent of the replica count and far below
    # the synchronous baselines at every scale.
    for n in (2, 4, 8):
        async_worst = max(
            data[m][n]["update_latency"] for m in ("COMMU", "RITU", "ORDUP")
        )
        sync_best = min(
            data[m][n]["update_latency"]
            for m in ("ROWA-2PC", "QUORUM", "PRIMARY")
        )
        assert async_worst < sync_best, "no async win at n=%d" % n

    # Sync methods degrade as replicas are added; COMMU/RITU stay flat.
    assert (
        data["ROWA-2PC"][8]["update_latency"]
        > data["ROWA-2PC"][2]["update_latency"]
    )
    assert (
        data["COMMU"][8]["update_latency"]
        <= data["COMMU"][2]["update_latency"] + 0.5
    )

    # Everyone converges regardless.
    for method in data:
        for n in (2, 4, 8):
            assert data[method][n]["converged"] == 1.0
