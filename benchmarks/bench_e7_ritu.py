"""E7 — RITU variants (section 3.3).

Paper claims: single-version overwrite "reduces to COMMU" (no version
bookkeeping, but strict queries must wait out backlogs); the
multiversion variant gives strict queries a free consistent snapshot
(the VTNC) so they never wait; relaxed queries may read newer versions
at one inconsistency unit each.
"""

from conftest import run_once

from repro.harness.experiments import experiment_e7_ritu


def test_e7_ritu_variants(benchmark, show):
    text, data = run_once(benchmark, experiment_e7_ritu, count=100)
    show(text)

    # Strict queries: zero error in both variants.
    assert data["overwrite eps=0"]["max_inconsistency"] == 0
    assert data["multiversion eps=0"]["max_inconsistency"] == 0

    # The VTNC gives multiversion strict queries a waiting-free
    # consistent read; the single-version variant has to stall.
    assert data["multiversion eps=0"]["waits"] == 0
    assert data["overwrite eps=0"]["waits"] > 0

    # Relaxed queries stay within their budget.
    assert data["overwrite eps=2"]["max_inconsistency"] <= 2
    assert data["multiversion eps=2"]["max_inconsistency"] <= 2

    # All variants converge and keep updates 1SR.
    for variant in data.values():
        assert variant["converged"]
        assert variant["one_copy_sr"]
