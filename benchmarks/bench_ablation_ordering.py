"""Ablation — ORDUP ordering service: central server vs Lamport clocks.

Section 3.1 offers both.  The central server gives gap-free sequence
numbers (cheap hold-back, but a round trip and a single point of
ordering); Lamport stamps are decentralized but need FIFO channels and
flush rounds to detect stability.  This ablation runs one workload
under both and reports ordering latency, message cost, and the
propagation lag each design pays.
"""

import pytest

from conftest import run_once

from repro.core.transactions import reset_tid_counter
from repro.harness.report import render_table
from repro.replica.base import ReplicatedSystem, SystemConfig
from repro.replica.ordup import OrderedUpdates
from repro.sim.network import UniformLatency
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, drive


def _run(ordering):
    reset_tid_counter()
    config = SystemConfig(
        n_sites=4,
        seed=17,
        latency=UniformLatency(0.5, 2.0),
        initial=tuple(("x%d" % i, 0) for i in range(6)),
    )
    system = ReplicatedSystem(OrderedUpdates(ordering=ordering), config)
    spec = WorkloadSpec(
        n_keys=6, count=60, query_fraction=0.0, style="mixed",
        mean_interarrival=1.0,
    )
    drive(system, WorkloadGenerator(spec, sorted(system.sites), 3).generate())
    quiescence = system.run_to_quiescence()
    commit_latency = sum(r.latency for r in system.results) / len(
        system.results
    )
    return {
        "commit_latency": commit_latency,
        "quiescence": quiescence,
        "messages": system.network.stats.sent,
        "converged": system.converged(),
        "one_copy_sr": system.is_one_copy_serializable(),
    }


def test_ablation_ordering_service(benchmark, show):
    def sweep():
        return {
            "central": _run("central"),
            "lamport": _run("lamport"),
        }

    data = run_once(benchmark, sweep)
    rows = [
        [
            name,
            round(d["commit_latency"], 2),
            round(d["quiescence"], 1),
            d["messages"],
            d["converged"],
        ]
        for name, d in data.items()
    ]
    show(render_table(
        "Ablation: ORDUP ordering service (60 non-commutative updates)",
        ["ordering", "commit_lat", "quiescence", "messages", "converged"],
        rows,
    ))

    # Both orderings deliver the paper's guarantees.
    for d in data.values():
        assert d["converged"] and d["one_copy_sr"]

    # Lamport commits faster (no order-server round trip)...
    assert (
        data["lamport"]["commit_latency"]
        <= data["central"]["commit_latency"]
    )
    # ...but pays for decentralization in flush traffic and slower
    # stabilization (propagation completes later).
    assert data["lamport"]["messages"] > data["central"]["messages"]
    assert data["lamport"]["quiescence"] > data["central"]["quiescence"]
