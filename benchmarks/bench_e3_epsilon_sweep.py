"""E3 — Query error vs epsilon limit (section 2.2).

Paper claim: "At the one end of spectrum, replica control may allow
zero inconsistency and no overlap, producing SR queries.  At the other
end ... let a query ET's error grow ... but ultimately the overlap
still bounds the query ET's error."  Expected shape: measured maximum
error grows with the epsilon limit, never exceeds it, is zero at
epsilon 0, and waiting (the price of consistency) falls as epsilon
grows.
"""

from conftest import run_once

from repro.core.transactions import UNLIMITED
from repro.harness.experiments import experiment_e3_epsilon_sweep

EPSILONS = (0, 1, 2, 4, UNLIMITED)


def test_e3_epsilon_sweep(benchmark, show):
    text, data = run_once(
        benchmark, experiment_e3_epsilon_sweep, epsilons=EPSILONS, count=100
    )
    show(text)

    # Strict limit recovers SR queries (zero error).
    assert data[0]["max_inconsistency"] == 0

    # Error never exceeds the limit; the counter bound always holds.
    for eps in EPSILONS:
        assert data[eps]["within_bound"] == 1.0
        if eps != UNLIMITED:
            assert data[eps]["max_inconsistency"] <= eps

    # Error is monotone in the limit (more budget, more staleness).
    errors = [data[eps]["max_inconsistency"] for eps in EPSILONS]
    assert errors == sorted(errors)

    # Waiting is the price of small epsilon: strict queries stall most.
    assert data[0]["waits"] >= data[UNLIMITED]["waits"]

    # Measured error respects the overlap bound (section 2.1 theorem).
    for eps in EPSILONS:
        assert data[eps]["error_within_overlap"] == 1.0
