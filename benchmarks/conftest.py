"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one paper table/claim (see DESIGN.md §4 and
EXPERIMENTS.md).  The reproduced table is printed to the terminal so a
run of ``pytest benchmarks/ --benchmark-only`` emits the full set of
paper artifacts alongside the timing data.
"""

import pytest


@pytest.fixture
def show():
    """Print a reproduced table bypassing pytest's capture."""

    def _show(text: str) -> None:
        import sys

        sys.stderr.write("\n" + text + "\n")

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a full experiment exactly once (they are heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
