"""T2 — Reproduce Table 2: 2PL compatibility for ORDUP ETs.

The matrix is derived by probing the live lock manager with every
(held, requested) mode pair, then compared cell-for-cell with the
paper's table.  The benchmark measures lock-manager throughput on the
ORDUP table as a bonus microbenchmark.
"""

from conftest import run_once

from repro.core.locks import LockManager, LockMode, ORDUP_TABLE
from repro.core.operations import ReadOp, WriteOp
from repro.harness.experiments import experiment_table2

_PAPER_TABLE2 = {
    "RU": ["OK", "", "OK"],
    "WU": ["", "", "OK"],
    "RQ": ["OK", "OK", "OK"],
}


def test_table2_render(benchmark, show):
    text, rows = run_once(benchmark, experiment_table2)
    show(text)
    assert dict(rows) == _PAPER_TABLE2


def test_table2_probe_lock_manager(show):
    """Derive each cell by actually acquiring locks."""
    probes = {
        LockMode.R_U: ReadOp("x"),
        LockMode.W_U: WriteOp("x", 1),
        LockMode.R_Q: ReadOp("x"),
    }
    derived = {}
    for held_mode, held_op in probes.items():
        cells = []
        for req_mode, req_op in probes.items():
            manager = LockManager(ORDUP_TABLE)
            assert manager.try_acquire(1, "x", held_mode, held_op)
            grant = manager.try_acquire(2, "x", req_mode, req_op)
            cells.append("OK" if grant is not None else "")
        derived[held_mode.value] = cells
    assert derived == _PAPER_TABLE2


def test_lock_manager_throughput(benchmark):
    """Microbenchmark: grant/release cycles under the ORDUP table."""

    def cycle():
        manager = LockManager(ORDUP_TABLE)
        for tid in range(1, 101):
            key = "k%d" % (tid % 10)
            manager.try_acquire(tid, key, LockMode.W_U, WriteOp(key, tid))
            manager.try_acquire(
                1000 + tid, key, LockMode.R_Q, ReadOp(key)
            )
            manager.release_all(tid)
            manager.release_all(1000 + tid)
        return manager

    benchmark(cycle)
