"""Ablation — lock-table choice under one concurrent ET workload.

Tables 2 and 3 exist to admit more interleavings than classic 2PL.
This ablation runs the *same* mixed ET workload through the local
scheduler three times, swapping only the compatibility table, and
reports blocking and makespan.  Expected ordering:

    classic 2PL  >=  ORDUP (Table 2)  >=  COMMU (Table 3)

in waits and makespan: Table 2 frees the queries, Table 3 additionally
frees commuting updates.
"""

import pytest

from conftest import run_once

from repro.core.divergence import TwoPhaseLockingDC
from repro.core.locks import CLASSIC_2PL, COMMU_TABLE, ORDUP_TABLE
from repro.core.operations import IncrementOp, ReadOp
from repro.core.scheduler import LocalScheduler
from repro.core.transactions import (
    EpsilonSpec,
    QueryET,
    UpdateET,
    reset_tid_counter,
)
from repro.harness.report import render_table
from repro.sim.events import Simulator
from repro.storage.kv import KeyValueStore


def _run_workload(table):
    reset_tid_counter()
    sim = Simulator(seed=5)
    sched = LocalScheduler(
        sim,
        TwoPhaseLockingDC(table),
        KeyValueStore({"a": 0, "b": 0, "c": 0}),
    )
    keys = ("a", "b", "c")
    # Arrivals outpace the 0.5-unit op time, so same-key update ETs
    # genuinely overlap: W_U/W_U contention separates Table 3 (Comm)
    # from Table 2, and R_Q admission separates Table 2 from classic.
    for i in range(12):
        key = keys[i % 3]
        sim.schedule_at(
            i * 0.1,
            lambda k=key: sched.submit(UpdateET([IncrementOp(k, 1)])),
        )
        if i % 2 == 0:
            sim.schedule_at(
                i * 0.1 + 0.05,
                lambda k=key: sched.submit(
                    QueryET([ReadOp(k)], EpsilonSpec(import_limit=5))
                ),
            )
    sim.run()
    makespan = max(r.finish_time for r in sched.completed)
    return {
        "waits": sched.wait_count,
        "makespan": makespan,
        "completed": len(sched.completed),
    }


def test_ablation_lock_tables(benchmark, show):
    def sweep():
        return {
            "classic": _run_workload(CLASSIC_2PL),
            "ordup": _run_workload(ORDUP_TABLE),
            "commu": _run_workload(COMMU_TABLE),
        }

    data = run_once(benchmark, sweep)
    rows = [
        [name, d["completed"], d["waits"], round(d["makespan"], 2)]
        for name, d in data.items()
    ]
    show(render_table(
        "Ablation: lock table vs blocking (same mixed workload)",
        ["table", "ETs", "waits", "makespan"],
        rows,
    ))

    # Everyone finishes the whole workload.
    assert all(d["completed"] == 18 for d in data.values())

    # Each relaxation strictly reduces blocking on this workload.
    assert data["ordup"]["waits"] < data["classic"]["waits"]
    assert data["commu"]["waits"] <= data["ordup"]["waits"]
    assert data["commu"]["makespan"] <= data["classic"]["makespan"]
