"""Durable epoch-fenced election state for the ORDUP sequencer.

The live ORDUP engine needs a single order authority.  Historically
that was the lexicographically-first site name — a fixed single point
of failure.  This module holds the small durable state machine that
lets the authority move:

* ``promised`` — the highest epoch this replica has promised to (it
  will never promise a lower epoch, nor accept a leader announcement
  for one).  Persisted *before* the promise reply is sent, so a crash
  and restart cannot un-promise.
* ``epoch`` / ``leader`` / ``base`` — the currently adopted leadership:
  the leader of ``epoch`` resumed sequencing from ``base`` (the max
  durable order frontier across the majority that elected it); every
  sequence number it grants is > ``base`` and travels with the epoch as
  a ``(seq, epoch)`` token.
* ``bases`` — per-epoch bases for every epoch this replica has adopted,
  which the engine uses to fence stale-epoch tokens: a token from old
  epoch ``e`` is admissible only if its seq is <= the base of every
  adopted epoch newer than ``e`` (i.e. it was granted before the
  handover point and is merely late).

Safety argument (one leader per epoch): a candidate needs promises
from a majority of the full membership before adopting an epoch, and a
replica promises each epoch at most once (monotonic ``promised``,
durable).  Two leaders in the same epoch would need two disjoint
majorities — impossible.  Fencing then ensures a deposed leader's
grants can never commit past the handover point: the new leader's
``base`` covers everything the old leader could have durably acked, and
anything above it carries a stale epoch that every fenced replica
refuses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ElectionState"]


class ElectionState:
    """Durable promise/adopt record for epoch-fenced leadership."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self.promised = 0
        self.epoch = 0
        self.leader: Optional[str] = None
        self.base = 0
        #: epoch -> base, for every epoch adopted at this replica.
        self.bases: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # persistence

    def load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            raw = json.loads(self.path.read_text())
            self.promised = int(raw.get("promised", 0))
            self.epoch = int(raw.get("epoch", 0))
            self.leader = raw.get("leader")
            self.base = int(raw.get("base", 0))
            self.bases = {int(k): int(v) for k, v in raw.get("bases", {}).items()}
        except (ValueError, KeyError, OSError):
            pass

    def _persist(self) -> None:
        if self.path is None:
            return
        payload = {
            "promised": self.promised,
            "epoch": self.epoch,
            "leader": self.leader,
            "base": self.base,
            "bases": {str(k): v for k, v in self.bases.items()},
        }
        try:
            self.path.write_text(json.dumps(payload))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # transitions

    def promise(self, epoch: int) -> bool:
        """Promise ``epoch`` iff it is higher than any prior promise.

        Durable before returning True — the reply must not outrun the
        disk, or a crashed replica could re-promise the same epoch to a
        second candidate.
        """
        if epoch <= self.promised:
            return False
        self.promised = epoch
        self._persist()
        return True

    def adopt(self, epoch: int, leader: str, base: int) -> bool:
        """Adopt ``leader`` for ``epoch`` (monotonic; durable).

        Used both by the winning candidate itself and by replicas
        learning the outcome.  Adoption implies a promise at least as
        high — a replica that adopts epoch ``e`` will never promise
        ``e`` to a later candidate.
        """
        if epoch < self.epoch:
            return False
        if epoch == self.epoch and self.leader == leader:
            return False
        self.epoch = epoch
        self.leader = leader
        self.base = int(base)
        self.bases[epoch] = int(base)
        if self.promised < epoch:
            self.promised = epoch
        self._persist()
        return True

    # ------------------------------------------------------------------
    # views

    def min_base_above(self, epoch: int) -> Optional[int]:
        """Smallest adopted base among epochs strictly newer than ``epoch``.

        A stale-epoch token is admissible only if its seq <= this value
        (it predates every handover the replica knows about).  Returns
        None when no newer epoch has been adopted.
        """
        newer = [b for e, b in self.bases.items() if e > epoch]
        if not newer:
            return None
        return min(newer)

    def wire(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "leader": self.leader,
            "base": self.base,
            "promised": self.promised,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "ElectionState(epoch=%d leader=%r base=%d promised=%d)" % (
            self.epoch, self.leader, self.base, self.promised,
        )
