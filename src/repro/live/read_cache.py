"""Client-side read cache whose TTL is an *epsilon budget*.

A classic read-through/cache-aside cache expires entries after a fixed
wall-clock TTL — a proxy for "how stale is too stale".  Under ESR the
staleness a read may tolerate is *declared*, in units the paper
defines: the number of concurrent conflicting updates a query imports.
So this cache expires entries in those units instead.

Accounting
----------

Every entry remembers, at fetch time:

* the serving replica's reported ``inconsistency`` (the import the
  server itself charged the query), and
* the serving replica's per-site applied frontier vector.

Every later response the client receives (from any replica) advances
the client's *known* frontier vector.  An entry's accumulated import
estimate is then::

    estimate = fetch_inconsistency
             + sum(max(0, known[s] - entry_frontiers[s]) for s in known)

i.e. the import charged at fetch time plus every update the client has
since *proved* exists (by seeing a frontier past the entry's).  The
entry may be served for a budget ``epsilon`` only while
``estimate <= epsilon``.  The estimate is exact over the evidence the
client holds — it never exceeds the true global import of updates the
client has observed, and it grows monotonically, so a served read
never claims a tighter bound than the client can actually prove.
(Updates *nobody has told this client about* are invisible to any
client-side scheme; the server-side budget still bounds every cache
miss, and docs/LIVE.md spells out the semantics.)

``Consistency.CACHED`` reads bypass the budget test and serve any
entry inside the wall-clock ``ttl`` — the explicit "I want cache
speed, charge me whatever it costs" level; the estimate is still
reported so callers can observe what they were given.

Own writes invalidate their keys (read-your-writes through the cache);
session reads additionally require the entry's frontier vector to
dominate the session token.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from ..consistency import SessionToken
from ..core.transactions import UNLIMITED
from ..obs.registry import NULL_REGISTRY, Registry

__all__ = ["CachedRead", "EpsilonReadCache"]


class _Entry:
    __slots__ = ("value", "inconsistency", "frontiers", "fetched_at", "served_by")

    def __init__(
        self,
        value: Any,
        inconsistency: float,
        frontiers: Dict[str, int],
        fetched_at: float,
        served_by: Optional[str],
    ) -> None:
        self.value = value
        self.inconsistency = inconsistency
        self.frontiers = frontiers
        self.fetched_at = fetched_at
        self.served_by = served_by


class CachedRead:
    """One successful cache hit: the value plus its error accounting."""

    __slots__ = ("value", "estimate", "age", "served_by", "frontiers")

    def __init__(
        self,
        value: Any,
        estimate: float,
        age: float,
        served_by: Optional[str],
        frontiers: Dict[str, int],
    ) -> None:
        self.value = value
        #: accumulated inconsistency-import estimate, in update counts.
        self.estimate = estimate
        #: wall-clock seconds since the entry was fetched.
        self.age = age
        #: replica that originally served the entry.
        self.served_by = served_by
        #: the entry's applied-frontier vector at fetch time.
        self.frontiers = frontiers


class EpsilonReadCache:
    """LRU read cache keyed by object, expired by epsilon budget.

    ``max_entries`` bounds memory (LRU eviction); ``ttl`` is the
    wall-clock bound used by ``Consistency.CACHED`` reads (``None``
    disables the wall-clock test entirely — budget-only expiry).
    Pass a :class:`~repro.obs.registry.Registry` to export
    ``read_cache_hits_total`` / ``read_cache_misses_total`` /
    ``read_cache_evictions_total`` / ``read_cache_invalidations_total``.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: Optional[float] = 5.0,
        registry: Optional[Registry] = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.ttl = ttl
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        reg = registry if registry is not None else NULL_REGISTRY
        self.m_hits = reg.counter(
            "read_cache_hits_total",
            "reads served from the client cache inside their budget",
        )
        self.m_misses = reg.counter(
            "read_cache_misses_total",
            "cache lookups that fell through to a replica, by reason",
            labels=("reason",),
        )
        self.m_evictions = reg.counter(
            "read_cache_evictions_total",
            "entries evicted by LRU capacity pressure",
        )
        self.m_invalidations = reg.counter(
            "read_cache_invalidations_total",
            "entries dropped because the client wrote the key",
        )
        # Plain counters too, for callers without a registry.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def store(
        self,
        key: str,
        value: Any,
        inconsistency: float,
        frontiers: Optional[Mapping[str, int]],
        now: float,
        served_by: Optional[str] = None,
    ) -> None:
        """Remember one served read (read-through fill)."""
        self._entries.pop(key, None)
        self._entries[key] = _Entry(
            value,
            float(inconsistency or 0),
            {str(s): int(f) for s, f in (frontiers or {}).items()},
            now,
            served_by,
        )
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.m_evictions.inc()

    def lookup(
        self,
        key: str,
        budget: float,
        known_frontiers: Mapping[str, int],
        now: float,
        token: Optional[SessionToken] = None,
        ttl_only: bool = False,
    ) -> Optional[CachedRead]:
        """Serve ``key`` if the entry's import estimate fits ``budget``.

        ``ttl_only`` implements ``Consistency.CACHED``: the wall-clock
        TTL is the only freshness test.  ``token`` (session reads)
        additionally requires the entry to dominate the token.  A miss
        returns ``None``; the caller fetches and :meth:`store`\\ s.
        """
        entry = self._entries.get(key)
        if entry is None:
            return self._miss("absent")
        age = now - entry.fetched_at
        if self.ttl is not None and age > self.ttl:
            del self._entries[key]
            return self._miss("expired")
        estimate = entry.inconsistency
        for site, known in known_frontiers.items():
            behind = int(known) - entry.frontiers.get(site, 0)
            if behind > 0:
                estimate += behind
        if not ttl_only and budget != UNLIMITED and estimate > budget:
            return self._miss("over_budget")
        if token is not None and not token.dominated_by(entry.frontiers):
            return self._miss("session")
        self._entries.move_to_end(key)
        self.hits += 1
        self.m_hits.inc()
        return CachedRead(
            entry.value, estimate, age, entry.served_by, dict(entry.frontiers)
        )

    def _miss(self, reason: str) -> None:
        self.misses += 1
        self.m_misses.labels(reason=reason).inc()
        return None

    def invalidate(self, keys) -> int:
        """Drop entries the client just wrote (read-your-writes)."""
        dropped = 0
        for key in keys:
            if self._entries.pop(key, None) is not None:
                dropped += 1
        if dropped:
            self.invalidations += dropped
            self.m_invalidations.inc(dropped)
        return dropped

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
