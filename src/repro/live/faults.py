"""Seeded fault injection for the live replica runtime.

The live analogue of :mod:`repro.sim.failures`: where the simulator
schedules crash and partition events on a virtual clock, this module
perturbs the *real* inter-replica transport — frames between live
:class:`~repro.live.server.ReplicaServer` peers can be dropped,
delayed, duplicated, and reordered, and directed links can be severed
outright (partitions).  Injection happens at the frame layer inside
the sender's channel loop, so the wire format and the durable-queue
contract are untouched: a dropped or reordered frame looks exactly
like network loss, and the at-least-once retry + frontier dedup
machinery must absorb it.

Determinism: every directed link draws its fate stream from its own
:class:`random.Random` seeded by ``(plan seed, src, dst)``, so the
sequence of drop/delay/duplicate decisions *per link* is reproducible
across runs regardless of how asyncio interleaves the channels.
(Which payload meets which fate still depends on scheduling — the
guarantee is a deterministic fault *pressure*, which is what the chaos
invariant checks need.)

Usage::

    plan = FaultPlan(seed=7, default=LinkFaults(drop=0.05, delay_max=0.01))
    cluster = LiveCluster(n_sites=3, faults=plan)
    ...
    plan.partition([["site2"], ["site0", "site1"]])   # sever cross links
    plan.heal_all()                                   # end the partition
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LinkFaults",
    "FrameFate",
    "CrashEvent",
    "FaultPlan",
    "WAN_INTRA",
    "WAN_INTER",
]


@dataclass(frozen=True)
class LinkFaults:
    """Per-directed-link fault rates applied to outbound frames."""

    #: probability an outbound frame is silently dropped.
    drop: float = 0.0
    #: probability a (non-dropped) frame is sent twice.
    duplicate: float = 0.0
    #: probability a pending send batch is shuffled before sending.
    reorder: float = 0.0
    #: uniform added latency range, seconds.
    delay_min: float = 0.0
    delay_max: float = 0.0
    #: link bandwidth in bytes/second (0 = unmodelled/infinite).  When
    #: set, each frame's serialized size adds ``nbytes / bandwidth`` of
    #: transmission delay on top of the propagation delay above.
    bandwidth: float = 0.0

    def quiet(self) -> bool:
        """True when this spec injects nothing."""
        return not (
            self.drop
            or self.duplicate
            or self.reorder
            or self.delay_max
            or self.bandwidth
        )


#: Intra-region link profile: sub-millisecond propagation, no
#: meaningful bandwidth ceiling at our frame sizes.
WAN_INTRA = LinkFaults(delay_min=0.0005, delay_max=0.002)

#: Inter-region WAN profile: tens of milliseconds of propagation plus
#: a 4 MiB/s bandwidth model, so big mset-batch frames pay a visible
#: serialization cost crossing regions.
WAN_INTER = LinkFaults(delay_min=0.02, delay_max=0.06, bandwidth=4 << 20)


@dataclass(frozen=True)
class FrameFate:
    """What the plan decided for one outbound frame."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0


#: the do-nothing fate, shared to avoid per-frame allocation.
_CLEAN = FrameFate()


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``site`` at ``at`` seconds into the run, restart after
    ``duration`` more.  The chaos harness executes these; the plan only
    carries the schedule so one seed describes the whole scenario."""

    site: str
    at: float
    duration: float


class FaultPlan:
    """A seeded, deterministic schedule of transport misbehavior.

    One plan is shared by every replica of a cluster; each server
    consults it from its peer channel loops.  All state mutations
    (sever/heal) take effect on the next frame, so partitions can be
    driven from test code while the cluster runs.
    """

    def __init__(
        self, seed: int = 0, default: Optional[LinkFaults] = None
    ) -> None:
        self.seed = seed
        self.default = default if default is not None else LinkFaults()
        self._links: Dict[Tuple[str, str], LinkFaults] = {}
        self._severed: Set[Tuple[str, str]] = set()
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        self.crashes: List[CrashEvent] = []
        #: region name -> site names, when set_regions configured one.
        self.regions: Dict[str, Tuple[str, ...]] = {}
        #: True once any configured link models bandwidth — gates the
        #: (mildly costly) frame-size computation in the send path.
        self.models_bandwidth = bool(self.default.bandwidth)
        #: observability: how much damage was actually injected.
        self.counts: Dict[str, int] = {
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "reordered": 0,
            "blocked": 0,
        }

    # -- configuration -------------------------------------------------------

    def set_default(self, faults: LinkFaults) -> None:
        self.default = faults
        if faults.bandwidth:
            self.models_bandwidth = True

    def set_link(self, src: str, dst: str, faults: LinkFaults) -> None:
        """Override the fault rates of one directed link."""
        self._links[(src, dst)] = faults
        if faults.bandwidth:
            self.models_bandwidth = True

    def set_regions(
        self,
        regions: Dict[str, Sequence[str]],
        intra: Optional[LinkFaults] = None,
        inter: Optional[LinkFaults] = None,
    ) -> None:
        """Model a multi-region topology: cheap links inside each
        region, expensive (latency + bandwidth) links across regions.

        ``regions`` maps region name -> site names.  Defaults:
        :data:`WAN_INTRA` inside, :data:`WAN_INTER` across.
        """
        intra = WAN_INTRA if intra is None else intra
        inter = WAN_INTER if inter is None else inter
        self.regions = {name: tuple(sites) for name, sites in regions.items()}
        site_region = {
            site: name for name, sites in regions.items() for site in sites
        }
        for src, src_region in site_region.items():
            for dst, dst_region in site_region.items():
                if src == dst:
                    continue
                profile = intra if src_region == dst_region else inter
                self.set_link(src, dst, profile)

    def region_groups(self) -> List[List[str]]:
        """Site groups for :meth:`partition`, one per configured region."""
        return [list(sites) for sites in self.regions.values()]

    def faults_for(self, src: str, dst: str) -> LinkFaults:
        return self._links.get((src, dst), self.default)

    def schedule_crash(self, site: str, at: float, duration: float) -> None:
        self.crashes.append(CrashEvent(site, at, duration))

    # -- partitions ----------------------------------------------------------

    def sever(self, src: str, dst: str) -> None:
        """Cut the directed link ``src -> dst`` (frames stop flowing)."""
        self._severed.add((src, dst))

    def sever_site(self, site: str, others: Iterable[str]) -> None:
        """Isolate ``site`` from ``others`` in both directions."""
        for other in others:
            if other != site:
                self.sever(site, other)
                self.sever(other, site)

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Sever every directed link that crosses a group boundary."""
        for i, group in enumerate(groups):
            for j, other in enumerate(groups):
                if i == j:
                    continue
                for src in group:
                    for dst in other:
                        self.sever(src, dst)

    def heal(self, src: str, dst: str) -> None:
        self._severed.discard((src, dst))

    def heal_all(self) -> None:
        """End every partition; links resume their rate-based faults."""
        self._severed.clear()

    def is_severed(self, src: str, dst: str) -> bool:
        if (src, dst) in self._severed:
            self.counts["blocked"] += 1
            return True
        return False

    @property
    def severed_links(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted(self._severed))

    # -- frame fates ---------------------------------------------------------

    def _rng(self, src: str, dst: str) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            # str seeding hashes with sha512 — stable across processes,
            # unlike hash() which PYTHONHASHSEED randomizes.
            rng = random.Random("%d|%s>%s" % (self.seed, src, dst))
            self._rngs[key] = rng
        return rng

    def frame_fate(self, src: str, dst: str, nbytes: int = 0) -> FrameFate:
        """Decide the fate of the next outbound frame on a link.

        ``nbytes`` is the frame's serialized size; links with a
        bandwidth model add ``nbytes / bandwidth`` of transmission
        delay on top of the sampled propagation delay.
        """
        faults = self.faults_for(src, dst)
        if faults.quiet():
            return _CLEAN
        rng = self._rng(src, dst)
        drop = rng.random() < faults.drop
        duplicate = (not drop) and rng.random() < faults.duplicate
        delay = 0.0
        if faults.delay_max > 0:
            delay = rng.uniform(faults.delay_min, faults.delay_max)
        if faults.bandwidth > 0 and nbytes > 0:
            delay += nbytes / faults.bandwidth
        if drop:
            self.counts["dropped"] += 1
        if duplicate:
            self.counts["duplicated"] += 1
        if delay:
            self.counts["delayed"] += 1
        return FrameFate(drop=drop, duplicate=duplicate, delay=delay)

    def reorder_batch(self, src: str, dst: str, batch: List) -> List:
        """Possibly shuffle one pending send batch (FIFO violation).

        The receiver's inbox refuses out-of-order sequence numbers, so
        a reordered batch forces the retry path — exactly the stress
        the stable-queue contract must absorb.
        """
        faults = self.faults_for(src, dst)
        if len(batch) > 1 and faults.reorder:
            rng = self._rng(src, dst)
            if rng.random() < faults.reorder:
                batch = list(batch)
                rng.shuffle(batch)
                self.counts["reordered"] += 1
        return batch
