"""Live replica-control engines: method logic minus the transport.

Each engine owns one site's store and divergence-control state and
exposes the same three method-specific steps the simulator's
:class:`~repro.replica.base.ReplicaControlMethod` does — update
validation, MSet processing, and query admission — but driven by an
asyncio event loop and wall-clock time instead of the deterministic
simulator.  The ordering and lock-counter state machines are the
*shared* classes from :mod:`repro.replica.base`
(:class:`OrderedApplyBuffer`, :class:`LockCounterSiteState`), so sim
and live provably run the same MSet-processing logic.

Engines are transport-agnostic: the server layer decides how MSets
travel (durable queues over TCP) and calls :meth:`LiveEngine.accept`
for every delivered MSet, local or remote.  All mutation happens under
the engine's condition variable; queries wait on it for divergence
control, exactly like the simulator's ``QueryRunner`` retry loop.
"""

from __future__ import annotations

import asyncio
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import Operation, TimestampedWriteOp
from ..core.transactions import EpsilonSpec, UNLIMITED, make_et
from ..obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Registry,
)
from ..obs.trace import TraceRecorder
from ..replica.base import LockCounterSiteState, OrderedApplyBuffer
from ..replica.commu import CommutativeOperations, NonCommutativeError
from ..replica.mset import MSet, MSetKind
from ..replica.ritu import ReadIndependentUpdates
from ..storage.kv import KeyValueStore, StoreSnapshot
from ..storage.mvstore import MultiVersionStore, NoVisibleVersion
from .compensation import CompensationLog
from .protocol import decode_mset, decode_ops, encode_mset, encode_ops

__all__ = [
    "LiveEngine",
    "CommuLiveEngine",
    "OrdupLiveEngine",
    "RowaLiveEngine",
    "RituLiveEngine",
    "RituMvLiveEngine",
    "CompeLiveEngine",
    "QueryOutcome",
    "QueryTimeout",
    "make_engine",
    "ENGINES",
]


class QueryTimeout(RuntimeError):
    """A query could not be admitted within its deadline."""


@dataclass
class QueryOutcome:
    """What a live query observed, with its error accounting."""

    values: Dict[str, Any] = field(default_factory=dict)
    #: number of distinct concurrent update ETs whose effects were
    #: observed (the paper's inconsistency counter).
    inconsistency: int = 0
    #: tids of the imported update ETs.
    overlap: Tuple[Any, ...] = ()
    #: times the query blocked on divergence control.
    waits: int = 0


class _QueryBudget:
    """Import accounting for one query: count and value-drift limits."""

    def __init__(self, spec: EpsilonSpec) -> None:
        self.spec = spec
        self.imported: Set[Any] = set()
        self.drift_used = 0.0

    def try_charge(
        self,
        sources: Set[Any],
        drift_of: Callable[[Any], Optional[float]],
    ) -> bool:
        """Charge for each new source; False (and no change) when over."""
        new = sorted(sources - self.imported)
        if not new:
            return True
        if len(self.imported) + len(new) > self.spec.import_limit:
            return False
        if self.spec.value_limit != UNLIMITED:
            total = 0.0
            for source in new:
                drift = drift_of(source)
                if drift is None:  # unknown drift counts as unbounded
                    return False
                total += drift
            if self.drift_used + total > self.spec.value_limit:
                return False
            self.drift_used += total
        self.imported.update(new)
        return True

    def reset(self) -> None:
        self.imported.clear()
        self.drift_used = 0.0


class LiveEngine:
    """Shared machinery for the live replica-control engines."""

    method_name = "?"
    #: True when updates must acquire a global order token first.
    needs_order = False
    #: True when an update commit waits for every peer's durable ack
    #: (the synchronous write-all baseline).
    sync_commit = False

    def __init__(
        self,
        site: str,
        peers: Sequence[str],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.site = site
        self.peers = tuple(peers)
        self.clock = clock
        self.store = KeyValueStore()
        #: guards all engine state; queries wait on it.
        self.cond = asyncio.Condition()
        #: tid -> worst-case value drift of that update (None=unbounded).
        self._drift: Dict[Any, Optional[float]] = {}
        #: tid -> values read by a read-modify-report update at its
        #: origin's apply instant (standard read-then-write semantics).
        self.read_results: Dict[Any, Dict[str, Any]] = {}
        self.applied_count = 0
        #: instant of the last applied MSet (None before the first) —
        #: exposed as apply staleness for failure-detection dashboards.
        self.last_applied_at: Optional[float] = None
        self.bind_observability(NULL_REGISTRY, TraceRecorder(enabled=False))

    def bind_observability(
        self, registry: Registry, trace: TraceRecorder
    ) -> None:
        """Attach this engine to a metrics registry and trace recorder.

        Called by the hosting server once per engine; engines default
        to no-op instruments so standalone use needs no wiring.
        """
        self.registry = registry
        self.trace = trace
        self._applied_counter = registry.counter(
            "applied_msets_total", "MSets applied by the engine"
        )
        self._apply_hist = registry.histogram(
            "apply_batch_seconds",
            "engine-lock time spent applying one delivered batch",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._queries_counter = registry.counter(
            "queries_total",
            "query ETs answered",
            labels=("method",),
        )
        self._epsilon_last = registry.gauge(
            "epsilon_last",
            "inconsistency observed by the most recent query",
            labels=("method",),
        )
        self._epsilon_max = registry.gauge(
            "epsilon_max",
            "largest inconsistency any query has observed",
            labels=("method",),
        )
        self._epsilon_violations = registry.counter(
            "epsilon_violations_total",
            "queries whose observed inconsistency exceeded their limit",
            labels=("method",),
        )
        self._inconsistency_hist = registry.histogram(
            "query_inconsistency",
            "distribution of per-query inconsistency counters",
            labels=("method",),
            buckets=DEFAULT_COUNT_BUCKETS,
        )

    def note_query_outcome(
        self, outcome: "QueryOutcome", spec: EpsilonSpec
    ) -> None:
        """Publish one query's error accounting (epsilon gauges/trace)."""
        method = self.method_name
        self._queries_counter.labels(method=method).inc()
        self._epsilon_last.labels(method=method).set(outcome.inconsistency)
        self._epsilon_max.labels(method=method).set_max(
            outcome.inconsistency
        )
        self._inconsistency_hist.labels(method=method).observe(
            outcome.inconsistency
        )
        limit = spec.import_limit
        if limit != UNLIMITED and outcome.inconsistency > limit:
            self._epsilon_violations.labels(method=method).inc()
        self.trace.event(
            "query",
            method=method,
            inconsistency=outcome.inconsistency,
            limit=(None if limit == UNLIMITED else limit),
            waits=outcome.waits,
        )

    # -- update path ---------------------------------------------------------

    def validate_update(self, ops: Sequence[Operation]) -> None:
        """Raise when the operation mix violates the method restriction."""

    def make_mset(
        self,
        tid: Any,
        ops: Sequence[Operation],
        order: Optional[Tuple[int, int]] = None,
        info: Tuple[Tuple[str, Any], ...] = (),
    ) -> MSet:
        """Build the update MSet for a locally accepted ET.

        The method hook of the update path: RITU stamps the writes with
        the origin's Lamport clock here, and the multiversion variant
        additionally turns the order token into the global transaction
        number.  The server always routes local update construction
        through this method so the MSet that enters the durable queues
        is already in method form.
        """
        return MSet(
            tid,
            MSetKind.UPDATE,
            tuple(ops),
            origin=self.site,
            order=order,
            info=info,
        )

    def attach_storage(
        self,
        data_dir: pathlib.Path,
        fsync: bool = False,
        fsync_interval: float = 0.0,
    ) -> None:
        """Open method-owned durable state under the site's data dir.

        Called by the hosting server in ``bind()`` *before* recovery,
        so a method that keeps its own log (COMPE's compensation log)
        has it loaded when replay starts.  No-op for stateless methods.
        """

    def close(self) -> None:
        """Release method-owned resources (durable log handles)."""

    async def accept(self, mset: MSet, local: bool = False) -> List[MSet]:
        """Process one delivered MSet; returns the MSets applied now.

        ``local`` marks the origin's own copy (it may carry divergence
        obligations a remote copy does not).  Recovery replays both
        kinds through this same entry point.
        """
        async with self.cond:
            started = self.clock()
            applied = self._accept_locked(mset, local)
            self._apply_hist.observe(self.clock() - started)
            self.cond.notify_all()
        self._applied_counter.inc(len(applied))
        return applied

    async def accept_batch(
        self, msets: Sequence[MSet], local: bool = False
    ) -> List[MSet]:
        """Process a whole delivered batch under ONE lock acquisition.

        The batched propagation path delivers up to ``batch_size``
        MSets per frame; acquiring the engine condition once per batch
        (instead of once per MSet) and notifying waiters once keeps the
        receive side from thrashing blocked queries awake N times for
        one frame's worth of state change.
        """
        applied: List[MSet] = []
        async with self.cond:
            started = self.clock()
            for mset in msets:
                applied.extend(self._accept_locked(mset, local))
            self._apply_hist.observe(self.clock() - started)
            self.cond.notify_all()
        self._applied_counter.inc(len(applied))
        return applied

    def _accept_locked(self, mset: MSet, local: bool) -> List[MSet]:
        """Method-specific MSet processing; ``self.cond`` is held."""
        raise NotImplementedError

    def _note_drift(self, mset: MSet) -> None:
        total: Optional[float] = 0.0
        for op in mset.ops:
            delta = op.value_delta()
            if delta is None:
                total = None
                break
            total += delta
        self._drift[mset.tid] = total

    def _apply_ops(self, mset: MSet) -> None:
        reads = mset.get_info("reads")
        if reads and mset.origin == self.site:
            # The update's reads execute at its apply instant, before
            # its own writes (read-modify-report).
            self.read_results[mset.tid] = {
                key: self.store.get(key, 0) for key in reads
            }
        for op in mset.ops:
            self.store.apply(op, default=0)
        self.applied_count += 1
        self.last_applied_at = self.clock()

    def pop_read_results(self, tid: Any) -> Dict[str, Any]:
        return self.read_results.pop(tid, {})

    async def fully_acked(self, tid: Any, keys: Sequence[str]) -> None:
        """Every peer durably holds this local update's MSet."""

    async def fully_acked_many(
        self, items: Sequence[Tuple[Any, Sequence[str]]]
    ) -> None:
        """Batch form of :meth:`fully_acked` for cumulative acks.

        One peer ack can retire a whole send window of local updates;
        methods with per-update obligations override this to release
        them under a single lock acquisition instead of thrashing
        blocked queries awake once per retired update.
        """
        for tid, keys in items:
            await self.fully_acked(tid, keys)

    async def hold_counters(self, tid: Any, keys: Sequence[str]) -> None:
        """Re-assert the divergence obligation of a still-unacked local
        update whose apply is already inside a restored checkpoint (so
        replay could not re-raise it).  No-op for methods without
        lock-counter state."""

    # -- query path ----------------------------------------------------------

    async def query(
        self,
        keys: Sequence[str],
        spec: EpsilonSpec,
        timeout: float = 30.0,
    ) -> QueryOutcome:
        raise NotImplementedError

    async def _wait_for_change(
        self, outcome: QueryOutcome, deadline: float
    ) -> None:
        """Block (counted) until engine state changes or the deadline."""
        outcome.waits += 1
        remaining = deadline - self.clock()
        if remaining <= 0:
            raise QueryTimeout(
                "query at %s blocked beyond its deadline" % self.site
            )
        try:
            await asyncio.wait_for(
                self.cond.wait(), timeout=min(remaining, 0.25)
            )
        except asyncio.TimeoutError:
            pass  # re-check state; protects against missed notifies

    # -- checkpoint / restore ------------------------------------------------

    async def checkpoint(self) -> Dict[str, Any]:
        """A JSON-safe image of this engine's applied state.

        Captured atomically under the engine condition: store values
        with their write stamps (the RITU multiversion floor — a
        restored site answers version queries exactly where the
        pre-snapshot site did), the applied-MSet count, the per-tid
        drift table queries charge against, and method-specific apply
        state via :meth:`_method_checkpoint`.

        Deliberately *not* captured: COMMU lock-counter holders (they
        mirror the outbox pending set and are rebuilt from it at
        recovery — see ``ReplicaServer._recover``) and pending
        read-modify-report results (their client connection did not
        survive the crash, so nobody can claim them).
        """
        async with self.cond:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> Dict[str, Any]:
        image = self.store.snapshot()
        state: Dict[str, Any] = {
            "method": self.method_name,
            "applied_count": self.applied_count,
            "store": {
                "values": dict(image.values),
                "stamps": {
                    key: (list(stamp) if stamp is not None else None)
                    for key, stamp in image.stamps.items()
                },
            },
            "drift": dict(self._drift),
        }
        state.update(self._method_checkpoint())
        return state

    def _method_checkpoint(self) -> Dict[str, Any]:
        """Method-specific additions to the checkpoint image."""
        return {}

    async def restore(self, state: Dict[str, Any]) -> None:
        """Install a checkpoint image, replacing all applied state.

        The caller (server recovery or snapshot install) is
        responsible for aligning the durable-queue frontiers with the
        image's — the engine itself only swaps its in-memory state.
        """
        if state.get("method") != self.method_name:
            raise ValueError(
                "checkpoint is for method %r, engine runs %r"
                % (state.get("method"), self.method_name)
            )
        async with self.cond:
            self._restore_locked(state)
            self.cond.notify_all()

    def _restore_locked(self, state: Dict[str, Any]) -> None:
        store = state.get("store", {})
        stamps = store.get("stamps", {})
        self.store.restore(
            StoreSnapshot(
                values=dict(store.get("values", {})),
                stamps={
                    key: (tuple(stamp) if stamp is not None else None)
                    for key, stamp in stamps.items()
                },
            )
        )
        self.applied_count = int(state.get("applied_count", 0))
        self._drift = dict(state.get("drift", {}))
        self.read_results.clear()
        self.last_applied_at = self.clock()
        self._method_restore(state)

    def _method_restore(self, state: Dict[str, Any]) -> None:
        """Method-specific state install; ``self.cond`` is held."""

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Current store contents (convergence assertions)."""
        return self.store.as_dict()

    def quiescent(self) -> bool:
        """No method-level work outstanding at this site."""
        return True

    def stats(self) -> Dict[str, Any]:
        age = None
        if self.last_applied_at is not None:
            age = round(self.clock() - self.last_applied_at, 4)
        return {
            "method": self.method_name,
            "applied": self.applied_count,
            "apply_staleness": age,
            "quiescent": self.quiescent(),
        }


class CommuLiveEngine(LiveEngine):
    """COMMU over real sockets.

    MSets apply in arrival order (the operation-semantics restriction
    makes any order equivalent); divergence bounding reuses the
    simulator's lock-counter state: the origin holds every written
    object's counter from local commit until all peers have durably
    acknowledged the MSet, so origin-site queries observe cluster-wide
    in-flight inconsistency.
    """

    method_name = "COMMU"

    def __init__(self, site, peers, clock=time.monotonic) -> None:
        super().__init__(site, peers, clock)
        self.state = LockCounterSiteState()

    def validate_update(self, ops: Sequence[Operation]) -> None:
        # The simulator's validator is the single source of truth for
        # the COMMU operation restriction.
        CommutativeOperations.check_commutative(make_et(list(ops)))

    def _accept_locked(self, mset: MSet, local: bool) -> List[MSet]:
        if local:
            # Held until every peer durably acks (fully_acked).
            self.state.raise_counters(mset.tid, mset.keys)
        self._note_drift(mset)
        self._apply_ops(mset)
        self.state.note_applied(self.clock(), mset.tid, mset.keys)
        return [mset]

    async def fully_acked(self, tid: Any, keys: Sequence[str]) -> None:
        async with self.cond:
            self.state.release_counters(tid, keys)
            self.cond.notify_all()

    async def fully_acked_many(
        self, items: Sequence[Tuple[Any, Sequence[str]]]
    ) -> None:
        if not items:
            return
        async with self.cond:
            for tid, keys in items:
                self.state.release_counters(tid, keys)
            self.cond.notify_all()

    async def hold_counters(self, tid: Any, keys: Sequence[str]) -> None:
        async with self.cond:
            self.state.raise_counters(tid, keys)

    def _query_sources(self, key: str, start: float) -> Set[Any]:
        """Inconsistency sources for one key read: in-flight updates
        holding the key's counter plus updates applied since the query
        began (mixed observations).  COMPE extends this with
        potentially-compensated (undecided) updates."""
        return self.state.holders_of(key) | self.state.applied_since(
            key, start
        )

    async def query(
        self,
        keys: Sequence[str],
        spec: EpsilonSpec,
        timeout: float = 30.0,
    ) -> QueryOutcome:
        outcome = QueryOutcome()
        budget = _QueryBudget(spec)
        deadline = self.clock() + timeout
        start = self.clock()
        index = 0
        ordered_keys = list(keys)
        while index < len(ordered_keys):
            advanced = False
            async with self.cond:
                key = ordered_keys[index]
                sources = self._query_sources(key, start)
                if budget.try_charge(sources, self._drift.get):
                    outcome.values[key] = self.store.get(key, 0)
                    index += 1
                    advanced = True
                else:
                    # COMMU blocked-query semantics: discard partial
                    # reads and re-serialize after the conflicting
                    # updates.
                    index = 0
                    outcome.values.clear()
                    budget.reset()
                    await self._wait_for_change(outcome, deadline)
                    start = self.clock()
            if advanced:
                # Yield between reads so update applies genuinely
                # interleave with the query — the inconsistency ESR
                # bounds is exactly this interleaving.
                await asyncio.sleep(0)
        outcome.inconsistency = len(budget.imported)
        outcome.overlap = tuple(sorted(budget.imported))
        return outcome

    def quiescent(self) -> bool:
        return not self.state.holders

    def _method_restore(self, state: Dict[str, Any]) -> None:
        # Lock-counter holders mirror the outbox pending set, so the
        # server re-raises them from the surviving outbox after the
        # install; the applied-history table (mixed-observation
        # detection) is keyed by wall-clock apply instants that do not
        # survive a restart — pre-snapshot updates are stable by
        # construction, so dropping them can only over-admit nothing.
        self.state = LockCounterSiteState()

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["held_keys"] = len(self.state.holders)
        return out


class OrdupLiveEngine(LiveEngine):
    """ORDUP over real sockets (central ordering).

    Every update acquires a gap-free sequence token from the cluster's
    order server; each site feeds delivered MSets through the shared
    :class:`OrderedApplyBuffer` and applies them in token order.  Free
    queries charge their counter for writers applied beyond the
    query's start frontier; an exhausted counter converts the query to
    ordered mode — an atomic prefix-consistent snapshot read.
    """

    method_name = "ORDUP"
    needs_order = True

    def __init__(self, site, peers, clock=time.monotonic) -> None:
        super().__init__(site, peers, clock)
        self.buffer = OrderedApplyBuffer()
        #: key -> (order token, tid) of the last applied writer.
        self.last_writer: Dict[str, Tuple[Tuple[int, int], Any]] = {}
        #: highest order token applied, gap-free.
        self.frontier: Tuple[int, int] = (0, 0)
        #: highest leadership epoch this engine has adopted; tokens
        #: from older epochs are fenced unless they predate every
        #: newer epoch's handover base.
        self._current_epoch = 0
        #: epoch -> base sequence the epoch's leader resumed from.
        self._epoch_bases: Dict[int, int] = {0: 0}
        #: stale-epoch tokens refused (observability).
        self.fenced_count = 0

    def adopt_epoch(self, epoch: int, base: int) -> None:
        """Record a leadership handover: ``epoch``'s leader resumed at ``base``.

        Must be called with the server's apply lock held (like
        ``accept``).  Purges held-back MSets that the handover fences:
        entries above ``base`` carrying an older epoch were granted by
        a deposed leader after the handover point and can never become
        applicable.
        """
        if epoch <= self._current_epoch:
            return
        self._current_epoch = int(epoch)
        self._epoch_bases[int(epoch)] = int(base)
        stale = [
            seqno
            for seqno, held in self.buffer._holdback.items()
            if not self._epoch_admits(held.order[1], seqno)
        ]
        for seqno in stale:
            del self.buffer._holdback[seqno]
            self.fenced_count += 1

    def _epoch_admits(self, epoch: int, seq: int) -> bool:
        """Is a ``(seq, epoch)`` token admissible under the fence?

        Current/newer epochs always admit (a newer epoch implies a
        majority elected it; adoption follows via gossip).  An older
        epoch admits only tokens at or below the base of every adopted
        newer epoch — i.e. grants that predate the handover and are
        merely arriving late.
        """
        if epoch >= self._current_epoch:
            return True
        floor = min(
            b for e, b in self._epoch_bases.items() if e > epoch
        )
        return seq <= floor

    def order_admissible(self, order: Tuple[int, int]) -> bool:
        return self._epoch_admits(int(order[1]), int(order[0]))

    def max_order_seen(self) -> int:
        """Highest sequence number durably known here, held-back included.

        A new leader resumes from the max of this across the electing
        majority, so every grant any replica has seen is covered.
        """
        seen = self.frontier[0]
        if self.buffer._holdback:
            seen = max(seen, max(self.buffer._holdback))
        return seen

    def _accept_locked(self, mset: MSet, local: bool) -> List[MSet]:
        assert mset.order is not None, "ORDUP MSets carry an order token"
        if not self._epoch_admits(mset.order[1], mset.order[0]):
            # Fenced: granted by a deposed leader past the handover
            # point.  Return no applies; the channel still acks so the
            # sender's queue drains (the update was never client-acked).
            self.fenced_count += 1
            return []
        applied: List[MSet] = []
        for ready in self.buffer.offer(mset.order[0], mset):
            self._note_drift(ready)
            self._apply_ops(ready)
            self.frontier = max(self.frontier, ready.order)
            for key in ready.keys:
                self.last_writer[key] = (ready.order, ready.tid)
            applied.append(ready)
        return applied

    async def query(
        self,
        keys: Sequence[str],
        spec: EpsilonSpec,
        timeout: float = 30.0,
    ) -> QueryOutcome:
        outcome = QueryOutcome()
        budget = _QueryBudget(spec)
        ordered_keys = list(keys)
        ordered_mode = spec.is_strict
        if not ordered_mode:
            async with self.cond:
                start_frontier = self.frontier
            for key in ordered_keys:
                async with self.cond:
                    # An applied writer beyond the query's start
                    # frontier is an out-of-order observation.
                    writer = self.last_writer.get(key)
                    sources: Set[Any] = set()
                    if writer is not None and writer[0] > start_frontier:
                        sources = {writer[1]}
                    if not budget.try_charge(sources, self._drift.get):
                        # Counter exhausted: convert to ordered mode.
                        outcome.waits += 1
                        ordered_mode = True
                        break
                    outcome.values[key] = self.store.get(key, 0)
                await asyncio.sleep(0)  # let applies interleave
        if ordered_mode:
            # Ordered mode: one atomic snapshot under the engine lock
            # is a prefix of the global update order, hence
            # serializable ("the query ET is allowed to proceed only
            # when it is running in the global order").
            async with self.cond:
                for key in ordered_keys:
                    outcome.values[key] = self.store.get(key, 0)
        outcome.inconsistency = len(budget.imported)
        outcome.overlap = tuple(sorted(budget.imported))
        return outcome

    def quiescent(self) -> bool:
        return self.buffer.drained()

    def _method_checkpoint(self) -> Dict[str, Any]:
        # The apply-buffer position *is* ORDUP's recovery state: the
        # next order token the site may apply, the gap-free frontier,
        # the last writer per key (free-query accounting), and any
        # held-back MSets waiting for an earlier token.
        return {
            "ordup": {
                "expected": self.buffer.expected,
                "frontier": list(self.frontier),
                "last_writer": {
                    key: [list(order), tid]
                    for key, (order, tid) in self.last_writer.items()
                },
                "held": [
                    [seqno, encode_mset(mset)]
                    for seqno, mset in sorted(
                        self.buffer._holdback.items()
                    )
                ],
                "epoch": self._current_epoch,
                "bases": {
                    str(e): b for e, b in self._epoch_bases.items()
                },
            }
        }

    def _method_restore(self, state: Dict[str, Any]) -> None:
        ordup = state.get("ordup", {})
        self.buffer = OrderedApplyBuffer(
            expected=int(ordup.get("expected", 1))
        )
        for seqno, encoded in ordup.get("held", ()):
            self.buffer._holdback[int(seqno)] = decode_mset(encoded)
        frontier = ordup.get("frontier", (0, 0))
        self.frontier = (int(frontier[0]), int(frontier[1]))
        self.last_writer = {
            key: ((int(order[0]), int(order[1])), tid)
            for key, (order, tid) in ordup.get(
                "last_writer", {}
            ).items()
        }
        self._current_epoch = int(ordup.get("epoch", 0))
        self._epoch_bases = {
            int(e): int(b)
            for e, b in ordup.get("bases", {"0": 0}).items()
        }
        self._epoch_bases.setdefault(0, 0)

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["frontier"] = list(self.frontier)
        out["held_back"] = self.buffer.held
        out["epoch"] = self._current_epoch
        out["fenced"] = self.fenced_count
        return out


class RowaLiveEngine(CommuLiveEngine):
    """Synchronous write-all baseline (ROWA-style commit).

    Identical MSet processing to COMMU, but the origin's commit
    acknowledgement waits until every peer has durably received the
    MSet — the read-one-write-all coordination cost the asynchronous
    methods avoid.  Used by the live benchmark as the sync baseline.
    """

    method_name = "ROWA"
    sync_commit = True

    def validate_update(self, ops: Sequence[Operation]) -> None:
        # ROWA has no operation-semantics restriction; convergence for
        # non-commutative mixes is the application's concern here.
        pass


class RituLiveEngine(CommuLiveEngine):
    """RITU over real sockets: timestamped single-version updates.

    Updates must be *read-independent* (blind writes); the origin
    stamps every write with its Lamport clock and the store applies
    them under the **Thomas write rule** (an older stamp never
    overwrites a newer version), so any arrival order converges.
    Divergence bounding reuses the COMMU lock-counter accounting:
    an in-flight stamped write holds its keys' counters at the origin
    until every peer durably acked it.

    Crash-safety: the Lamport counter is part of the method
    checkpoint.  Recovery replays the log tail through
    :meth:`_accept_locked`, which re-observes every stamp it sees, so
    a replica restored from a *compacted* log (where replay cannot
    re-derive the counter) still never re-issues a stale stamp — a
    stale stamp would be silently dropped by the Thomas rule
    everywhere, losing an acked update.
    """

    method_name = "RITU"

    def __init__(self, site, peers, clock=time.monotonic) -> None:
        super().__init__(site, peers, clock)
        #: origin Lamport clock; ties broken by the site's index in
        #: the sorted membership, so stamps totally order.
        self._lamport = 0
        self._site_index = sorted((site, *peers)).index(site)
        self._stamped_keys: Set[str] = set()

    def bind_observability(
        self, registry: Registry, trace: TraceRecorder
    ) -> None:
        super().bind_observability(registry, trace)
        self._versions_gauge = registry.gauge(
            "ritu_versions_gauge",
            "object versions held by the RITU store "
            "(one per key single-version; all versions multiversion)",
        )

    def validate_update(self, ops: Sequence[Operation]) -> None:
        # The simulator's validator is the single source of truth for
        # the RITU restriction (no reads, read-independent writes).
        ReadIndependentUpdates.check_read_independent(make_et(list(ops)))

    def make_mset(
        self,
        tid: Any,
        ops: Sequence[Operation],
        order: Optional[Tuple[int, int]] = None,
        info: Tuple[Tuple[str, Any], ...] = (),
    ) -> MSet:
        self._lamport += 1
        stamp = (self._lamport, self._site_index)
        stamped = tuple(
            TimestampedWriteOp(op.key, op.value, stamp) for op in ops
        )
        return MSet(
            tid,
            MSetKind.UPDATE,
            stamped,
            origin=self.site,
            order=order,
            info=info,
        )

    def _observe_stamps(self, mset: MSet) -> None:
        """Advance the Lamport clock past every observed stamp (local
        and remote, live delivery and recovery replay alike)."""
        for op in mset.ops:
            if (
                isinstance(op, TimestampedWriteOp)
                and op.timestamp[0] > self._lamport
            ):
                self._lamport = int(op.timestamp[0])

    def _accept_locked(self, mset: MSet, local: bool) -> List[MSet]:
        self._observe_stamps(mset)
        applied = super()._accept_locked(mset, local)
        self._stamped_keys.update(mset.keys)
        self._versions_gauge.set(len(self._stamped_keys))
        return applied

    def _method_checkpoint(self) -> Dict[str, Any]:
        return {"ritu": {"lamport": self._lamport}}

    def _method_restore(self, state: Dict[str, Any]) -> None:
        super()._method_restore(state)
        self._lamport = int(state.get("ritu", {}).get("lamport", 0))
        self._stamped_keys = set(state.get("store", {}).get("values", {}))
        self._versions_gauge.set(len(self._stamped_keys))

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["lamport"] = self._lamport
        return out


class RituMvLiveEngine(RituLiveEngine):
    """RITU's multiversion variant: versioned store + VTNC frontier.

    The paper's Modular Synchronization Method: every update carries a
    *global transaction number* — live, the token from the cluster's
    order server, the same machinery ORDUP's sequencer and failover
    use — and installs immutable versions at that number.  The VTNC
    (visible transaction number counter) advances along the contiguous
    prefix of applied numbers; versions at or below it are stable and
    read for free, newer (unstable) versions charge the query's
    counter one unit per writer, and an exhausted budget degrades the
    read to the newest *stable* version instead of blocking.

    Unlike ORDUP there is **no holdback**: version installation
    commutes, so MSets apply on arrival whatever their number, and
    only *visibility* waits for the contiguous frontier.
    """

    method_name = "RITU-MV"
    needs_order = True

    def __init__(self, site, peers, clock=time.monotonic) -> None:
        super().__init__(site, peers, clock)
        self.mvstore = MultiVersionStore()
        #: transaction numbers applied here, above the VTNC.
        self._applied_numbers: Set[int] = set()
        self._version_count = 0
        #: reads served from a stable version because the budget was
        #: exhausted (the degrade-instead-of-block path).
        self.degraded_reads = 0

    @property
    def vtnc(self) -> int:
        return self.mvstore.vtnc

    def make_mset(
        self,
        tid: Any,
        ops: Sequence[Operation],
        order: Optional[Tuple[int, int]] = None,
        info: Tuple[Tuple[str, Any], ...] = (),
    ) -> MSet:
        if order is None:
            raise ValueError("RITU-MV updates need a global order token")
        mset = super().make_mset(tid, ops, order=order, info=info)
        # The order token's sequence *is* the global transaction number.
        return MSet(
            mset.tid,
            mset.kind,
            mset.ops,
            origin=mset.origin,
            order=mset.order,
            txn_number=int(order[0]),
            info=mset.info,
        )

    def _note_number(self, txn: int) -> None:
        """Advance the VTNC along the contiguous applied prefix."""
        if txn <= self.mvstore.vtnc:
            return
        self._applied_numbers.add(txn)
        frontier = self.mvstore.vtnc
        while frontier + 1 in self._applied_numbers:
            frontier += 1
            self._applied_numbers.discard(frontier)
        self.mvstore.advance_vtnc(frontier)

    def _accept_locked(self, mset: MSet, local: bool) -> List[MSet]:
        assert mset.txn_number is not None, (
            "RITU-MV MSets carry a transaction number"
        )
        txn = int(mset.txn_number)
        self._observe_stamps(mset)
        for op in mset.ops:
            self.mvstore.install(op.key, op.value, txn, writer=mset.tid)
            self._version_count += 1
        # Mirror into the flat store (Thomas rule) so convergence
        # checks, snapshots and the `values` verb keep working
        # unchanged alongside the version history.
        self._note_drift(mset)
        self._apply_ops(mset)
        self._note_number(txn)
        self._versions_gauge.set(self._version_count)
        return [mset]

    async def query(
        self,
        keys: Sequence[str],
        spec: EpsilonSpec,
        timeout: float = 30.0,
    ) -> QueryOutcome:
        outcome = QueryOutcome()
        budget = _QueryBudget(spec)
        for key in list(keys):
            async with self.cond:
                try:
                    latest = self.mvstore.read_latest(key)
                except NoVisibleVersion:
                    outcome.values[key] = self.store.get(key, 0)
                    continue
                if latest.txn_number <= self.mvstore.vtnc:
                    # Stable (VTNC-visible): serializable for free.
                    outcome.values[key] = latest.value
                elif budget.try_charge({latest.writer}, self._drift.get):
                    outcome.values[key] = latest.value
                else:
                    # Budget exhausted: degrade to the newest *stable*
                    # version instead of blocking (RITU queries never
                    # wait — stability only moves forward).
                    self.degraded_reads += 1
                    try:
                        outcome.values[key] = (
                            self.mvstore.read_visible(key).value
                        )
                    except NoVisibleVersion:
                        outcome.values[key] = 0
            await asyncio.sleep(0)  # let applies interleave
        outcome.inconsistency = len(budget.imported)
        outcome.overlap = tuple(sorted(budget.imported))
        return outcome

    def max_order_seen(self) -> int:
        """Highest transaction number known here (failover resume)."""
        seen = self.mvstore.vtnc
        if self._applied_numbers:
            seen = max(seen, max(self._applied_numbers))
        return seen

    def _method_checkpoint(self) -> Dict[str, Any]:
        state = super()._method_checkpoint()
        state["ritu_mv"] = {
            "mv": self.mvstore.to_state(),
            "applied_numbers": sorted(self._applied_numbers),
            "version_count": self._version_count,
        }
        return state

    def _method_restore(self, state: Dict[str, Any]) -> None:
        super()._method_restore(state)
        mv = state.get("ritu_mv", {})
        self.mvstore = MultiVersionStore.from_state(mv.get("mv", {}))
        self._applied_numbers = {
            int(n) for n in mv.get("applied_numbers", ())
        }
        self._version_count = int(mv.get("version_count", 0))
        self._versions_gauge.set(self._version_count)

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["vtnc"] = self.mvstore.vtnc
        out["versions"] = self._version_count
        out["degraded_reads"] = self.degraded_reads
        return out


class CompeLiveEngine(CommuLiveEngine):
    """COMPE over real sockets: optimistic apply + backward recovery.

    Every update applies (and propagates) *before* its global
    decision.  A COMMIT decision merely retires the obligation; an
    ABORT decision runs **backward recovery** — the inverse operations
    durably recorded in the compensation log apply as a compensating
    step, and the update is reported ``COMPENSATED`` to its client.
    At live scale this is the saga pattern: a saga's steps are
    decision-deferred updates, and aborting the saga compensates its
    committed steps in reverse submission order.

    Operation restriction (stricter than the simulator's, by design):
    admitted operations must commute *and* have prior-value-
    independent inverses (increment/decrement, multiply/divide,
    append).  That combination makes direct compensation exact in any
    interleaving at every replica — the rollback-and-replay path the
    simulator keeps for the general case is never needed — and makes
    compensation-log replay order-free.

    Queries charge one unit per *undecided* update observed (its
    effects may yet be compensated away), on top of the COMMU
    in-flight accounting.
    """

    method_name = "COMPE"

    def __init__(self, site, peers, clock=time.monotonic) -> None:
        super().__init__(site, peers, clock)
        self._clog: Optional[CompensationLog] = None
        #: tid -> encoded inverse ops (reverse op order), until decided.
        self._undo: Dict[Any, List[Any]] = {}
        #: tid -> written keys, until decided.
        self._undo_keys: Dict[Any, Tuple[str, ...]] = {}
        #: optimistically applied updates awaiting their decision.
        self._undecided: Dict[Any, Tuple[str, ...]] = {}
        self._undecided_by_key: Dict[str, Set[Any]] = {}
        #: tid -> "commit" | "abort"; the first decision is final.
        self._decided: Dict[Any, str] = {}
        #: tids undone by backward recovery (COMPENSATED reporting).
        self._compensated: Set[Any] = set()
        #: saga bookkeeping: member tid -> saga id, saga id -> members
        #: in submission order (compensated in reverse).
        self._saga_members: Dict[Any, str] = {}
        self._sagas: Dict[str, List[Any]] = {}
        self.compensation_count = 0
        self.operations_undone = 0

    def bind_observability(
        self, registry: Registry, trace: TraceRecorder
    ) -> None:
        super().bind_observability(registry, trace)
        self._compensations_counter = registry.counter(
            "compensations_total",
            "updates undone by COMPE backward recovery",
        )
        self._clog_records_counter = registry.counter(
            "compensation_log_records_total",
            "records appended to the durable compensation log",
        )
        self._undecided_gauge = registry.gauge(
            "compe_undecided_updates",
            "optimistically applied updates awaiting a decision",
        )

    def attach_storage(
        self,
        data_dir: pathlib.Path,
        fsync: bool = False,
        fsync_interval: float = 0.0,
    ) -> None:
        self._clog = CompensationLog(
            pathlib.Path(data_dir) / "compensation.log",
            fsync=fsync,
            fsync_interval=fsync_interval,
        )

    def close(self) -> None:
        if self._clog is not None:
            self._clog.close()

    @property
    def compensation_log(self) -> Optional[CompensationLog]:
        return self._clog

    def validate_update(self, ops: Sequence[Operation]) -> None:
        super().validate_update(ops)  # COMMU commutativity restriction
        for op in ops:
            if op.is_read_op:
                raise ValueError(
                    "COMPE updates cannot read: observations cannot be "
                    "compensated — use ORDUP for read-modify-write"
                )
            # Probe with two different priors: an inverse that depends
            # on the overwritten value (WriteOp, multiply-by-zero)
            # would compensate to *different* values at different
            # replicas, so direct compensation would diverge.
            if (
                op.inverse(prior_value=None) is None
                or op.inverse(prior_value=0) != op.inverse(prior_value=1)
            ):
                raise ValueError(
                    "operation %r has no replica-independent "
                    "compensation; COMPE over TCP admits only "
                    "prior-value-independent inverses" % (op,)
                )

    def saga_members(self, saga: str) -> List[Any]:
        """Member tids of one saga, in submission order."""
        return list(self._sagas.get(saga, ()))

    def decision_of(self, tid: Any) -> Optional[str]:
        return self._decided.get(tid)

    def compensated_tids(self) -> List[Any]:
        return sorted(self._compensated)

    def undo_keys(self, tid: Any) -> Tuple[str, ...]:
        return tuple(self._undo_keys.get(tid, ()))

    def _log_records(self) -> int:
        return 0 if self._clog is None else self._clog.live_records

    def _accept_locked(self, mset: MSet, local: bool) -> List[MSet]:
        if mset.kind == MSetKind.UPDATE:
            return self._accept_update_locked(mset, local)
        if mset.kind in (MSetKind.COMMIT, MSetKind.ABORT):
            return self._accept_decision_locked(mset, local)
        return super()._accept_locked(mset, local)

    def _accept_update_locked(self, mset: MSet, local: bool) -> List[MSet]:
        applied = super()._accept_locked(mset, local)
        tid = mset.tid
        saga = mset.get_info("saga")
        # Record the undo step BEFORE any decision can arrive: inverse
        # ops in reverse op order, durably logged.  Inverses of the
        # admitted algebra are prior-value-independent, so re-deriving
        # them during recovery replay is deterministic — the log append
        # is gated on the tid (idempotent), never the state change.
        inverses = [
            op.inverse(prior_value=None) for op in reversed(mset.ops)
        ]
        encoded = encode_ops([op for op in inverses if op is not None])
        self._undo[tid] = encoded
        self._undo_keys[tid] = mset.keys
        if self._clog is not None and self._clog.log_undo(
            tid, encoded, mset.keys, saga
        ):
            self._clog_records_counter.inc()
        if saga is not None:
            self._saga_members[tid] = saga
            members = self._sagas.setdefault(saga, [])
            if tid not in members:
                members.append(tid)
        if tid not in self._decided:
            self._undecided[tid] = mset.keys
            for key in mset.keys:
                self._undecided_by_key.setdefault(key, set()).add(tid)
        elif (
            self._decided[tid] == "abort"
            and tid not in self._compensated
        ):
            # The ABORT decision outran this update: decisions are
            # emitted by whichever site decides the saga, so a third
            # replica can hear the verdict (on the decider's channel)
            # before the update itself (on its origin's channel).
            # Compensate on delivery — the net effect is zero and the
            # tables end exactly as if the update had arrived first.
            undone = 0
            for op in decode_ops(encoded):
                self.store.apply(op, default=0)
                undone += 1
            self._compensated.add(tid)
            self.compensation_count += 1
            self.operations_undone += undone
            self._compensations_counter.inc()
            self.trace.event(
                "compensate", tid=tid, ops=undone, late=True
            )
            self._undo.pop(tid, None)
            self._undo_keys.pop(tid, None)
        self._undecided_gauge.set(len(self._undecided))
        return applied

    def _accept_decision_locked(
        self, mset: MSet, local: bool
    ) -> List[MSet]:
        target = mset.get_info("decides", mset.tid)
        outcome = "abort" if mset.kind == MSetKind.ABORT else "commit"
        if target in self._decided:
            # Duplicate (recovery replay, or a second decider): the
            # first decision a tid sees is final everywhere, so state
            # is untouched — replaying decisions is idempotent.
            return []
        self._decided[target] = outcome
        if self._clog is not None and self._clog.log_decision(
            target, outcome
        ):
            self._clog_records_counter.inc()
        keys = self._undecided.pop(target, ())
        for key in keys:
            holders = self._undecided_by_key.get(key)
            if holders is not None:
                holders.discard(target)
                if not holders:
                    del self._undecided_by_key[key]
        if outcome == "abort":
            encoded = self._undo.get(target)
            if encoded is None and self._clog is not None:
                encoded = self._clog.undo_ops(target)
            if encoded is None:
                # The decision outran its update (they may travel on
                # different channels when a third site decided the
                # saga).  Only the verdict is recorded here; the
                # update's own delivery sees it and compensates then.
                self.trace.event("compensate-pending", tid=target)
            else:
                undone = 0
                for op in decode_ops(encoded):
                    self.store.apply(op, default=0)
                    undone += 1
                self._compensated.add(target)
                self.compensation_count += 1
                self.operations_undone += undone
                self._compensations_counter.inc()
                # The compensation is itself a state change queries
                # may observe mid-flight: charge it like any applied
                # update.
                self.state.note_applied(self.clock(), mset.tid, keys)
                self.trace.event("compensate", tid=target, ops=undone)
        # Decided tids never need their undo step again (duplicates
        # are dropped above), so the tables stay bounded.
        self._undo.pop(target, None)
        self._undo_keys.pop(target, None)
        self.applied_count += 1
        self.last_applied_at = self.clock()
        self._undecided_gauge.set(len(self._undecided))
        if self._clog is not None:
            self._clog.maybe_compact()
        return [mset]

    async def accept(self, mset: MSet, local: bool = False) -> List[MSet]:
        applied = await super().accept(mset, local)
        # Durability claim follows (channel ack / client commit ack):
        # force a covering fsync of anything the accept logged.
        if self._clog is not None:
            self._clog.sync()
        return applied

    async def accept_batch(
        self, msets: Sequence[MSet], local: bool = False
    ) -> List[MSet]:
        applied = await super().accept_batch(msets, local)
        if self._clog is not None:
            self._clog.sync()
        return applied

    def _query_sources(self, key: str, start: float) -> Set[Any]:
        sources = super()._query_sources(key, start)
        undecided = self._undecided_by_key.get(key)
        if undecided:
            sources = sources | undecided
        return sources

    def _method_checkpoint(self) -> Dict[str, Any]:
        return {
            "compe": {
                "undo": {
                    tid: [ops, list(self._undo_keys.get(tid, ()))]
                    for tid, ops in self._undo.items()
                },
                "undecided": {
                    tid: list(keys)
                    for tid, keys in self._undecided.items()
                },
                "decided": dict(self._decided),
                "compensated": sorted(self._compensated),
                "sagas": {s: list(t) for s, t in self._sagas.items()},
                "members": dict(self._saga_members),
                "compensations": self.compensation_count,
                "operations_undone": self.operations_undone,
            }
        }

    def _method_restore(self, state: Dict[str, Any]) -> None:
        super()._method_restore(state)
        compe = state.get("compe", {})
        self._undo = {}
        self._undo_keys = {}
        for tid, entry in dict(compe.get("undo", {})).items():
            self._undo[tid] = list(entry[0])
            self._undo_keys[tid] = tuple(entry[1])
        self._undecided = {
            tid: tuple(keys)
            for tid, keys in dict(compe.get("undecided", {})).items()
        }
        self._undecided_by_key = {}
        for tid, keys in self._undecided.items():
            for key in keys:
                self._undecided_by_key.setdefault(key, set()).add(tid)
        self._decided = dict(compe.get("decided", {}))
        self._compensated = set(compe.get("compensated", ()))
        self._sagas = {
            s: list(t) for s, t in dict(compe.get("sagas", {})).items()
        }
        self._saga_members = dict(compe.get("members", {}))
        self.compensation_count = int(compe.get("compensations", 0))
        self.operations_undone = int(compe.get("operations_undone", 0))
        self._undecided_gauge.set(len(self._undecided))

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["undecided"] = len(self._undecided)
        out["compensations"] = self.compensation_count
        out["operations_undone"] = self.operations_undone
        out["compensation_log_records"] = self._log_records()
        return out


ENGINES = {
    "commu": CommuLiveEngine,
    "ordup": OrdupLiveEngine,
    "rowa": RowaLiveEngine,
    "ritu": RituLiveEngine,
    "ritu-mv": RituMvLiveEngine,
    "compe": CompeLiveEngine,
}


def make_engine(
    method: str, site: str, peers: Sequence[str]
) -> LiveEngine:
    try:
        factory = ENGINES[method.lower()]
    except KeyError:
        raise ValueError(
            "unknown live method %r (have: %s)"
            % (method, ", ".join(sorted(ENGINES)))
        ) from None
    return factory(site, peers)
