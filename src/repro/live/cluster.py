"""In-process live cluster bootstrapper for tests and demos.

Spins up N :class:`ReplicaServer` instances on localhost ephemeral
ports inside one event loop, wires their peer addresses, and offers
the control operations the integration tests need: clients, settle
(live quiescence), convergence checks, and kill/restart of individual
replicas (which exercises the durable-queue recovery path — a
restarted replica replays its logs and peers' channel loops re-deliver
whatever it missed).

    cluster = LiveCluster(n_sites=3, method="commu", data_dir=tmp)
    await cluster.start()
    client = await cluster.client("site0")
    await client.increment("x", 5)
    await cluster.settle()
    assert await cluster.converged()
    await cluster.stop()
"""

from __future__ import annotations

import asyncio
import pathlib
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .client import LiveClient
from .server import ReplicaServer

__all__ = ["LiveCluster"]


class LiveCluster:
    """N live replicas on localhost, managed as one unit."""

    def __init__(
        self,
        n_sites: int = 3,
        method: str = "commu",
        data_dir: Optional[pathlib.Path] = None,
        host: str = "127.0.0.1",
        fsync: bool = False,
    ) -> None:
        if n_sites < 1:
            raise ValueError("a cluster needs at least one site")
        self.names: List[str] = ["site%d" % i for i in range(n_sites)]
        self.method = method
        self.host = host
        self.fsync = fsync
        self._own_tmp: Optional[tempfile.TemporaryDirectory] = None
        if data_dir is None:
            self._own_tmp = tempfile.TemporaryDirectory(prefix="repro-live-")
            data_dir = pathlib.Path(self._own_tmp.name)
        self.data_dir = pathlib.Path(data_dir)
        self.servers: Dict[str, ReplicaServer] = {}
        self.addrs: Dict[str, Tuple[str, int]] = {}
        self._clients: List[LiveClient] = []

    # -- lifecycle -----------------------------------------------------------

    def _make_server(self, name: str) -> ReplicaServer:
        return ReplicaServer(
            name,
            peers=self.names,
            data_dir=self.data_dir / name,
            method=self.method,
            fsync=self.fsync,
        )

    async def start(self) -> None:
        """Boot every replica, then connect the peer mesh."""
        for name in self.names:
            server = self._make_server(name)
            port = await server.bind(self.host, 0)
            self.servers[name] = server
            self.addrs[name] = (self.host, port)
        for server in self.servers.values():
            server.set_peers(self.addrs)
            server.start_channels()

    async def stop(self) -> None:
        for client in self._clients:
            await client.close()
        self._clients.clear()
        for server in self.servers.values():
            await server.stop()
        self.servers.clear()
        if self._own_tmp is not None:
            self._own_tmp.cleanup()
            self._own_tmp = None

    async def kill(self, name: str) -> None:
        """Crash one replica: its volatile state is gone, its durable
        logs survive.  Peers keep retrying delivery until restart."""
        server = self.servers.pop(name)
        await server.stop()

    async def restart(self, name: str) -> None:
        """Recover a killed replica from its durable queues."""
        if name in self.servers:
            raise RuntimeError("%s is still running" % name)
        server = self._make_server(name)
        port = await server.bind(self.host, 0)
        self.servers[name] = server
        self.addrs[name] = (self.host, port)
        server.set_peers(self.addrs)
        server.start_channels()
        # Everyone else re-points their channels at the new address.
        for other in self.servers.values():
            other.set_peers(self.addrs)

    # -- access --------------------------------------------------------------

    async def client(self, name: str) -> LiveClient:
        """Open a (cluster-managed) client connection to one replica."""
        host, port = self.addrs[name]
        client = await LiveClient.connect(host, port)
        self._clients.append(client)
        return client

    # -- cluster-wide probes -------------------------------------------------

    async def settle(self, timeout: float = 30.0) -> None:
        """Wait until every replica is quiescent: all durable queues
        drained, no held-back MSets, no update awaiting peer acks."""
        deadline = time.monotonic() + timeout
        while True:
            drained = True
            for name in list(self.servers):
                client = await self.client(name)
                try:
                    stats = await client.stats()
                finally:
                    await client.close()
                    self._clients.remove(client)
                if not stats.get("drained"):
                    drained = False
                    break
            if drained:
                return
            if time.monotonic() > deadline:
                raise TimeoutError("cluster did not settle in %.1fs" % timeout)
            await asyncio.sleep(0.05)

    async def site_values(self) -> Dict[str, Dict[str, object]]:
        out = {}
        for name in list(self.servers):
            client = await self.client(name)
            try:
                out[name] = await client.values()
            finally:
                await client.close()
                self._clients.remove(client)
        return out

    async def converged(self) -> bool:
        """All running replicas hold identical values."""
        values = await self.site_values()
        snapshots = [
            _canonical(site_values) for site_values in values.values()
        ]
        return all(snap == snapshots[0] for snap in snapshots)


def _canonical(values: Dict[str, object]) -> Dict[str, object]:
    """Normalize sequence-valued objects (appends commute as multisets)."""
    out: Dict[str, object] = {}
    for key, value in values.items():
        if isinstance(value, (list, tuple)):
            out[key] = tuple(sorted(map(repr, value)))
        else:
            out[key] = value
    return out
