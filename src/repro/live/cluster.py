"""In-process live cluster bootstrapper for tests and demos.

Spins up N :class:`ReplicaServer` instances on localhost ephemeral
ports inside one event loop, wires their peer addresses, and offers
the control operations the integration tests need: clients, settle
(live quiescence), convergence checks, and kill/restart of individual
replicas (which exercises the durable-queue recovery path — a
restarted replica replays its logs and peers' channel loops re-deliver
whatever it missed).

A shared :class:`~repro.live.faults.FaultPlan` can be installed to
inject transport faults into every server's peer channels; the
:meth:`partition` / :meth:`heal` helpers drive it for the common
split-brain scenario.

    cluster = LiveCluster(n_sites=3, method="commu", data_dir=tmp)
    await cluster.start()
    client = await cluster.client("site0")
    await client.increment("x", 5)
    await cluster.settle()
    assert await cluster.converged()
    await cluster.stop()
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .client import LiveClient, LiveETFailed
from .faults import FaultPlan
from .router import ShardRouter
from .server import ReplicaServer
from .shard import ShardMap, migrate_shard, shard_admin_request

__all__ = ["LiveCluster", "ShardedCluster"]


class LiveCluster:
    """N live replicas on localhost, managed as one unit."""

    def __init__(
        self,
        n_sites: int = 3,
        method: str = "commu",
        data_dir: Optional[pathlib.Path] = None,
        host: str = "127.0.0.1",
        fsync: bool = False,
        faults: Optional[FaultPlan] = None,
        suspect_after: float = 0.75,
        heartbeat_interval: float = 0.25,
        batch_size: int = 32,
        window: int = 4,
        fsync_interval: float = 0.0,
        observability: bool = True,
        server_options: Optional[Dict[str, Any]] = None,
        server_overrides: Optional[Dict[str, Dict[str, Any]]] = None,
        site_names: Optional[Sequence[str]] = None,
        shard: Optional[Dict[str, Any]] = None,
    ) -> None:
        if site_names is not None:
            self.names = list(site_names)
        else:
            self.names = ["site%d" % i for i in range(n_sites)]
        if not self.names:
            raise ValueError("a cluster needs at least one site")
        #: shard ownership passed to every replica (including
        #: restarts); a :class:`ShardedCluster` mutates this dict as
        #: the group's ownership changes (adopted / retired), so a
        #: replica restarted later boots with the current truth.
        self.shard: Optional[Dict[str, Any]] = shard
        self.method = method
        self.host = host
        self.fsync = fsync
        self.faults = faults
        self.suspect_after = suspect_after
        self.heartbeat_interval = heartbeat_interval
        self.batch_size = batch_size
        self.window = window
        self.fsync_interval = fsync_interval
        #: False swaps every replica's registry/trace for no-ops (the
        #: benchmark's metrics-off baseline).
        self.observability = observability
        #: extra ReplicaServer keyword arguments (retry_base, ...),
        #: applied uniformly to every replica, including restarts.
        self.server_options: Dict[str, Any] = dict(server_options or {})
        #: per-site keyword overrides layered on ``server_options``
        #: (e.g. ``{"site2": {"wire": "json"}}`` for a mixed-codec
        #: cluster); applied on restarts too.
        self.server_overrides: Dict[str, Dict[str, Any]] = {
            site: dict(opts) for site, opts in (server_overrides or {}).items()
        }
        self._own_tmp: Optional[tempfile.TemporaryDirectory] = None
        if data_dir is None:
            self._own_tmp = tempfile.TemporaryDirectory(prefix="repro-live-")
            data_dir = pathlib.Path(self._own_tmp.name)
        self.data_dir = pathlib.Path(data_dir)
        self.servers: Dict[str, ReplicaServer] = {}
        self.addrs: Dict[str, Tuple[str, int]] = {}
        self._clients: List[LiveClient] = []
        #: one cached introspection connection per replica, reused by
        #: settle()/site_values() across calls.
        self._probe_clients: Dict[str, LiveClient] = {}

    # -- lifecycle -----------------------------------------------------------

    def _make_server(self, name: str) -> ReplicaServer:
        options = dict(self.server_options)
        options.update(self.server_overrides.get(name, {}))
        return ReplicaServer(
            name,
            peers=self.names,
            data_dir=self.data_dir / name,
            method=self.method,
            fsync=self.fsync,
            faults=self.faults,
            suspect_after=self.suspect_after,
            heartbeat_interval=self.heartbeat_interval,
            batch_size=self.batch_size,
            window=self.window,
            fsync_interval=self.fsync_interval,
            observability=self.observability,
            shard=dict(self.shard) if self.shard is not None else None,
            **options,
        )

    async def start(self) -> None:
        """Boot every replica, then connect the peer mesh."""
        for name in self.names:
            server = self._make_server(name)
            port = await server.bind(self.host, 0)
            self.servers[name] = server
            self.addrs[name] = (self.host, port)
        for server in self.servers.values():
            server.set_peers(self.addrs)
            server.start_channels()

    async def stop(self) -> None:
        for client in self._clients:
            await client.close()
        self._clients.clear()
        for client in self._probe_clients.values():
            await client.close()
        self._probe_clients.clear()
        for server in self.servers.values():
            await server.stop()
        self.servers.clear()
        if self._own_tmp is not None:
            self._own_tmp.cleanup()
            self._own_tmp = None

    async def kill(self, name: str) -> None:
        """Crash one replica: its volatile state is gone, its durable
        logs survive.  Peers keep retrying delivery until restart."""
        server = self.servers.pop(name)
        await server.stop()
        await self._drop_probe(name)

    async def wipe(self, name: str) -> None:
        """Crash one replica AND destroy its durable state (logs,
        snapshot, order file) — the disk-loss scenario.  A subsequent
        :meth:`restart` boots it empty; with catch-up enabled it
        rejoins by fetching a peer snapshot (anti-entropy)."""
        if name in self.servers:
            await self.kill(name)
        site_dir = self.data_dir / name
        if site_dir.exists():
            shutil.rmtree(site_dir)

    async def restart(self, name: str, rewire: bool = True) -> None:
        """Recover a killed replica from its durable queues.

        With ``rewire=False`` the other replicas are *not* told the new
        address — they must re-learn it from the restarted replica's
        gossip (its bumped incarnation out-versions the stale record).
        """
        if name in self.servers:
            raise RuntimeError("%s is still running" % name)
        server = self._make_server(name)
        port = await server.bind(self.host, 0)
        self.servers[name] = server
        self.addrs[name] = (self.host, port)
        server.set_peers(self.addrs)
        server.start_channels()
        if rewire:
            # Everyone else re-points their channels at the new address.
            for other in self.servers.values():
                other.set_peers(self.addrs)
        await self._drop_probe(name)  # old address is stale

    async def join(self, name: str, seed: Optional[str] = None) -> None:
        """Boot a brand-new member wired to a single seed peer; gossip
        spreads its membership to everyone else (and everyone else's
        to it) without manual rewiring."""
        if name in self.servers:
            raise RuntimeError("%s is already running" % name)
        if seed is None:
            seed = next(iter(self.servers))
        options = dict(self.server_options)
        options.update(self.server_overrides.get(name, {}))
        server = ReplicaServer(
            name,
            peers=[name, seed],
            data_dir=self.data_dir / name,
            method=self.method,
            fsync=self.fsync,
            faults=self.faults,
            suspect_after=self.suspect_after,
            heartbeat_interval=self.heartbeat_interval,
            batch_size=self.batch_size,
            window=self.window,
            fsync_interval=self.fsync_interval,
            observability=self.observability,
            shard=dict(self.shard) if self.shard is not None else None,
            **options,
        )
        port = await server.bind(self.host, 0)
        self.servers[name] = server
        self.addrs[name] = (self.host, port)
        if name not in self.names:
            self.names.append(name)
        server.set_peers({seed: self.addrs[seed]})
        server.start_channels()

    # -- fault helpers -------------------------------------------------------

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Sever every inter-group link (requires an installed plan)."""
        if self.faults is None:
            raise RuntimeError("cluster was built without a FaultPlan")
        self.faults.partition(groups)

    def heal(self) -> None:
        """Heal all severed links."""
        if self.faults is None:
            raise RuntimeError("cluster was built without a FaultPlan")
        self.faults.heal_all()

    # -- access --------------------------------------------------------------

    async def client(self, name: str, **options) -> LiveClient:
        """Open a (cluster-managed) client connection to one replica."""
        host, port = self.addrs[name]
        client = await LiveClient.connect(host, port, **options)
        self._clients.append(client)
        return client

    async def _probe(self, name: str) -> LiveClient:
        """The cached stats/values connection for one replica."""
        client = self._probe_clients.get(name)
        if client is None:
            host, port = self.addrs[name]
            client = await LiveClient.connect(
                host, port, reconnect=False, request_timeout=5.0
            )
            self._probe_clients[name] = client
        return client

    async def _drop_probe(self, name: str) -> None:
        client = self._probe_clients.pop(name, None)
        if client is not None:
            await client.close()

    # -- cluster-wide probes -------------------------------------------------

    async def settle(self, timeout: float = 30.0) -> None:
        """Wait until every replica is quiescent: all durable queues
        drained, no held-back MSets, no update awaiting peer acks.

        Each replica blocks the ``settle`` verb on its drain condition
        (no stats busy-polling); a sweep repeats only while some site
        actually had to wait — draining site A can enqueue work at
        site B, so the sweep loops until a pass where every site was
        already drained on arrival.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    "cluster did not settle in %.1fs" % timeout
                )
            any_waited = False
            clean = True
            for name in list(self.servers):
                try:
                    client = await self._probe(name)
                    reply = await client.settle(timeout=remaining)
                except (ConnectionError, OSError):
                    # A replica mid-restart (or a stale cached address):
                    # drop the probe and re-sweep.
                    await self._drop_probe(name)
                    clean = False
                    break
                except LiveETFailed as exc:
                    # The replica answered with a typed failure — this
                    # is a real error at a known site, never something
                    # to quietly absorb into the sweep.
                    if exc.code == "TimeoutError":
                        raise TimeoutError(
                            "cluster did not settle in %.1fs: "
                            "%s did not drain: %s" % (timeout, name, exc)
                        ) from None
                    raise RuntimeError(
                        "replica %s failed during settle: %s"
                        % (name, exc)
                    ) from exc
                if reply.get("waited"):
                    any_waited = True
            if clean and not any_waited:
                return
            if not clean:
                await asyncio.sleep(0.05)  # replica mid-restart: brief pause

    async def snapshot(self, name: str) -> Dict[str, object]:
        """Force one replica to snapshot + compact; returns summary."""
        client = await self._probe(name)
        return await client.snapshot()

    async def snapshot_all(self) -> Dict[str, Dict[str, object]]:
        """Snapshot + compact every running replica."""
        out: Dict[str, Dict[str, object]] = {}
        for name in list(self.servers):
            out[name] = await self.snapshot(name)
        return out

    async def wait_caught_up(
        self, name: str, timeout: float = 30.0, installs: int = 1
    ) -> None:
        """Block until one replica has completed at least ``installs``
        snapshot catch-up installs and left catch-up mode — the wiped
        replica's 'I have rejoined' signal (the startup probe needs a
        beat to run, so 'no catch-up in flight yet' is not enough)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            server = self.servers.get(name)
            if (
                server is not None
                and server.catchup_installs >= installs
                and not server._catching_up
            ):
                return
            await asyncio.sleep(0.05)
        raise TimeoutError(
            "%s did not finish catch-up in %.1fs" % (name, timeout)
        )

    async def site_stats(self) -> Dict[str, Dict[str, object]]:
        """Stats from every running replica (peer health, backlogs)."""
        out: Dict[str, Dict[str, object]] = {}
        for name in list(self.servers):
            client = await self._probe(name)
            out[name] = await client.stats()
        return out

    async def site_metrics(self) -> Dict[str, Dict[str, object]]:
        """Scrape every running replica's metrics registry."""
        out: Dict[str, Dict[str, object]] = {}
        for name in list(self.servers):
            client = await self._probe(name)
            out[name] = await client.metrics()
        return out

    async def site_values(self) -> Dict[str, Dict[str, object]]:
        out = {}
        for name in list(self.servers):
            client = await self._probe(name)
            out[name] = await client.values()
        return out

    async def converged(self) -> bool:
        """All running replicas hold identical values."""
        values = await self.site_values()
        snapshots = [
            _canonical(site_values) for site_values in values.values()
        ]
        return all(snap == snapshots[0] for snap in snapshots)


class ShardedCluster:
    """One replica group per hash shard, managed as one unit.

    Each shard is a full :class:`LiveCluster` — its own engine,
    durable logs, peer channels, and snapshots — so epsilon gauges,
    degraded mode, and overlap bounds hold per shard exactly as they
    do for an unsharded group.  Site names encode the shard
    (``s2r0`` = shard 2, replica 0) and are reused across migrations,
    which is what makes migration's frontier translation the identity.

        cluster = ShardedCluster(n_shards=4, replicas=3)
        await cluster.start()
        router = cluster.router()
        await router.increment("balance", 100)
        await cluster.migrate(1)     # live: shard 1 moves groups
        await cluster.stop()
    """

    def __init__(
        self,
        n_shards: int = 2,
        replicas: int = 3,
        method: str = "commu",
        data_dir: Optional[pathlib.Path] = None,
        host: str = "127.0.0.1",
        fsync: bool = False,
        suspect_after: float = 0.75,
        heartbeat_interval: float = 0.25,
        observability: bool = True,
        server_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("a sharded cluster needs at least one shard")
        self.n_shards = n_shards
        self.replicas = replicas
        self.method = method
        self.host = host
        self.fsync = fsync
        self.suspect_after = suspect_after
        self.heartbeat_interval = heartbeat_interval
        self.observability = observability
        self.server_options = dict(server_options or {})
        self._own_tmp: Optional[tempfile.TemporaryDirectory] = None
        if data_dir is None:
            self._own_tmp = tempfile.TemporaryDirectory(
                prefix="repro-shards-"
            )
            data_dir = pathlib.Path(self._own_tmp.name)
        self.data_dir = pathlib.Path(data_dir)
        #: current owner group of each shard, by shard index.
        self.groups: List[LiveCluster] = []
        #: groups fenced out by a migration, kept running (they serve
        #: WRONG_SHARD hints) until :meth:`decommission_retired`.
        self.retired: List[LiveCluster] = []
        #: replacement group mid-migration (chaos hooks reach it here).
        self.pending: Optional[LiveCluster] = None
        #: shard-map epoch; bumps on every completed migration.
        self.epoch = 0
        #: per-shard owner-group generation (data-dir namespacing).
        self._generation = [0] * n_shards
        self._routers: List[ShardRouter] = []
        # The manifest records which generation directory owns each
        # shard's current data.  Without it, a process restart after a
        # migration would boot the retired generation — resurrecting
        # pre-migration state and orphaning acknowledged updates.
        self._manifest_path = self.data_dir / "shards.json"
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text())
            if manifest["n_shards"] != n_shards:
                raise ValueError(
                    "data dir %s was laid out for %d shards, not %d"
                    % (self.data_dir, manifest["n_shards"], n_shards)
                )
            self._generation = [
                int(g) for g in manifest["generations"]
            ]
            # A restart boots on fresh ephemeral ports under the saved
            # epoch's addresses: publish past it so stale routers
            # (which only adopt strictly newer epochs) re-learn.
            self.epoch = int(manifest["epoch"]) + 1

    # -- lifecycle -------------------------------------------------------------

    def _group_names(self, shard: int) -> List[str]:
        return ["s%dr%d" % (shard, i) for i in range(self.replicas)]

    def _make_group(self, shard: int, accepting: bool) -> LiveCluster:
        generation = self._generation[shard]
        return LiveCluster(
            site_names=self._group_names(shard),
            method=self.method,
            data_dir=self.data_dir / ("shard%d" % shard)
            / ("g%d" % generation),
            host=self.host,
            fsync=self.fsync,
            suspect_after=self.suspect_after,
            heartbeat_interval=self.heartbeat_interval,
            observability=self.observability,
            server_options=self.server_options,
            shard={
                "index": shard,
                "count": self.n_shards,
                "epoch": self.epoch,
                "accepting": accepting,
            },
        )

    @staticmethod
    def _group_addrs(group: LiveCluster) -> List[Tuple[str, int]]:
        return [group.addrs[name] for name in group.names]

    @property
    def map(self) -> ShardMap:
        """The current routing table."""
        return ShardMap(
            self.epoch,
            tuple(
                tuple(self._group_addrs(group)) for group in self.groups
            ),
        )

    def _save_manifest(self) -> None:
        payload = json.dumps(
            {
                "n_shards": self.n_shards,
                "epoch": self.epoch,
                "generations": self._generation,
            },
            indent=2,
        )
        tmp = self._manifest_path.with_suffix(".tmp")
        tmp.write_text(payload + "\n")
        os.replace(tmp, self._manifest_path)

    async def start(self) -> None:
        for shard in range(self.n_shards):
            group = self._make_group(shard, accepting=True)
            await group.start()
            self.groups.append(group)
        # Seed every replica with the current map so shard-info (and
        # the map hint on WRONG_SHARD refusals) works from boot.
        await self._broadcast_map()
        self._save_manifest()

    async def stop(self) -> None:
        for router in self._routers:
            await router.close()
        self._routers.clear()
        for group in self.groups + self.retired:
            await group.stop()
        if self.pending is not None:
            await self.pending.stop()
            self.pending = None
        self.groups.clear()
        self.retired.clear()
        if self._own_tmp is not None:
            self._own_tmp.cleanup()
            self._own_tmp = None

    async def decommission_retired(self) -> int:
        """Stop groups fenced out by completed migrations."""
        count = len(self.retired)
        for group in self.retired:
            await group.stop()
        self.retired.clear()
        return count

    # -- access ----------------------------------------------------------------

    def router(self, **options: Any) -> ShardRouter:
        """A (cluster-managed) router over the current map."""
        router = ShardRouter(self.map, **options)
        self._routers.append(router)
        return router

    async def _broadcast_map(self) -> None:
        """Push the current map to every running owner replica."""
        payload = self.map.to_dict()
        for group in self.groups:
            group.shard["epoch"] = self.epoch  # restarts boot current
            for name in list(group.servers):
                await shard_admin_request(
                    group.addrs[name], "shard-adopt", map=payload
                )
        # Refresh retired groups' WRONG_SHARD hints too (best-effort —
        # they are on their way out and may already be gone).
        for group in self.retired:
            for name in list(group.servers):
                try:
                    await shard_admin_request(
                        group.addrs[name], "shard-retire", map=payload
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    LiveETFailed,
                ):
                    pass

    # -- cluster-wide probes ---------------------------------------------------

    async def settle(self, timeout: float = 30.0) -> None:
        """Drain every shard concurrently (max-of-shards latency)."""
        await asyncio.gather(
            *(group.settle(timeout) for group in self.groups)
        )

    async def converged(self) -> bool:
        """Every group's replicas agree within that group."""
        results = await asyncio.gather(
            *(group.converged() for group in self.groups)
        )
        return all(results)

    async def values(self) -> Dict[str, Any]:
        """Union of all shards' stores (keys are disjoint by hash)."""
        merged: Dict[str, Any] = {}
        for group in self.groups:
            client = await group._probe(group.names[0])
            merged.update(await client.values())
        return merged

    async def shard_stats(self) -> Dict[int, Dict[str, Dict[str, Any]]]:
        """Per-shard, per-site stats (shard index -> site -> stats)."""
        return {
            shard: await group.site_stats()
            for shard, group in enumerate(self.groups)
        }

    async def shard_metrics(self) -> Dict[int, Dict[str, Dict[str, Any]]]:
        """Per-shard, per-site metrics scrapes."""
        return {
            shard: await group.site_metrics()
            for shard, group in enumerate(self.groups)
        }

    # -- elasticity ------------------------------------------------------------

    async def migrate(
        self,
        shard: int,
        before_install=None,
        settle_timeout: float = 30.0,
        step_timeout: float = 30.0,
    ) -> ShardMap:
        """Move one shard onto a fresh replica group, live.

        Epoch-fenced cutover (see :mod:`repro.live.shard`): the old
        group is fenced and drained, each replacement replica installs
        its same-named counterpart's snapshot, and the replacements
        adopt the bumped map.  The old group stays up, answering
        ``WRONG_SHARD`` with the new map, until
        :meth:`decommission_retired`.  ``before_install`` is a chaos
        hook run between the fence and the transfer (the replacement
        group is reachable as :attr:`pending` there).
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError("no such shard: %d" % shard)
        old = self.groups[shard]
        self._generation[shard] += 1
        new = self._make_group(shard, accepting=False)
        await new.start()
        self.pending = new
        new_map = self.map.with_group(shard, self._group_addrs(new))
        loop = asyncio.get_running_loop()
        try:
            await migrate_shard(
                site_names=list(old.names),
                old_addr_of=lambda name: old.addrs[name],
                new_addr_of=lambda name: new.addrs[name],
                new_map=new_map.to_dict(),
                settle_timeout=settle_timeout,
                step_timeout=step_timeout,
                clock=loop.time,
                before_install=before_install,
            )
        finally:
            self.pending = None
        self.groups[shard] = new
        self.retired.append(old)
        self.epoch = new_map.epoch
        new.shard["accepting"] = True  # restarts boot accepting
        final = self.map
        if final.groups != new_map.groups:
            # A replacement replica healed on a new port mid-cutover:
            # the fence-time map is stale, so publish a fresher epoch.
            self.epoch += 1
        await self._broadcast_map()
        self._save_manifest()
        return self.map


def _canonical(values: Dict[str, object]) -> Dict[str, object]:
    """Normalize sequence-valued objects (appends commute as multisets)."""
    out: Dict[str, object] = {}
    for key, value in values.items():
        if isinstance(value, (list, tuple)):
            out[key] = tuple(sorted(map(repr, value)))
        else:
            out[key] = value
    return out
