"""Length-prefixed JSON wire protocol for the live replica runtime.

Every frame on the wire is a 4-byte big-endian length followed by a
UTF-8 JSON object.  The payload vocabulary reuses the simulator's
operation algebra and MSet types: operations and epsilon specs are
encoded structurally (class -> tag), so a live server and the
deterministic simulator speak about the *same* transactions.

Frame kinds exchanged:

* client -> server: ``{"type": "request", "id": n, "verb": ..., ...}``
* server -> client: ``{"type": "response", "id": n, "ok": bool, ...}``
* peer -> peer:     ``{"type": "mset", "src": site, "seq": n,
  "mset": {...}}`` or the batched form ``{"type": "mset-batch",
  "src": site, "msets": [{"seq": n, "mset": {...}}, ...]}``; both are
  answered by a *cumulative* ``{"type": "ack", "seq": n}`` covering
  every channel sequence number ``<= n``.  Single-``mset`` frames
  remain fully supported so a batching sender interoperates with an
  older peer and vice versa.
* hello frames identify the connection role
  (``{"type": "peer-hello", "src": site}``).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.operations import (
    AppendOp,
    DecrementOp,
    DivideOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
)
from ..core.transactions import EpsilonSpec, UNLIMITED
from ..replica.mset import MSet

__all__ = [
    "MAX_FRAME",
    "MAX_BATCH_ENTRIES",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "write_frame",
    "write_frames",
    "encode_batch_frame",
    "decode_batch_frame",
    "encode_op",
    "decode_op",
    "encode_ops",
    "decode_ops",
    "encode_spec",
    "decode_spec",
    "encode_mset",
    "decode_mset",
]

#: Upper bound on a single frame; a peer announcing more is corrupt.
MAX_FRAME = 16 * 1024 * 1024

#: Upper bound on MSets per batch frame; the receiver applies a batch
#: under one lock acquisition, so this bounds both its memory buffer
#: and the time the engine lock is held (backpressure against a fast
#: sender flooding a slow replica).
MAX_BATCH_ENTRIES = 4096

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Raised on malformed frames or unknown payload tags."""


# -- framing -----------------------------------------------------------------


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire representation."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME" % len(body))
    return _LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME" % length)
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc) from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return obj


async def write_frame(
    writer: asyncio.StreamWriter, obj: Dict[str, Any]
) -> None:
    """Write one frame and flush it to the socket."""
    writer.write(encode_frame(obj))
    await writer.drain()


async def write_frames(
    writer: asyncio.StreamWriter, objs: Sequence[Dict[str, Any]]
) -> None:
    """Write several frames as one buffered burst, draining once.

    The propagation hot path sends a window of batch frames back to
    back; coalescing them into a single ``write`` + ``drain`` avoids a
    syscall-per-frame and lets the kernel fill packets.
    """
    if not objs:
        return
    writer.write(b"".join(encode_frame(obj) for obj in objs))
    await writer.drain()


# -- batch frames ------------------------------------------------------------


def encode_batch_frame(
    src: str, entries: Sequence[Tuple[int, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Build one ``mset-batch`` frame from (seq, encoded-mset) pairs.

    Rejects empty batches: an empty batch carries no information and a
    peer emitting one is malfunctioning.
    """
    if not entries:
        raise ProtocolError("refusing to encode an empty mset-batch")
    if len(entries) > MAX_BATCH_ENTRIES:
        raise ProtocolError(
            "mset-batch of %d entries exceeds MAX_BATCH_ENTRIES"
            % len(entries)
        )
    return {
        "type": "mset-batch",
        "src": src,
        "msets": [{"seq": seq, "mset": mset} for seq, mset in entries],
    }


def decode_batch_frame(
    frame: Dict[str, Any]
) -> Tuple[Tuple[int, Dict[str, Any]], ...]:
    """Validate one ``mset-batch`` frame into (seq, encoded-mset) pairs.

    A legacy single-``mset`` frame is accepted too (returned as a
    one-entry batch), so the receive path has a single entry point for
    both wire forms.
    """
    if frame.get("type") == "mset":
        entries: Sequence[Any] = [
            {"seq": frame.get("seq"), "mset": frame.get("mset")}
        ]
    else:
        raw = frame.get("msets")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("mset-batch frame without msets")
        entries = raw
    if len(entries) > MAX_BATCH_ENTRIES:
        raise ProtocolError(
            "mset-batch of %d entries exceeds MAX_BATCH_ENTRIES"
            % len(entries)
        )
    out = []
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("seq"), int)
            or not isinstance(entry.get("mset"), dict)
        ):
            raise ProtocolError("malformed mset-batch entry: %r" % (entry,))
        out.append((entry["seq"], entry["mset"]))
    return tuple(out)


# -- operation algebra <-> JSON ----------------------------------------------

_OP_TAGS = {
    ReadOp: "read",
    WriteOp: "write",
    IncrementOp: "inc",
    DecrementOp: "dec",
    MultiplyOp: "mul",
    DivideOp: "div",
    AppendOp: "append",
    TimestampedWriteOp: "tswrite",
}


def encode_op(op: Operation) -> Dict[str, Any]:
    tag = _OP_TAGS.get(type(op))
    if tag is None:
        raise ProtocolError("operation %r has no wire encoding" % op)
    out: Dict[str, Any] = {"t": tag, "key": op.key}
    if isinstance(op, (IncrementOp, DecrementOp, MultiplyOp, DivideOp)):
        out["amount"] = op.amount
    elif isinstance(op, WriteOp):
        out["value"] = op.value
    elif isinstance(op, AppendOp):
        out["item"] = op.item
    elif isinstance(op, TimestampedWriteOp):
        out["value"] = op.value
        out["ts"] = list(op.timestamp)
    return out


def decode_op(data: Dict[str, Any]) -> Operation:
    tag = data.get("t")
    key = data.get("key")
    if not isinstance(key, str):
        raise ProtocolError("operation without a key: %r" % (data,))
    if tag == "read":
        return ReadOp(key)
    if tag == "write":
        return WriteOp(key, data.get("value"))
    if tag == "inc":
        return IncrementOp(key, data.get("amount", 0))
    if tag == "dec":
        return DecrementOp(key, data.get("amount", 0))
    if tag == "mul":
        return MultiplyOp(key, data.get("amount", 0))
    if tag == "div":
        return DivideOp(key, data.get("amount", 0))
    if tag == "append":
        return AppendOp(key, data.get("item"))
    if tag == "tswrite":
        ts = data.get("ts", (0, 0))
        return TimestampedWriteOp(key, data.get("value"), tuple(ts))
    raise ProtocolError("unknown operation tag %r" % tag)


def encode_ops(ops: Sequence[Operation]) -> list:
    return [encode_op(op) for op in ops]


def decode_ops(data: Sequence[Dict[str, Any]]) -> Tuple[Operation, ...]:
    return tuple(decode_op(d) for d in data)


# -- epsilon specs -----------------------------------------------------------


def _limit_out(value: float) -> Any:
    return None if value == UNLIMITED else value


def _limit_in(value: Any) -> float:
    return UNLIMITED if value is None else float(value)


def encode_spec(spec: EpsilonSpec) -> Dict[str, Any]:
    return {
        "import": _limit_out(spec.import_limit),
        "export": _limit_out(spec.export_limit),
        "value": _limit_out(spec.value_limit),
    }


def decode_spec(data: Optional[Dict[str, Any]]) -> EpsilonSpec:
    if not data:
        return EpsilonSpec()
    return EpsilonSpec(
        import_limit=_limit_in(data.get("import")),
        export_limit=_limit_in(data.get("export")),
        value_limit=_limit_in(data.get("value")),
    )


# -- MSets -------------------------------------------------------------------


def encode_mset(mset: MSet) -> Dict[str, Any]:
    return {
        "tid": mset.tid,
        "kind": mset.kind,
        "ops": encode_ops(mset.ops),
        "origin": mset.origin,
        "order": list(mset.order) if mset.order is not None else None,
        "txn": mset.txn_number,
        "info": [[k, v] for k, v in mset.info],
    }


def decode_mset(data: Dict[str, Any]) -> MSet:
    order = data.get("order")
    return MSet(
        tid=data.get("tid"),
        kind=data.get("kind", "update"),
        ops=decode_ops(data.get("ops", ())),
        origin=data.get("origin", ""),
        order=tuple(order) if order is not None else None,
        txn_number=data.get("txn"),
        info=tuple((k, v) for k, v in data.get("info", ())),
    )
