"""Length-prefixed wire protocol for the live replica runtime.

Every *JSON* frame on the wire is a 4-byte big-endian length followed
by a UTF-8 JSON object.  The payload vocabulary reuses the simulator's
operation algebra and MSet types: operations and epsilon specs are
encoded structurally (class -> tag), so a live server and the
deterministic simulator speak about the *same* transactions.

Frame kinds exchanged:

* client -> server: ``{"type": "request", "id": n, "verb": ..., ...}``
* server -> client: ``{"type": "response", "id": n, "ok": bool, ...}``
* peer -> peer:     ``{"type": "mset", "src": site, "seq": n,
  "mset": {...}}`` or the batched form ``{"type": "mset-batch",
  "src": site, "msets": [{"seq": n, "mset": {...}}, ...]}``; both are
  answered by a *cumulative* ``{"type": "ack", "seq": n}`` covering
  every channel sequence number ``<= n``.  Single-``mset`` frames
  remain fully supported so a batching sender interoperates with an
  older peer and vice versa.
* hello frames identify the connection role
  (``{"type": "peer-hello", "src": site}``), optionally advertising
  binary wire codecs (``"wire": ["bin1"]``).

Binary fast path (the ``bin1`` codec): the high bit of the length
word marks a *binary* frame (safe because ``MAX_FRAME`` is far below
``2**31``, so a JSON length never has the bit set).  Binary frames
cover exactly the propagation hot path — ``mset-batch`` and the
cumulative ``ack`` — as struct-packed envelopes whose batch entries
are *opaque payload blobs*: the canonical JSON bytes of one channel
payload, computed once when an MSet enters its outbox and forwarded
byte-for-byte from then on (zero re-encode relay).  Everything else
(requests, responses, hellos, heartbeats, gossip) stays JSON.

Negotiation rides the existing hello frames: a sender advertises
``"wire": ["bin1"]`` on its hello; a receiver that can read binary
replies ``{"type": "hello-ack", "wire": "bin1"}`` and may itself
switch to binary acks immediately (advertising a codec implies the
ability to read it).  A legacy peer ignores the unknown key and never
replies, so the channel transparently stays JSON — both directions
fall back per-connection with no configuration.  Frames are
self-describing (the length-word bit), so a mid-stream switch is
safe.

Wire format vs durable-log format: the binary codec exists **only on
the wire**.  Durable queue records (:mod:`repro.live.durable_queue`)
stay JSON lines regardless of the negotiated codec, so channel logs
remain greppable/debuggable; the shared piece is the canonical
payload blob, which the queue splices into its JSON-line records
without re-encoding.
"""

from __future__ import annotations

import asyncio
import json
import math
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.operations import (
    AppendOp,
    DecrementOp,
    DivideOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
)
from ..core.transactions import EpsilonSpec, UNLIMITED
from ..replica.mset import MSet

__all__ = [
    "MAX_FRAME",
    "MAX_BATCH_ENTRIES",
    "WIRE_JSON",
    "WIRE_BIN1",
    "SUPPORTED_WIRES",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "write_frame",
    "write_frames",
    "write_encoded",
    "encode_batch_frame",
    "decode_batch_frame",
    "payload_blob",
    "negotiate_wire",
    "encode_bin_batch_frame",
    "encode_bin_ack_frame",
    "decode_bin_frame",
    "encode_op",
    "decode_op",
    "encode_ops",
    "decode_ops",
    "encode_spec",
    "decode_spec",
    "encode_mset",
    "decode_mset",
]

#: Upper bound on a single frame; a peer announcing more is corrupt.
MAX_FRAME = 16 * 1024 * 1024

#: Upper bound on MSets per batch frame; the receiver applies a batch
#: under one lock acquisition, so this bounds both its memory buffer
#: and the time the engine lock is held (backpressure against a fast
#: sender flooding a slow replica).
MAX_BATCH_ENTRIES = 4096

#: wire codec names: ``json`` is the length-prefixed JSON baseline
#: every build speaks; ``bin1`` is the struct-packed binary fast path.
WIRE_JSON = "json"
WIRE_BIN1 = "bin1"
#: binary codecs this build can read and write, best first (the hello
#: advert, and the preference order when negotiating).
SUPPORTED_WIRES = (WIRE_BIN1,)

_LEN = struct.Struct(">I")

#: high bit of the length word: set on binary frames.
_BIN_FLAG = 0x80000000

#: binary frame kind tags (first body byte).
_BIN_BATCH = 1
_BIN_ACK = 2

_BATCH_HDR = struct.Struct(">BHI")  # kind, src length, entry count
_ENTRY_HDR = struct.Struct(">QI")   # channel seq, payload-blob length
_ACK_BODY = struct.Struct(">BQ")    # kind, cumulative channel seq


class ProtocolError(RuntimeError):
    """Raised on malformed frames or unknown payload tags."""


# -- framing -----------------------------------------------------------------


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire representation."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME" % len(body))
    return _LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame (JSON or binary); ``None`` on clean EOF.

    Binary frames are normalized into the same dict vocabulary the
    JSON codec uses (``mset-batch`` carries its entries under
    ``"blobs"`` as undecoded payload bytes), so every consumer
    dispatches on ``frame["type"]`` regardless of the wire codec.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LEN.unpack(header)
    binary = bool(length & _BIN_FLAG)
    if binary:
        length &= ~_BIN_FLAG
    if length > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME" % length)
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    if binary:
        return decode_bin_frame(body)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc) from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return obj


async def write_frame(
    writer: asyncio.StreamWriter, obj: Dict[str, Any]
) -> None:
    """Write one frame and flush it to the socket."""
    writer.write(encode_frame(obj))
    await writer.drain()


async def write_frames(
    writer: asyncio.StreamWriter, objs: Sequence[Dict[str, Any]]
) -> None:
    """Write several frames as one buffered burst, draining once.

    The propagation hot path sends a window of batch frames back to
    back; coalescing them into a single ``write`` + ``drain`` avoids a
    syscall-per-frame and lets the kernel fill packets.
    """
    if not objs:
        return
    writer.write(b"".join(encode_frame(obj) for obj in objs))
    await writer.drain()


async def write_encoded(
    writer: asyncio.StreamWriter, chunks: Sequence[bytes]
) -> None:
    """Write pre-encoded frame bytes as one buffered burst.

    The binary sender path hands over complete on-wire frames (header
    included); this is the bytes-in -> bytes-out tail of the zero
    re-encode relay.
    """
    if not chunks:
        return
    writer.write(b"".join(chunks))
    await writer.drain()


# -- wire negotiation --------------------------------------------------------


def negotiate_wire(advert: Any) -> Optional[str]:
    """Pick the best mutually supported binary codec from a hello
    advert (the ``wire`` value of a hello frame); ``None`` when the
    peer advertised nothing we speak — the channel stays JSON.

    Tolerant by design: an advert of the wrong type is treated as no
    advert, never an error, so future hello extensions cannot break
    old receivers.
    """
    if not isinstance(advert, (list, tuple)):
        return None
    for wire in SUPPORTED_WIRES:
        if wire in advert:
            return wire
    return None


# -- binary frames (the bin1 codec) ------------------------------------------


def payload_blob(payload: Dict[str, Any]) -> bytes:
    """Canonical bytes of one channel payload dict.

    This is the unit of the zero re-encode relay: computed once when
    an MSet enters its outbox, then forwarded verbatim inside binary
    batch frames *and* spliced verbatim into durable-log JSON lines
    (see :mod:`repro.live.durable_queue`).  Deliberately JSON — the
    C-accelerated ``json`` codec beats any pure-Python packer, and it
    keeps the durable logs debuggable — the binary framing around it
    is what removes the per-hop re-encode and field walk.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def encode_bin_batch_frame(
    src: str, entries: Sequence[Tuple[int, bytes]]
) -> bytes:
    """One complete binary ``mset-batch`` frame (header included) from
    (seq, payload-blob) pairs."""
    if not entries:
        raise ProtocolError("refusing to encode an empty mset-batch")
    if len(entries) > MAX_BATCH_ENTRIES:
        raise ProtocolError(
            "mset-batch of %d entries exceeds MAX_BATCH_ENTRIES"
            % len(entries)
        )
    src_bytes = src.encode("utf-8")
    if len(src_bytes) > 0xFFFF:
        raise ProtocolError("site name of %d bytes" % len(src_bytes))
    parts: List[bytes] = [
        _BATCH_HDR.pack(_BIN_BATCH, len(src_bytes), len(entries)),
        src_bytes,
    ]
    size = _BATCH_HDR.size + len(src_bytes)
    for seq, blob in entries:
        parts.append(_ENTRY_HDR.pack(seq, len(blob)))
        parts.append(blob)
        size += _ENTRY_HDR.size + len(blob)
    if size > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME" % size)
    return _LEN.pack(_BIN_FLAG | size) + b"".join(parts)


def encode_bin_ack_frame(seq: int) -> bytes:
    """One complete binary cumulative-ack frame (header included)."""
    return _LEN.pack(_BIN_FLAG | _ACK_BODY.size) + _ACK_BODY.pack(
        _BIN_ACK, seq
    )


def decode_bin_frame(body: bytes) -> Dict[str, Any]:
    """Decode one binary frame body into the normalized dict form.

    ``mset-batch`` entries come back as *undecoded* (seq, blob) pairs
    under ``"blobs"`` — the receiver decodes each blob exactly once,
    on the apply path.  Every malformation raises
    :class:`ProtocolError`, never an untyped exception.
    """
    if not body:
        raise ProtocolError("empty binary frame")
    kind = body[0]
    if kind == _BIN_ACK:
        if len(body) != _ACK_BODY.size:
            raise ProtocolError(
                "binary ack of %d bytes (want %d)"
                % (len(body), _ACK_BODY.size)
            )
        _, seq = _ACK_BODY.unpack(body)
        return {"type": "ack", "seq": seq}
    if kind != _BIN_BATCH:
        raise ProtocolError("unknown binary frame kind %d" % kind)
    try:
        _, src_len, count = _BATCH_HDR.unpack_from(body, 0)
    except struct.error as exc:
        raise ProtocolError("truncated binary batch header") from exc
    if count == 0:
        raise ProtocolError("binary mset-batch without entries")
    if count > MAX_BATCH_ENTRIES:
        raise ProtocolError(
            "mset-batch of %d entries exceeds MAX_BATCH_ENTRIES" % count
        )
    offset = _BATCH_HDR.size
    if len(body) < offset + src_len:
        raise ProtocolError("truncated binary batch src")
    try:
        src = body[offset:offset + src_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("undecodable batch src: %s" % exc) from exc
    offset += src_len
    blobs: List[Tuple[int, bytes]] = []
    for _ in range(count):
        try:
            seq, blob_len = _ENTRY_HDR.unpack_from(body, offset)
        except struct.error as exc:
            raise ProtocolError("truncated binary batch entry") from exc
        offset += _ENTRY_HDR.size
        blob = body[offset:offset + blob_len]
        if len(blob) != blob_len:
            raise ProtocolError("truncated batch entry blob")
        offset += blob_len
        blobs.append((seq, blob))
    if offset != len(body):
        raise ProtocolError(
            "%d trailing bytes after binary batch" % (len(body) - offset)
        )
    return {"type": "mset-batch", "src": src, "blobs": tuple(blobs)}


# -- batch frames ------------------------------------------------------------


def encode_batch_frame(
    src: str, entries: Sequence[Tuple[int, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Build one ``mset-batch`` frame from (seq, encoded-mset) pairs.

    Rejects empty batches: an empty batch carries no information and a
    peer emitting one is malfunctioning.
    """
    if not entries:
        raise ProtocolError("refusing to encode an empty mset-batch")
    if len(entries) > MAX_BATCH_ENTRIES:
        raise ProtocolError(
            "mset-batch of %d entries exceeds MAX_BATCH_ENTRIES"
            % len(entries)
        )
    return {
        "type": "mset-batch",
        "src": src,
        "msets": [{"seq": seq, "mset": mset} for seq, mset in entries],
    }


def decode_batch_frame(
    frame: Dict[str, Any]
) -> Tuple[Tuple[int, Dict[str, Any]], ...]:
    """Validate one ``mset-batch`` frame into (seq, encoded-mset) pairs.

    A legacy single-``mset`` frame is accepted too (returned as a
    one-entry batch), so the receive path has a single entry point for
    both wire forms.
    """
    if frame.get("type") == "mset":
        entries: Sequence[Any] = [
            {"seq": frame.get("seq"), "mset": frame.get("mset")}
        ]
    else:
        raw = frame.get("msets")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("mset-batch frame without msets")
        entries = raw
    if len(entries) > MAX_BATCH_ENTRIES:
        raise ProtocolError(
            "mset-batch of %d entries exceeds MAX_BATCH_ENTRIES"
            % len(entries)
        )
    out = []
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("seq"), int)
            or not isinstance(entry.get("mset"), dict)
        ):
            raise ProtocolError("malformed mset-batch entry: %r" % (entry,))
        out.append((entry["seq"], entry["mset"]))
    return tuple(out)


# -- operation algebra <-> JSON ----------------------------------------------

_OP_TAGS = {
    ReadOp: "read",
    WriteOp: "write",
    IncrementOp: "inc",
    DecrementOp: "dec",
    MultiplyOp: "mul",
    DivideOp: "div",
    AppendOp: "append",
    TimestampedWriteOp: "tswrite",
}


def encode_op(op: Operation) -> Dict[str, Any]:
    tag = _OP_TAGS.get(type(op))
    if tag is None:
        raise ProtocolError("operation %r has no wire encoding" % op)
    out: Dict[str, Any] = {"t": tag, "key": op.key}
    if isinstance(op, (IncrementOp, DecrementOp, MultiplyOp, DivideOp)):
        out["amount"] = op.amount
    elif isinstance(op, WriteOp):
        out["value"] = op.value
    elif isinstance(op, AppendOp):
        out["item"] = op.item
    elif isinstance(op, TimestampedWriteOp):
        out["value"] = op.value
        out["ts"] = list(op.timestamp)
    return out


def _decode_amount(data: Dict[str, Any]) -> float:
    """Validated arithmetic amount: a real, finite number.

    Rejects strings (JSON happily carries ``"NaN"`` where a number
    belongs), booleans (``True`` is an ``int`` to ``isinstance``), and
    non-finite floats (``json.loads`` accepts bare ``NaN``/
    ``Infinity``) — any of which would poison the store value the
    first time the operation applies.
    """
    amount = data.get("amount", 0)
    # Exact-type checks: json.loads only ever yields exact int/float,
    # and ``type(True) is int`` is False, so bools fall through to the
    # rejection without an explicit isinstance(bool) test on the hot
    # path.
    if type(amount) is int:
        return amount
    if type(amount) is float:
        if not math.isfinite(amount):
            raise ProtocolError(
                "non-finite operation amount %r" % (amount,)
            )
        return amount
    raise ProtocolError("non-numeric operation amount %r" % (amount,))


def decode_op(data: Dict[str, Any]) -> Operation:
    if not isinstance(data, dict):
        raise ProtocolError("operation must be an object: %r" % (data,))
    tag = data.get("t")
    key = data.get("key")
    if not isinstance(key, str):
        raise ProtocolError("operation without a key: %r" % (data,))
    if tag == "read":
        return ReadOp(key)
    if tag == "write":
        return WriteOp(key, data.get("value"))
    if tag == "inc":
        return IncrementOp(key, _decode_amount(data))
    if tag == "dec":
        return DecrementOp(key, _decode_amount(data))
    if tag == "mul":
        return MultiplyOp(key, _decode_amount(data))
    if tag == "div":
        return DivideOp(key, _decode_amount(data))
    if tag == "append":
        return AppendOp(key, data.get("item"))
    if tag == "tswrite":
        ts = data.get("ts", (0, 0))
        # Thomas-rule timestamps are exactly (time, site) pairs; a
        # wrong-arity ts would compare nonsensically forever after.
        if not isinstance(ts, (list, tuple)) or len(ts) != 2:
            raise ProtocolError(
                "tswrite ts must be a [time, site] pair: %r" % (ts,)
            )
        return TimestampedWriteOp(key, data.get("value"), tuple(ts))
    raise ProtocolError("unknown operation tag %r" % tag)


def encode_ops(ops: Sequence[Operation]) -> list:
    return [encode_op(op) for op in ops]


def decode_ops(data: Sequence[Dict[str, Any]]) -> Tuple[Operation, ...]:
    if not isinstance(data, (list, tuple)):
        raise ProtocolError("ops must be a sequence: %r" % (data,))
    # List comprehension, not a genexpr: tuple() over a genexpr pays a
    # generator frame per element on the receive hot path.
    return tuple([decode_op(d) for d in data])


# -- epsilon specs -----------------------------------------------------------


def _limit_out(value: float) -> Any:
    return None if value == UNLIMITED else value


def _limit_in(value: Any) -> float:
    if value is None:
        return UNLIMITED
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("non-numeric epsilon limit %r" % (value,)) from exc


def encode_spec(spec: EpsilonSpec) -> Dict[str, Any]:
    return {
        "import": _limit_out(spec.import_limit),
        "export": _limit_out(spec.export_limit),
        "value": _limit_out(spec.value_limit),
    }


def decode_spec(data: Optional[Dict[str, Any]]) -> EpsilonSpec:
    if not data:
        return EpsilonSpec()
    return EpsilonSpec(
        import_limit=_limit_in(data.get("import")),
        export_limit=_limit_in(data.get("export")),
        value_limit=_limit_in(data.get("value")),
    )


# -- MSets -------------------------------------------------------------------


def encode_mset(mset: MSet) -> Dict[str, Any]:
    return {
        "tid": mset.tid,
        "kind": mset.kind,
        "ops": encode_ops(mset.ops),
        "origin": mset.origin,
        "order": list(mset.order) if mset.order is not None else None,
        "txn": mset.txn_number,
        "info": [[k, v] for k, v in mset.info],
    }


def decode_mset(data: Dict[str, Any]) -> MSet:
    """Decode one encoded MSet, totally: any malformed payload raises
    :class:`ProtocolError`, never a bare ``ValueError``/``TypeError``
    that would escape the receive loop's protocol-error handling (and
    kill the connection task with an unhandled exception).
    """
    if not isinstance(data, dict):
        raise ProtocolError("mset must be an object: %r" % (data,))
    kind = data.get("kind", "update")
    if not isinstance(kind, str):
        raise ProtocolError("mset kind must be a string: %r" % (kind,))
    origin = data.get("origin", "")
    if not isinstance(origin, str):
        raise ProtocolError("mset origin must be a string: %r" % (origin,))
    order = data.get("order")
    if order is not None:
        if not isinstance(order, (list, tuple)):
            raise ProtocolError(
                "mset order must be a sequence: %r" % (order,)
            )
        order = tuple(order)
    raw_info = data.get("info", ())
    if not isinstance(raw_info, (list, tuple)):
        raise ProtocolError("mset info must be a sequence: %r" % (raw_info,))
    info = []
    for pair in raw_info:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ProtocolError("malformed mset info pair: %r" % (pair,))
        info.append((pair[0], pair[1]))
    return MSet(
        tid=data.get("tid"),
        kind=kind,
        ops=decode_ops(data.get("ops", ())),
        origin=origin,
        order=order,
        txn_number=data.get("txn"),
        info=tuple(info),
    )
