"""Chaos harness: seeded fault schedules against a live cluster.

Turns the paper's availability argument (experiment E9) into an
empirical live result.  One :func:`run_chaos` run boots a real
localhost TCP cluster, installs a seeded
:class:`~repro.live.faults.FaultPlan` (frame drops, delays,
duplications, reorders), and drives a concurrent update/query workload
while the harness injects one network partition and one crash/restart.
Throughout and afterwards it checks the invariants the paper claims
hold under exactly this abuse:

* **No acknowledged update is ever lost** — for every key, the
  converged value is at least the number of client-acknowledged
  increments (and at most the number attempted, catching
  double-application by the retry machinery just as much as loss).
* **Query error never exceeds the declared epsilon budget** — every
  bounded query's reported inconsistency is within its limit, faults
  or not.
* **Degraded-mode honesty** — during the partition, the isolated
  replica keeps answering epsilon-bounded queries, while an
  ``epsilon = 0`` query fails fast with the typed ``UNAVAILABLE`` code
  instead of hanging.
* **Convergence at quiescence** — after all faults heal, every replica
  settles to identical one-copy state.

A second scenario, :func:`run_rejoin`, exercises the recovery stack:
the cluster takes writes everywhere (so the victim owns acknowledged
state), snapshots + compacts (so that history is no longer replayable
from any log), then the victim loses its disk entirely (or just goes
away for a long time, with ``wipe=False``) while the survivors keep
writing.  On restart the victim must rejoin by anti-entropy — install
a donor snapshot, drain only the log tails — and the harness asserts
no acknowledged update was lost (including the victim's own pre-wipe
updates, which exist *only* in donor snapshots at that point), that
the rejoin went through a snapshot install rather than full replay,
that the cluster reconverges to one-copy state, and that the rejoined
victim accepts new updates with fresh, non-colliding transaction ids.

A third scenario, :func:`run_migrate`, abuses the sharding layer: a
sharded cluster takes routed writes, then one shard is live-migrated
onto a fresh replica group *while the write workload keeps running* —
and, optionally, one replacement replica is crashed between the fence
and the state transfer and healed shortly after.  The harness asserts
the epoch-fenced cutover loses no acknowledged update, that every
replacement replica joined by snapshot install (a migration is a
rejoin), that the fenced-out group honestly refuses with
``WRONG_SHARD`` afterwards, and that the cluster reconverges with the
migrated shard fully writable at the new epoch.

A fourth scenario, :func:`run_elect`, targets the ORDUP sequencer's
single point of failure: the cluster warms up, the elected leader is
killed, and the harness measures the *blackout window* — crash to the
first survivor-acknowledged update, spanning failure detection, the
epoch-bumping election, and order-acquisition retry — then resurrects
the deposed leader and immediately asks it for an order token.  The
asserts are the failover safety claims: the election happened, no
acknowledged update was lost, the stale leader never granted at its
old epoch (no two leaders commit in one epoch), every site agrees on
the final leadership view, and the cluster reconverges.

A fifth scenario, :func:`run_wan`, runs the cluster across modeled
multi-region WAN links (tens of milliseconds of latency plus a
bandwidth ceiling between regions) and severs the inter-region links
mid-run.  Both sides must stay live within their epsilon budgets —
bounded reads answer with honest inconsistency accounting and
asynchronous writes keep acking region-locally — while ``epsilon = 0``
reads refuse fast with the typed ``UNAVAILABLE`` code; after the heal
the regions must reconverge to one-copy state.

A sixth scenario, :func:`run_saga`, targets COMPE's crash-safe
backward recovery: a cluster of COMPE replicas takes auto-committed
updates plus multi-step sagas, half the sagas are aborted — a
*compensation storm* — and one replica is crashed (optionally
disk-wiped) in the middle of it, rejoining while decisions are still
landing.  The asserts are exact: every key converges to precisely the
sum of committed effects (no acked-update loss, no lost compensation,
no double-applied compensation), re-issuing every abort decision after
the heal changes nothing (idempotent compensation-log replay — the
``decided`` lists must come back empty and per-replica compensation
counters must not move), an ``abort=True`` update is reported with the
typed ``COMPENSATED`` code carrying its undone tid, and the run must
count a nonzero number of compensations — a silent-zero run fails
loudly instead of passing vacuously.

Reproducible from the CLI::

    python -m repro chaos --seed 7
    python -m repro chaos --seed 7 --method ordup --no-crash
    python -m repro chaos --scenario rejoin --seed 7
    python -m repro chaos --scenario migrate --seed 7
    python -m repro chaos --scenario elect --seed 7
    python -m repro chaos --scenario wan --seed 7
    python -m repro chaos --scenario saga --seed 7
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.operations import IncrementOp
from ..core.transactions import EpsilonSpec
from ..obs.trace import dump_events_jsonl, merge_traces
from .client import LiveClient, LiveETFailed, RequestTimeout
from .cluster import LiveCluster, ShardedCluster
from .faults import FaultPlan, LinkFaults
from .shard import key_shard

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "ElectConfig",
    "ElectReport",
    "MigrateConfig",
    "MigrateReport",
    "RejoinConfig",
    "RejoinReport",
    "SagaConfig",
    "SagaReport",
    "WanConfig",
    "WanReport",
    "persist_cluster_artifacts",
    "run_chaos",
    "run_chaos_sync",
    "run_elect",
    "run_elect_sync",
    "run_migrate",
    "run_migrate_sync",
    "run_rejoin",
    "run_rejoin_sync",
    "run_saga",
    "run_saga_sync",
    "run_wan",
    "run_wan_sync",
]


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible chaos scenario.  Everything randomized is
    drawn from ``seed``, so a report names the exact run to replay."""

    seed: int = 0
    n_sites: int = 3
    method: str = "commu"
    n_updates: int = 120
    n_queries: int = 36
    update_workers: int = 6
    query_workers: int = 4
    #: the update/query workload is paced to span this many seconds so
    #: it overlaps the fault schedule below.
    workload_duration: float = 4.0
    keys: Tuple[str, ...] = ("acct0", "acct1", "acct2", "acct3")
    epsilons: Tuple[int, ...] = (1, 2, 5, 10)
    #: link fault rates, applied to every inter-replica link.
    drop: float = 0.08
    duplicate: float = 0.05
    reorder: float = 0.10
    delay_max: float = 0.012
    #: partition: isolate the last site for ``partition_duration``.
    partition_at: float = 0.3
    partition_duration: float = 2.0
    #: crash/restart of the last site after the partition heals.
    crash: bool = True
    crash_at: float = 2.6
    crash_duration: float = 0.5
    #: failure-detector tuning for the cluster under test.
    heartbeat_interval: float = 0.15
    suspect_after: float = 0.6
    request_timeout: float = 20.0
    settle_timeout: float = 60.0
    #: propagation batching/pipelining under test (server knobs).
    batch_size: int = 32
    window: int = 4
    fsync_interval: float = 0.0


@dataclass
class ChaosReport:
    """What one chaos run observed, and whether the invariants held."""

    config: ChaosConfig
    acked: Dict[str, int] = field(default_factory=dict)
    attempted: Dict[str, int] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)
    update_failures: int = 0
    queries_ok: int = 0
    bounded_failures: int = 0
    epsilon_violations: List[Tuple[float, int]] = field(default_factory=list)
    #: strict probe during the partition: (elapsed seconds, error code).
    strict_probe: Optional[Tuple[float, str]] = None
    #: bounded probe during the partition at the isolated replica.
    partition_bounded_ok: Optional[bool] = None
    partition_bounded_inconsistency: Optional[int] = None
    converged: bool = False
    fault_counts: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: observability cross-check: bounded trace query events whose
    #: recorded inconsistency exceeded their recorded limit.
    trace_epsilon_breaches: List[Tuple[float, int]] = field(
        default_factory=list
    )
    #: degraded gauge flips (0 -> 1) seen across all replica traces —
    #: the partition must be *visible* to an operator, not just felt.
    degraded_flips: int = 0
    #: paths of persisted artifacts (when an artifacts dir was given).
    artifacts: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        """Every broken invariant, as human-readable findings."""
        out: List[str] = []
        for epsilon, seen in self.epsilon_violations:
            out.append(
                "epsilon budget breached: query with epsilon=%s observed "
                "inconsistency %d" % (epsilon, seen)
            )
        for limit, seen in self.trace_epsilon_breaches:
            out.append(
                "server trace shows epsilon breach: bounded query "
                "(limit=%s) recorded inconsistency %d" % (limit, seen)
            )
        for key in sorted(set(self.acked) | set(self.final)):
            acked = self.acked.get(key, 0)
            attempted = self.attempted.get(key, 0)
            got = self.final.get(key, 0)
            if got < acked:
                out.append(
                    "acked update lost: %s converged to %s but %d "
                    "increments were acknowledged" % (key, got, acked)
                )
            if got > attempted:
                out.append(
                    "update double-applied: %s converged to %s but only "
                    "%d increments were attempted" % (key, got, attempted)
                )
        if self.strict_probe is not None:
            elapsed, code = self.strict_probe
            if code != "UNAVAILABLE":
                out.append(
                    "partitioned epsilon=0 query did not fail with "
                    "UNAVAILABLE (got %r)" % code
                )
            if elapsed >= 1.0:
                out.append(
                    "partitioned epsilon=0 query took %.2fs to fail "
                    "(must be < 1 s)" % elapsed
                )
        if self.partition_bounded_ok is False:
            out.append(
                "bounded query did not answer during the partition"
            )
        if not self.converged:
            out.append("replicas did not converge after faults healed")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        cfg = self.config
        lines = [
            "Chaos run: seed=%d method=%s sites=%d (drop=%.0f%% dup=%.0f%% "
            "reorder=%.0f%% delay<=%.0fms, 1 partition%s)"
            % (
                cfg.seed,
                cfg.method.upper(),
                cfg.n_sites,
                cfg.drop * 100,
                cfg.duplicate * 100,
                cfg.reorder * 100,
                cfg.delay_max * 1e3,
                ", 1 crash/restart" if cfg.crash else "",
            ),
            "",
            "updates: %d acked, %d failed-or-unknown of %d attempted"
            % (
                sum(self.acked.values()),
                self.update_failures,
                sum(self.attempted.values()),
            ),
            "queries: %d answered within budget, %d unavailable/timed out"
            % (self.queries_ok, self.bounded_failures),
        ]
        if self.strict_probe is not None:
            elapsed, code = self.strict_probe
            lines.append(
                "partitioned epsilon=0 probe: %s in %.0f ms"
                % (code or "(succeeded)", elapsed * 1e3)
            )
        if self.partition_bounded_inconsistency is not None:
            lines.append(
                "partitioned bounded probe: answered with "
                "inconsistency=%d" % self.partition_bounded_inconsistency
            )
        lines.append(
            "faults injected: "
            + ", ".join(
                "%s=%d" % (k, v) for k, v in sorted(self.fault_counts.items())
            )
        )
        lines.append("converged after heal: %s" % ("yes" if self.converged else "NO"))
        if self.degraded_flips:
            lines.append(
                "degraded gauge flips observed: %d" % self.degraded_flips
            )
        if self.artifacts:
            lines.append(
                "artifacts: %s" % self.artifacts.get("dir", "")
            )
        lines.append("")
        problems = self.violations()
        if problems:
            lines.append("INVARIANT VIOLATIONS (%d):" % len(problems))
            lines.extend("  - " + p for p in problems)
        else:
            lines.append(
                "all invariants held: no acked-update loss, no epsilon "
                "breach, honest degradation, converged (%.1fs wall)"
                % self.wall_seconds
            )
        return "\n".join(lines)


async def run_chaos(
    config: ChaosConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> ChaosReport:
    """Execute one seeded chaos scenario; never raises on invariant
    failure — inspect :meth:`ChaosReport.violations`.

    With ``artifacts_dir``, the run persists every replica's metrics
    (``<site>.prom`` Prometheus text + one combined ``metrics.json``)
    and the merged lifecycle trace (``trace.jsonl``) for offline
    inspection; the same trace feeds two extra in-process checks —
    bounded queries never recorded inconsistency above their limit,
    and the partition showed up as degraded gauge flips.
    """
    started = time.monotonic()
    plan = FaultPlan(
        config.seed,
        default=LinkFaults(
            drop=config.drop,
            duplicate=config.duplicate,
            reorder=config.reorder,
            delay_max=config.delay_max,
        ),
    )
    cluster = LiveCluster(
        n_sites=config.n_sites,
        method=config.method,
        data_dir=data_dir,
        faults=plan,
        suspect_after=config.suspect_after,
        heartbeat_interval=config.heartbeat_interval,
        batch_size=config.batch_size,
        window=config.window,
        fsync_interval=config.fsync_interval,
    )
    report = ChaosReport(config=config)
    rng = random.Random(config.seed)
    await cluster.start()
    try:
        await _drive_scenario(cluster, plan, config, rng, report)
        # All faults are healed; the rate-based ones (drops, delays)
        # stay on, proving settle tolerates steady-state loss too.
        await cluster.settle(timeout=config.settle_timeout)
        report.converged = await cluster.converged()
        values = await cluster.site_values()
        if values:
            any_site = next(iter(values.values()))
            report.final = {
                key: any_site.get(key, 0) for key in config.keys
            }
        _observability_checks(cluster, report)
        if artifacts_dir is not None:
            report.artifacts = await persist_cluster_artifacts(
                cluster, pathlib.Path(artifacts_dir)
            )
    finally:
        report.fault_counts = dict(plan.counts)
        report.wall_seconds = time.monotonic() - started
        await cluster.stop()
    return report


def _observability_checks(cluster: LiveCluster, report: ChaosReport) -> None:
    """Cross-check the run against what the servers *recorded*: the
    client-side violation list and the server-side trace must agree
    that no bounded query exceeded its budget, and the degraded gauge
    must have flipped while the partition was in force."""
    for server in cluster.servers.values():
        for event in server.trace.snapshot():
            kind = event.get("kind")
            if kind == "degraded" and event.get("value") == 1:
                report.degraded_flips += 1
            elif kind == "query":
                limit = event.get("limit")
                seen = event.get("inconsistency", 0)
                if limit is not None and seen > limit:
                    report.trace_epsilon_breaches.append((limit, seen))


async def persist_cluster_artifacts(
    cluster: LiveCluster, artifacts_dir: pathlib.Path
) -> Dict[str, str]:
    """Write per-site Prometheus text, combined JSON metrics, and the
    merged lifecycle trace under ``artifacts_dir``."""
    artifacts_dir.mkdir(parents=True, exist_ok=True)
    out: Dict[str, str] = {"dir": str(artifacts_dir)}
    scrapes = await cluster.site_metrics()
    combined: Dict[str, Any] = {}
    for name, scrape in sorted(scrapes.items()):
        prom_path = artifacts_dir / ("%s.prom" % name)
        prom_path.write_text(scrape["prometheus"], encoding="utf-8")
        out[name] = str(prom_path)
        combined[name] = scrape["metrics"]
    metrics_path = artifacts_dir / "metrics.json"
    metrics_path.write_text(
        json.dumps(combined, indent=2, sort_keys=True), encoding="utf-8"
    )
    out["metrics"] = str(metrics_path)
    trace_path = artifacts_dir / "trace.jsonl"
    merged = merge_traces(
        server.trace for _, server in sorted(cluster.servers.items())
    )
    dump_events_jsonl(merged, trace_path)
    out["trace"] = str(trace_path)
    return out


async def _drive_scenario(cluster, plan, config, rng, report) -> None:
    names = list(cluster.names)
    isolated = names[-1]
    clients: Dict[str, LiveClient] = {}
    for name in names:
        clients[name] = await cluster.client(
            name, request_timeout=config.request_timeout
        )
    #: sites safe to aim workload at (shrinks around the crash window).
    targets = set(names)

    async def one_update(key: str, site: str) -> None:
        report.attempted[key] = report.attempted.get(key, 0) + 1
        try:
            await clients[site].increment(key, 1)
        except (LiveETFailed, ConnectionError, OSError, asyncio.TimeoutError):
            report.update_failures += 1
        else:
            report.acked[key] = report.acked.get(key, 0) + 1

    async def update_worker(quota: int, worker_rng: random.Random) -> None:
        pace = config.workload_duration / max(quota, 1)
        for _ in range(quota):
            site = worker_rng.choice(sorted(targets))
            key = worker_rng.choice(config.keys)
            await one_update(key, site)
            await asyncio.sleep(worker_rng.uniform(0.5, 1.0) * pace)

    async def query_worker(quota: int, worker_rng: random.Random) -> None:
        pace = config.workload_duration / max(quota, 1)
        for i in range(quota):
            site = worker_rng.choice(sorted(targets))
            epsilon = config.epsilons[i % len(config.epsilons)]
            key = worker_rng.choice(config.keys)
            try:
                outcome = await clients[site].query(
                    [key], EpsilonSpec(import_limit=epsilon)
                )
            except (
                LiveETFailed,
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
            ):
                report.bounded_failures += 1
            else:
                report.queries_ok += 1
                if outcome["inconsistency"] > epsilon:
                    report.epsilon_violations.append(
                        (epsilon, outcome["inconsistency"])
                    )
            await asyncio.sleep(worker_rng.uniform(0.5, 1.0) * pace)

    async def partition_phase() -> None:
        await asyncio.sleep(config.partition_at)
        heal_at = (
            time.monotonic()
            + config.partition_duration
        )
        plan.partition([[isolated], [n for n in names if n != isolated]])
        # Let the failure detector age the severed peers out.
        await asyncio.sleep(
            config.suspect_after + 3 * config.heartbeat_interval
        )
        probe_key = config.keys[0]
        t0 = time.monotonic()
        try:
            await clients[isolated].read(probe_key, epsilon=0, timeout=5.0)
        except LiveETFailed as exc:
            report.strict_probe = (time.monotonic() - t0, exc.code)
        except (ConnectionError, OSError) as exc:
            report.strict_probe = (
                time.monotonic() - t0,
                type(exc).__name__,
            )
        else:
            report.strict_probe = (time.monotonic() - t0, "")
        # Availability: the partitioned replica still answers bounded
        # queries, with honest error accounting.
        try:
            outcome = await clients[isolated].query(
                [probe_key], EpsilonSpec(import_limit=10_000), timeout=5.0
            )
        except (LiveETFailed, ConnectionError, OSError):
            report.partition_bounded_ok = False
        else:
            report.partition_bounded_ok = True
            report.partition_bounded_inconsistency = outcome[
                "inconsistency"
            ]
        await asyncio.sleep(max(0.0, heal_at - time.monotonic()))
        plan.heal_all()

    async def crash_phase() -> None:
        if not config.crash:
            return
        await asyncio.sleep(config.crash_at)
        victim = isolated
        targets.discard(victim)
        await cluster.kill(victim)
        await asyncio.sleep(config.crash_duration)
        await cluster.restart(victim)
        # The restarted replica listens on a fresh port: re-dial.
        await clients[victim].close()
        clients[victim] = await cluster.client(
            victim, request_timeout=config.request_timeout
        )
        targets.add(victim)

    per_updater = max(1, config.n_updates // config.update_workers)
    per_querier = max(1, config.n_queries // config.query_workers)
    tasks = [
        update_worker(per_updater, random.Random(rng.random()))
        for _ in range(config.update_workers)
    ]
    tasks += [
        query_worker(per_querier, random.Random(rng.random()))
        for _ in range(config.query_workers)
    ]
    tasks += [partition_phase(), crash_phase()]
    await asyncio.gather(*tasks)


def run_chaos_sync(
    config: ChaosConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> ChaosReport:
    """Blocking wrapper for CLI / benchmark use."""
    return asyncio.run(run_chaos(config, data_dir, artifacts_dir))


# -- disk-wipe / long-downtime rejoin scenario --------------------------------


@dataclass(frozen=True)
class RejoinConfig:
    """One reproducible rejoin scenario.

    The victim is always the *last* site: with ORDUP the sequencer
    starts at the lexicographically first site, and keeping it out of
    the blast radius means this scenario measures rejoin mechanics,
    not leader failover (losing the sequencer now triggers an
    epoch-fenced election — :func:`run_elect` covers that path).
    """

    seed: int = 0
    n_sites: int = 3
    method: str = "commu"
    #: True destroys the victim's data dir (disk loss); False only
    #: keeps it down (long downtime — recovery via channel redelivery
    #: unless ``catchup_lag`` forces a snapshot install).
    wipe: bool = True
    #: updates across *all* sites before the outage — the victim's own
    #: acked updates are the state a wiped disk cannot replay back.
    n_updates_before: int = 60
    #: updates at the surviving donors while the victim is down.
    n_updates_during: int = 60
    #: updates at the rejoined victim afterwards (tid-collision probe).
    n_updates_after: int = 12
    keys: Tuple[str, ...] = ("acct0", "acct1", "acct2", "acct3")
    #: receiver lag (records) past which a sender prefers peer-reset
    #: over channel rewind; 0 = only when the log cannot serve.
    catchup_lag: int = 0
    fsync: bool = False
    heartbeat_interval: float = 0.15
    suspect_after: float = 0.6
    request_timeout: float = 20.0
    settle_timeout: float = 60.0
    #: wall-clock budget for the victim's snapshot install on rejoin.
    rejoin_timeout: float = 30.0


@dataclass
class RejoinReport:
    """What one rejoin run observed, and whether the invariants held."""

    config: RejoinConfig
    acked: Dict[str, int] = field(default_factory=dict)
    attempted: Dict[str, int] = field(default_factory=dict)
    #: converged values just before the outage (must survive it).
    pre_outage: Dict[str, Any] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)
    update_failures: int = 0
    #: serialized snapshot sizes at the pre-outage checkpoint.
    snapshot_bytes: Dict[str, int] = field(default_factory=dict)
    #: records dropped by the pre-outage compaction, cluster-wide.
    compacted_records: int = 0
    #: snapshot installs the victim performed while rejoining.
    catchup_installs: int = 0
    #: restart-to-settled wall time for the victim.
    rejoin_seconds: float = 0.0
    #: updates acked at the victim after rejoin.
    victim_acked_after: int = 0
    converged: bool = False
    wall_seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        out: List[str] = []
        for key in sorted(set(self.acked) | set(self.final)):
            acked = self.acked.get(key, 0)
            attempted = self.attempted.get(key, 0)
            got = self.final.get(key, 0)
            if got < acked:
                out.append(
                    "acked update lost across the outage: %s converged "
                    "to %s but %d increments were acknowledged"
                    % (key, got, acked)
                )
            if got > attempted:
                out.append(
                    "update double-applied: %s converged to %s but only "
                    "%d increments were attempted" % (key, got, attempted)
                )
        if self.config.wipe and self.catchup_installs < 1:
            out.append(
                "wiped replica rejoined without a snapshot install "
                "(full replay should have been impossible)"
            )
        if not self.converged:
            out.append("replicas did not reconverge after the rejoin")
        if self.config.n_updates_after and self.victim_acked_after == 0:
            out.append(
                "rejoined replica acknowledged no new updates"
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        cfg = self.config
        lines = [
            "Rejoin run: seed=%d method=%s sites=%d (%s victim, "
            "%d+%d+%d updates)"
            % (
                cfg.seed,
                cfg.method.upper(),
                cfg.n_sites,
                "disk-wipe" if cfg.wipe else "long-downtime",
                cfg.n_updates_before,
                cfg.n_updates_during,
                cfg.n_updates_after,
            ),
            "",
            "updates: %d acked, %d failed-or-unknown of %d attempted"
            % (
                sum(self.acked.values()),
                self.update_failures,
                sum(self.attempted.values()),
            ),
            "pre-outage checkpoint: %d log records compacted, "
            "snapshots %s bytes"
            % (
                self.compacted_records,
                "/".join(
                    str(v) for _, v in sorted(self.snapshot_bytes.items())
                ),
            ),
            "rejoin: %d snapshot install(s), settled %.2fs after restart"
            % (self.catchup_installs, self.rejoin_seconds),
            "victim after rejoin: %d new updates acked"
            % self.victim_acked_after,
            "reconverged: %s" % ("yes" if self.converged else "NO"),
        ]
        if self.artifacts:
            lines.append("artifacts: %s" % self.artifacts.get("dir", ""))
        lines.append("")
        problems = self.violations()
        if problems:
            lines.append("INVARIANT VIOLATIONS (%d):" % len(problems))
            lines.extend("  - " + p for p in problems)
        else:
            lines.append(
                "all invariants held: no acked-update loss across the "
                "%s, snapshot rejoin, reconverged (%.1fs wall)"
                % (
                    "disk wipe" if cfg.wipe else "outage",
                    self.wall_seconds,
                )
            )
        return "\n".join(lines)


async def run_rejoin(
    config: RejoinConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> RejoinReport:
    """Execute one seeded rejoin scenario; never raises on invariant
    failure — inspect :meth:`RejoinReport.violations`."""
    started = time.monotonic()
    cluster = LiveCluster(
        n_sites=config.n_sites,
        method=config.method,
        data_dir=data_dir,
        fsync=config.fsync,
        suspect_after=config.suspect_after,
        heartbeat_interval=config.heartbeat_interval,
        server_options={"catchup_lag": config.catchup_lag},
    )
    report = RejoinReport(config=config)
    rng = random.Random(config.seed)
    await cluster.start()
    try:
        names = list(cluster.names)
        victim = names[-1]
        donors = [n for n in names if n != victim]
        clients: Dict[str, LiveClient] = {}
        for name in names:
            clients[name] = await cluster.client(
                name, request_timeout=config.request_timeout
            )

        async def spray(count: int, sites: Sequence[str]) -> int:
            acked = 0
            for _ in range(count):
                site = rng.choice(list(sites))
                key = rng.choice(config.keys)
                report.attempted[key] = report.attempted.get(key, 0) + 1
                try:
                    await clients[site].increment(key, 1)
                except (
                    LiveETFailed,
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    RequestTimeout,
                ):
                    report.update_failures += 1
                else:
                    report.acked[key] = report.acked.get(key, 0) + 1
                    acked += 1
            return acked

        # Phase 1: everyone takes writes, then checkpoint + compact.
        # After this the victim's own updates live only in snapshots —
        # every log record at or below the frontiers is gone.
        await spray(config.n_updates_before, names)
        await cluster.settle(timeout=config.settle_timeout)
        snaps = await cluster.snapshot_all()
        report.snapshot_bytes = {
            name: int(s.get("bytes", 0)) for name, s in snaps.items()
        }
        report.compacted_records = sum(
            int(s.get("compacted", 0)) for s in snaps.values()
        )
        values = await cluster.site_values()
        report.pre_outage = {
            key: next(iter(values.values())).get(key, 0)
            for key in config.keys
        }

        # Phase 2: the victim loses its disk (or just goes dark) while
        # the donors keep writing.
        if config.wipe:
            await cluster.wipe(victim)
        else:
            await cluster.kill(victim)
        if not cluster.servers[donors[0]].engine.sync_commit:
            await spray(config.n_updates_during, donors)
        # (sync-commit methods — the ROWA baseline — cannot accept
        # writes with a replica down; that unavailability is exactly
        # what the paper's asynchronous methods avoid, so the outage
        # phase is write-free for them.)

        # Phase 3: restart and measure restart-to-settled.
        t0 = time.monotonic()
        await cluster.restart(victim)
        if config.wipe:
            await cluster.wait_caught_up(
                victim, timeout=config.rejoin_timeout
            )
        await cluster.settle(timeout=config.settle_timeout)
        report.rejoin_seconds = time.monotonic() - t0
        report.catchup_installs = cluster.servers[victim].catchup_installs

        # Phase 4: the rejoined victim must be a first-class replica
        # again — new updates, fresh tids, full propagation.
        await clients[victim].close()
        clients[victim] = await cluster.client(
            victim, request_timeout=config.request_timeout
        )
        report.victim_acked_after = await spray(
            config.n_updates_after, [victim]
        )
        await cluster.settle(timeout=config.settle_timeout)
        report.converged = await cluster.converged()
        values = await cluster.site_values()
        if values:
            any_site = next(iter(values.values()))
            report.final = {
                key: any_site.get(key, 0) for key in config.keys
            }
        if artifacts_dir is not None:
            report.artifacts = await persist_cluster_artifacts(
                cluster, pathlib.Path(artifacts_dir)
            )
    finally:
        report.wall_seconds = time.monotonic() - started
        await cluster.stop()
    return report


def run_rejoin_sync(
    config: RejoinConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> RejoinReport:
    """Blocking wrapper for CLI / benchmark use."""
    return asyncio.run(run_rejoin(config, data_dir, artifacts_dir))


# -- live shard migration scenario ---------------------------------------------


@dataclass(frozen=True)
class MigrateConfig:
    """One reproducible live-migration scenario.

    ``crash_during=True`` kills one replacement replica in the window
    between the fence and the state transfer — the point where a
    buggy cutover would lose acknowledged updates — and heals it
    after ``crash_heal_delay`` seconds; the migration must stall and
    then complete, not fail.
    """

    seed: int = 0
    n_shards: int = 3
    replicas: int = 3
    method: str = "commu"
    #: routed updates before / concurrently with / after the cutover.
    n_updates_before: int = 45
    n_updates_during: int = 30
    n_updates_after: int = 30
    #: the shard that moves groups mid-workload.
    migrate_shard_index: int = 1
    #: enough keys that every shard owns several.
    keys: Tuple[str, ...] = tuple("acct%d" % i for i in range(8))
    crash_during: bool = True
    crash_heal_delay: float = 0.4
    heartbeat_interval: float = 0.15
    suspect_after: float = 0.6
    request_timeout: float = 20.0
    settle_timeout: float = 60.0
    #: wall-clock budget for the cutover (also the router's patience
    #: window for requests caught mid-migration).
    migration_timeout: float = 30.0


@dataclass
class MigrateReport:
    """What one migration run observed, and whether the invariants
    held."""

    config: MigrateConfig
    acked: Dict[str, int] = field(default_factory=dict)
    attempted: Dict[str, int] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)
    update_failures: int = 0
    #: keys owned by the migrated shard (the blast radius).
    migrated_keys: Tuple[str, ...] = ()
    epoch_before: int = 0
    epoch_after: int = 0
    migration_seconds: float = 0.0
    #: shard maps the router adopted from WRONG_SHARD refusals.
    router_map_refreshes: int = 0
    #: snapshot installs across the replacement group (one per
    #: replica proves migration went through the rejoin machinery).
    new_group_installs: int = 0
    #: post-cutover probe: the fenced-out group refuses WRONG_SHARD.
    old_group_refuses: Optional[bool] = None
    #: post-cutover strict (epsilon=0) read of a migrated key.
    strict_read_ok: bool = False
    converged: bool = False
    wall_seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        out: List[str] = []
        for key in sorted(set(self.acked) | set(self.final)):
            acked = self.acked.get(key, 0)
            attempted = self.attempted.get(key, 0)
            got = self.final.get(key, 0)
            if got < acked:
                out.append(
                    "acked update lost across the migration: %s "
                    "converged to %s but %d increments were "
                    "acknowledged" % (key, got, acked)
                )
            if got > attempted:
                out.append(
                    "update double-applied: %s converged to %s but "
                    "only %d increments were attempted"
                    % (key, got, attempted)
                )
        if self.epoch_after <= self.epoch_before:
            out.append(
                "shard-map epoch did not advance (%d -> %d)"
                % (self.epoch_before, self.epoch_after)
            )
        if self.new_group_installs < self.config.replicas:
            out.append(
                "replacement group installed %d snapshot(s), expected "
                "one per replica (%d) — the cutover bypassed the "
                "rejoin machinery"
                % (self.new_group_installs, self.config.replicas)
            )
        if self.old_group_refuses is False:
            out.append(
                "fenced-out group still serves its old shard instead "
                "of refusing WRONG_SHARD"
            )
        if not self.strict_read_ok:
            out.append(
                "strict (epsilon=0) read of a migrated key failed "
                "after the cutover"
            )
        if not self.converged:
            out.append("replicas did not converge after the migration")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        cfg = self.config
        lines = [
            "Migration run: seed=%d method=%s shards=%d x%d replicas "
            "(%d+%d+%d routed updates%s)"
            % (
                cfg.seed,
                cfg.method.upper(),
                cfg.n_shards,
                cfg.replicas,
                cfg.n_updates_before,
                cfg.n_updates_during,
                cfg.n_updates_after,
                ", crash mid-migration" if cfg.crash_during else "",
            ),
            "",
            "updates: %d acked, %d failed-or-unknown of %d attempted"
            % (
                sum(self.acked.values()),
                self.update_failures,
                sum(self.attempted.values()),
            ),
            "shard %d (%d keys) cut over in %.2fs: epoch %d -> %d, "
            "%d snapshot install(s), %d router map refresh(es)"
            % (
                cfg.migrate_shard_index,
                len(self.migrated_keys),
                self.migration_seconds,
                self.epoch_before,
                self.epoch_after,
                self.new_group_installs,
                self.router_map_refreshes,
            ),
            "old group post-cutover: %s"
            % (
                "refuses WRONG_SHARD"
                if self.old_group_refuses
                else "STILL SERVING"
            ),
            "strict read at new owner: %s"
            % ("ok" if self.strict_read_ok else "FAILED"),
            "reconverged: %s" % ("yes" if self.converged else "NO"),
        ]
        if self.artifacts:
            lines.append("artifacts: %s" % self.artifacts.get("dir", ""))
        lines.append("")
        problems = self.violations()
        if problems:
            lines.append("INVARIANT VIOLATIONS (%d):" % len(problems))
            lines.extend("  - " + p for p in problems)
        else:
            lines.append(
                "all invariants held: no acked-update loss across the "
                "cutover, snapshot-install rejoin, honest WRONG_SHARD "
                "fencing, converged (%.1fs wall)" % self.wall_seconds
            )
        return "\n".join(lines)


async def run_migrate(
    config: MigrateConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> MigrateReport:
    """Execute one seeded live-migration scenario; never raises on
    invariant failure — inspect :meth:`MigrateReport.violations`."""
    started = time.monotonic()
    cluster = ShardedCluster(
        n_shards=config.n_shards,
        replicas=config.replicas,
        method=config.method,
        data_dir=data_dir,
        suspect_after=config.suspect_after,
        heartbeat_interval=config.heartbeat_interval,
    )
    report = MigrateReport(config=config)
    rng = random.Random(config.seed)
    shard = config.migrate_shard_index % config.n_shards
    report.migrated_keys = tuple(
        k for k in config.keys if key_shard(k, config.n_shards) == shard
    )
    heal_tasks: List[asyncio.Task] = []
    await cluster.start()
    try:
        router = cluster.router(
            migration_wait=config.migration_timeout,
            client_options={"request_timeout": config.request_timeout},
        )

        async def spray(count: int, pace: float = 0.0) -> None:
            for _ in range(count):
                key = rng.choice(config.keys)
                report.attempted[key] = report.attempted.get(key, 0) + 1
                try:
                    await router.increment(key, 1)
                except (
                    LiveETFailed,
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    RequestTimeout,
                ):
                    report.update_failures += 1
                else:
                    report.acked[key] = report.acked.get(key, 0) + 1
                if pace:
                    await asyncio.sleep(rng.uniform(0.5, 1.0) * pace)

        # Phase 1: routed writes so the migrating shard owns
        # acknowledged state, checkpointed nowhere but its group.
        await spray(config.n_updates_before)
        await cluster.settle(timeout=config.settle_timeout)
        report.epoch_before = cluster.map.epoch
        old_group = cluster.groups[shard]
        old_addr = old_group.addrs[old_group.names[0]]

        # Phase 2: live cutover, with the write workload still
        # running through the router — requests that catch the fence
        # retry off the WRONG_SHARD map hint.
        async def crash_mid_migration() -> None:
            if not config.crash_during:
                return
            pending = cluster.pending
            victim = pending.names[-1]
            await pending.kill(victim)

            async def heal() -> None:
                await asyncio.sleep(config.crash_heal_delay)
                await pending.restart(victim)

            heal_tasks.append(asyncio.create_task(heal()))

        t0 = time.monotonic()
        migration = asyncio.ensure_future(
            cluster.migrate(
                shard,
                before_install=crash_mid_migration,
                settle_timeout=config.settle_timeout,
                step_timeout=config.migration_timeout,
            )
        )
        await spray(config.n_updates_during, pace=0.02)
        await migration
        report.migration_seconds = time.monotonic() - t0
        report.epoch_after = cluster.map.epoch
        report.new_group_installs = sum(
            server.catchup_installs
            for server in cluster.groups[shard].servers.values()
        )

        # Phase 3: the new owner is a first-class group — more routed
        # writes, a strict read, and an honest refusal from the old
        # group when addressed directly at its stale address.
        await spray(config.n_updates_after)
        await cluster.settle(timeout=config.settle_timeout)
        if report.migrated_keys:
            probe_key = report.migrated_keys[0]
            try:
                await router.read(probe_key, epsilon=0)
                report.strict_read_ok = True
            except (LiveETFailed, ConnectionError, OSError):
                report.strict_read_ok = False
            stale = await LiveClient.connect(
                *old_addr, reconnect=False, request_timeout=5.0
            )
            try:
                await stale.read(probe_key)
                report.old_group_refuses = False
            except LiveETFailed as exc:
                report.old_group_refuses = exc.wrong_shard
            except (ConnectionError, OSError):
                report.old_group_refuses = None  # already decommissioned
            finally:
                await stale.close()
        else:  # pragma: no cover — 8 keys over <= 8 shards always hit
            report.strict_read_ok = True
        report.router_map_refreshes = router.map_refreshes
        report.converged = await cluster.converged()
        report.final = {
            key: value
            for key, value in (await cluster.values()).items()
            if key in config.keys
        }
        if artifacts_dir is not None:
            base = pathlib.Path(artifacts_dir)
            report.artifacts = {"dir": str(base)}
            for index, group in enumerate(cluster.groups):
                sub = await persist_cluster_artifacts(
                    group, base / ("shard%d" % index)
                )
                report.artifacts["shard%d" % index] = sub["dir"]
    finally:
        for task in heal_tasks:
            if not task.done():
                task.cancel()
        report.wall_seconds = time.monotonic() - started
        await cluster.stop()
    return report


def run_migrate_sync(
    config: MigrateConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> MigrateReport:
    """Blocking wrapper for CLI / benchmark use."""
    return asyncio.run(run_migrate(config, data_dir, artifacts_dir))


# -- sequencer failover scenario ----------------------------------------------


@dataclass(frozen=True)
class ElectConfig:
    """One reproducible sequencer-failover scenario (ORDUP only).

    The initial sequencer (the elected leader, or the lexicographic
    default before any election) is killed at quiescence; the harness
    measures the *blackout window* — crash to first survivor-acked
    update, which spans failure detection, the election, and the
    survivors' order-acquisition retry — then resurrects the deposed
    leader and probes it for a stale-epoch order grant (the
    split-brain check).  Killing at quiescence is deliberate: an
    origin that crashes between grant and durable log loses only
    unacknowledged work (a documented liveness-only window), and this
    scenario is about the safety claims.
    """

    seed: int = 0
    n_sites: int = 3
    method: str = "ordup"
    #: updates across *all* sites before the crash (warm-up, so the
    #: victim owns acknowledged, fully propagated state).
    n_updates_before: int = 40
    #: updates at the survivors while the old leader stays down.
    n_updates_during: int = 40
    #: updates routed *through the resurrected ex-leader* afterwards —
    #: they must reach the new sequencer and ack.
    n_updates_after: int = 12
    keys: Tuple[str, ...] = ("acct0", "acct1", "acct2", "acct3")
    fsync: bool = False
    heartbeat_interval: float = 0.1
    suspect_after: float = 0.4
    request_timeout: float = 30.0
    settle_timeout: float = 60.0
    #: wall-clock budget for the blackout window (detector
    #: dead-escalation + election + lease + retry).
    blackout_limit: float = 15.0
    #: wall-clock budget for the new epoch to appear in stats.
    elect_timeout: float = 20.0


@dataclass
class ElectReport:
    """What one failover run observed, and whether the invariants held."""

    config: ElectConfig
    old_leader: str = ""
    new_leader: str = ""
    epoch_before: int = 0
    epoch_after: int = 0
    #: crash -> first survivor-acked update, seconds.
    blackout_seconds: float = 0.0
    #: outcome of the order-token probe against the resurrected stale
    #: leader: (error code, granted epoch).  An empty code with an
    #: epoch below ``epoch_after`` is a split brain.
    stale_probe: Optional[Tuple[str, int]] = None
    #: the resurrected ex-leader's epoch once it resynced.
    resynced_epoch: int = 0
    #: every site's final (epoch, leader) view — must agree.
    leader_views: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    acked: Dict[str, int] = field(default_factory=dict)
    attempted: Dict[str, int] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)
    update_failures: int = 0
    #: updates acked through the resurrected ex-leader.
    revenant_acked: int = 0
    converged: bool = False
    wall_seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        out: List[str] = []
        for key in sorted(set(self.acked) | set(self.final)):
            acked = self.acked.get(key, 0)
            attempted = self.attempted.get(key, 0)
            got = self.final.get(key, 0)
            if got < acked:
                out.append(
                    "acked update lost across the failover: %s converged "
                    "to %s but %d increments were acknowledged"
                    % (key, got, acked)
                )
            if got > attempted:
                out.append(
                    "update double-applied: %s converged to %s but only "
                    "%d increments were attempted" % (key, got, attempted)
                )
        if self.epoch_after <= self.epoch_before:
            out.append(
                "crashing the sequencer did not trigger an election "
                "(epoch stayed at %d)" % self.epoch_before
            )
        elif not self.new_leader or self.new_leader == self.old_leader:
            out.append(
                "leadership did not move off the crashed sequencer"
            )
        if self.blackout_seconds > self.config.blackout_limit:
            out.append(
                "failover blackout %.2fs exceeded the %.1fs budget"
                % (self.blackout_seconds, self.config.blackout_limit)
            )
        if self.stale_probe is not None:
            code, epoch = self.stale_probe
            if not code and epoch < self.epoch_after:
                out.append(
                    "SPLIT BRAIN: resurrected leader granted an order "
                    "token at stale epoch %d (current epoch %d)"
                    % (epoch, self.epoch_after)
                )
        if self.epoch_after and self.resynced_epoch < self.epoch_after:
            out.append(
                "resurrected leader never adopted the new epoch "
                "(stuck at %d, cluster at %d)"
                % (self.resynced_epoch, self.epoch_after)
            )
        if len(set(self.leader_views.values())) > 1:
            out.append(
                "sites disagree on leadership at quiescence: %s"
                % {k: v for k, v in sorted(self.leader_views.items())}
            )
        if self.config.n_updates_after and self.revenant_acked == 0:
            out.append(
                "no update routed through the resurrected ex-leader "
                "was acknowledged"
            )
        if not self.converged:
            out.append("replicas did not reconverge after the failover")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        cfg = self.config
        lines = [
            "Failover run: seed=%d method=%s sites=%d (%d+%d+%d updates)"
            % (
                cfg.seed,
                cfg.method.upper(),
                cfg.n_sites,
                cfg.n_updates_before,
                cfg.n_updates_during,
                cfg.n_updates_after,
            ),
            "",
            "updates: %d acked, %d failed-or-unknown of %d attempted"
            % (
                sum(self.acked.values()),
                self.update_failures,
                sum(self.attempted.values()),
            ),
            "sequencer: %s (epoch %d) -> %s (epoch %d)"
            % (
                self.old_leader,
                self.epoch_before,
                self.new_leader or "(none)",
                self.epoch_after,
            ),
            "failover blackout: %.2fs (budget %.1fs)"
            % (self.blackout_seconds, cfg.blackout_limit),
        ]
        if self.stale_probe is not None:
            code, epoch = self.stale_probe
            lines.append(
                "resurrected-leader order probe: %s"
                % (code or ("granted at epoch %d" % epoch))
            )
        lines.append(
            "resurrected leader resynced to epoch %d, %d updates "
            "acked through it" % (self.resynced_epoch, self.revenant_acked)
        )
        lines.append(
            "reconverged: %s" % ("yes" if self.converged else "NO")
        )
        if self.artifacts:
            lines.append("artifacts: %s" % self.artifacts.get("dir", ""))
        lines.append("")
        problems = self.violations()
        if problems:
            lines.append("INVARIANT VIOLATIONS (%d):" % len(problems))
            lines.extend("  - " + p for p in problems)
        else:
            lines.append(
                "all invariants held: election fenced the old epoch, no "
                "acked-update loss, one leader per epoch, converged "
                "(%.1fs wall)" % self.wall_seconds
            )
        return "\n".join(lines)


async def run_elect(
    config: ElectConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> ElectReport:
    """Execute one seeded failover scenario; never raises on invariant
    failure — inspect :meth:`ElectReport.violations`."""
    started = time.monotonic()
    cluster = LiveCluster(
        n_sites=config.n_sites,
        method=config.method,
        data_dir=data_dir,
        fsync=config.fsync,
        suspect_after=config.suspect_after,
        heartbeat_interval=config.heartbeat_interval,
    )
    report = ElectReport(config=config)
    rng = random.Random(config.seed)
    await cluster.start()
    try:
        names = list(cluster.names)
        leader = cluster.servers[names[0]].current_leader()
        report.old_leader = leader
        survivors = [n for n in names if n != leader]
        clients: Dict[str, LiveClient] = {}
        for name in names:
            clients[name] = await cluster.client(
                name, request_timeout=config.request_timeout
            )

        async def spray(count: int, sites: Sequence[str]) -> int:
            acked = 0
            for _ in range(count):
                site = rng.choice(list(sites))
                key = rng.choice(config.keys)
                report.attempted[key] = report.attempted.get(key, 0) + 1
                try:
                    await clients[site].increment(key, 1)
                except (
                    LiveETFailed,
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    RequestTimeout,
                ):
                    report.update_failures += 1
                else:
                    report.acked[key] = report.acked.get(key, 0) + 1
                    acked += 1
            return acked

        # Phase 1: warm up through the initial sequencer and settle,
        # so the victim's acked state is fully propagated when it dies.
        await spray(config.n_updates_before, names)
        await cluster.settle(timeout=config.settle_timeout)
        report.epoch_before = cluster.servers[survivors[0]].election.epoch

        # Phase 2: kill the sequencer.  The blackout window is crash to
        # first survivor-acked update: the survivor's order acquisition
        # spins while the detector escalates and the election runs, so
        # one increment call measures the whole outage end-to-end.
        await cluster.kill(leader)
        t0 = time.monotonic()
        probe_key = config.keys[0]
        deadline = t0 + config.blackout_limit + 5.0
        while True:
            report.attempted[probe_key] = (
                report.attempted.get(probe_key, 0) + 1
            )
            try:
                await clients[survivors[0]].increment(probe_key, 1)
            except (
                LiveETFailed,
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                RequestTimeout,
            ):
                report.update_failures += 1
                report.blackout_seconds = time.monotonic() - t0
                if time.monotonic() >= deadline:
                    break
            else:
                report.acked[probe_key] = (
                    report.acked.get(probe_key, 0) + 1
                )
                report.blackout_seconds = time.monotonic() - t0
                break

        # The election must be visible in stats (epoch bumped, leader
        # moved) — poll a survivor.
        poll_deadline = time.monotonic() + config.elect_timeout
        while time.monotonic() < poll_deadline:
            stats = await clients[survivors[0]].stats()
            election = stats.get("election", {})
            if int(election.get("epoch", 0)) > report.epoch_before:
                report.epoch_after = int(election.get("epoch", 0))
                report.new_leader = str(election.get("leader") or "")
                break
            await asyncio.sleep(0.1)

        # Phase 3: the survivors keep writing under the new sequencer.
        await spray(config.n_updates_during, survivors)

        # Phase 4: resurrect the deposed leader and immediately ask it
        # for an order token.  Its durable election state predates the
        # failover, so before the epoch probe completes it is a
        # live replica that still *believes* it is the sequencer —
        # exactly the split-brain window the fencing must close: the
        # probe must be refused (or, once resynced, redirected), never
        # granted at the stale epoch.
        await cluster.restart(leader)
        await clients[leader].close()
        clients[leader] = await cluster.client(
            leader, request_timeout=config.request_timeout
        )
        try:
            reply = await clients[leader].request("order", timeout=5.0)
        except LiveETFailed as exc:
            report.stale_probe = (exc.code or "ERROR", -1)
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            RequestTimeout,
        ) as exc:
            report.stale_probe = (type(exc).__name__, -1)
        else:
            order = list(reply.get("order") or [])
            granted_epoch = int(order[1]) if len(order) > 1 else 0
            report.stale_probe = ("", granted_epoch)

        # The revenant must adopt the new epoch via its boot probe /
        # gossip, then serve as an ordinary replica.
        poll_deadline = time.monotonic() + config.elect_timeout
        while time.monotonic() < poll_deadline:
            stats = await clients[leader].stats()
            election = stats.get("election", {})
            epoch = int(election.get("epoch", 0))
            if epoch >= report.epoch_after and election.get("synced"):
                report.resynced_epoch = epoch
                break
            await asyncio.sleep(0.1)

        # Phase 5: updates routed through the ex-leader must reach the
        # new sequencer and ack.
        report.revenant_acked = await spray(
            config.n_updates_after, [leader]
        )
        await cluster.settle(timeout=config.settle_timeout)
        report.converged = await cluster.converged()
        values = await cluster.site_values()
        if values:
            any_site = next(iter(values.values()))
            report.final = {
                key: any_site.get(key, 0) for key in config.keys
            }
        for name in names:
            stats = await clients[name].stats()
            election = stats.get("election", {})
            report.leader_views[name] = (
                int(election.get("epoch", 0)),
                str(election.get("leader") or ""),
            )
        if artifacts_dir is not None:
            report.artifacts = await persist_cluster_artifacts(
                cluster, pathlib.Path(artifacts_dir)
            )
    finally:
        report.wall_seconds = time.monotonic() - started
        await cluster.stop()
    return report


def run_elect_sync(
    config: ElectConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> ElectReport:
    """Blocking wrapper for CLI / benchmark use."""
    return asyncio.run(run_elect(config, data_dir, artifacts_dir))


# -- multi-region WAN scenario -------------------------------------------------


@dataclass(frozen=True)
class WanConfig:
    """One reproducible multi-region WAN scenario.

    Sites are split into regions joined by modeled WAN links
    (:data:`~repro.live.faults.WAN_INTER`: tens of milliseconds of
    propagation plus a bandwidth ceiling) with LAN-grade links inside
    each region.  Mid-run, the inter-region links are severed — a full
    region partition — and the harness checks the paper's availability
    split on *both* sides: epsilon-bounded reads keep answering with
    honest inconsistency accounting, an ``epsilon = 0`` read refuses
    fast with the typed ``UNAVAILABLE`` code, and asynchronous writes
    keep acking locally.  After the heal, everything must reconverge.
    """

    seed: int = 0
    method: str = "commu"
    #: sites per region, assigned in name order (site0, site1, ...).
    region_sites: Tuple[int, ...] = (2, 2)
    n_updates_before: int = 40
    #: updates *per region* while partitioned.
    n_updates_during: int = 20
    n_updates_after: int = 20
    keys: Tuple[str, ...] = ("acct0", "acct1", "acct2", "acct3")
    #: budget for the degraded bounded probe (generous on purpose —
    #: availability, not precision, is under test).
    bounded_epsilon: int = 10_000
    fsync: bool = False
    heartbeat_interval: float = 0.15
    suspect_after: float = 0.6
    request_timeout: float = 20.0
    settle_timeout: float = 60.0
    #: the strict probe must refuse within this bound (fail fast, not
    #: hang until some distant timeout).
    strict_probe_limit: float = 1.0

    @property
    def n_sites(self) -> int:
        return sum(self.region_sites)


@dataclass
class WanReport:
    """What one WAN run observed, and whether the invariants held."""

    config: WanConfig
    regions: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    acked: Dict[str, int] = field(default_factory=dict)
    attempted: Dict[str, int] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)
    update_failures: int = 0
    #: per-region strict (epsilon=0) probe during the partition:
    #: region -> (elapsed seconds, error code; "" means it answered).
    strict_probes: Dict[str, Tuple[float, str]] = field(
        default_factory=dict
    )
    #: per-region bounded probe: region -> reported inconsistency
    #: (None means it failed to answer).
    bounded_probes: Dict[str, Optional[int]] = field(default_factory=dict)
    #: updates acked in each region while partitioned.
    partition_acked: Dict[str, int] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    converged: bool = False
    wall_seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        out: List[str] = []
        for key in sorted(set(self.acked) | set(self.final)):
            acked = self.acked.get(key, 0)
            attempted = self.attempted.get(key, 0)
            got = self.final.get(key, 0)
            if got < acked:
                out.append(
                    "acked update lost across the region partition: %s "
                    "converged to %s but %d increments were acknowledged"
                    % (key, got, acked)
                )
            if got > attempted:
                out.append(
                    "update double-applied: %s converged to %s but only "
                    "%d increments were attempted" % (key, got, attempted)
                )
        for region in sorted(self.regions):
            probe = self.strict_probes.get(region)
            if probe is None:
                out.append(
                    "no strict probe recorded in region %s" % region
                )
            else:
                elapsed, code = probe
                if not code:
                    out.append(
                        "epsilon=0 read answered in partitioned region "
                        "%s (must refuse)" % region
                    )
                elif elapsed > self.config.strict_probe_limit:
                    out.append(
                        "epsilon=0 refusal in region %s took %.2fs "
                        "(budget %.1fs)"
                        % (region, elapsed, self.config.strict_probe_limit)
                    )
            if self.bounded_probes.get(region) is None:
                out.append(
                    "bounded read went unavailable in partitioned "
                    "region %s" % region
                )
            if (
                self.config.n_updates_during
                and self.partition_acked.get(region, 0) == 0
            ):
                out.append(
                    "no update acked in region %s during the partition "
                    "(asynchronous writes must stay live)" % region
                )
        if not self.fault_counts.get("delayed"):
            out.append(
                "WAN latency model never engaged (no delayed frames)"
            )
        if not self.converged:
            out.append("regions did not reconverge after the heal")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        cfg = self.config
        lines = [
            "WAN run: seed=%d method=%s regions=%s (%d+%dx%d+%d updates)"
            % (
                cfg.seed,
                cfg.method.upper(),
                "/".join(str(n) for n in cfg.region_sites),
                cfg.n_updates_before,
                len(self.regions) or len(cfg.region_sites),
                cfg.n_updates_during,
                cfg.n_updates_after,
            ),
            "",
            "updates: %d acked, %d failed-or-unknown of %d attempted"
            % (
                sum(self.acked.values()),
                self.update_failures,
                sum(self.attempted.values()),
            ),
        ]
        for region in sorted(self.regions):
            probe = self.strict_probes.get(region)
            strict = "(missing)"
            if probe is not None:
                elapsed, code = probe
                strict = "%s in %.0f ms" % (
                    code or "(answered)", elapsed * 1e3
                )
            bounded = self.bounded_probes.get(region)
            lines.append(
                "region %s partitioned: strict probe %s, bounded probe "
                "%s, %d updates acked"
                % (
                    region,
                    strict,
                    "inconsistency=%s" % bounded
                    if bounded is not None
                    else "UNAVAILABLE",
                    self.partition_acked.get(region, 0),
                )
            )
        lines.append(
            "faults injected: "
            + ", ".join(
                "%s=%d" % (k, v)
                for k, v in sorted(self.fault_counts.items())
            )
        )
        lines.append(
            "reconverged: %s" % ("yes" if self.converged else "NO")
        )
        if self.artifacts:
            lines.append("artifacts: %s" % self.artifacts.get("dir", ""))
        lines.append("")
        problems = self.violations()
        if problems:
            lines.append("INVARIANT VIOLATIONS (%d):" % len(problems))
            lines.extend("  - " + p for p in problems)
        else:
            lines.append(
                "all invariants held: both regions stayed live within "
                "epsilon, strict reads refused honestly, reconverged "
                "(%.1fs wall)" % self.wall_seconds
            )
        return "\n".join(lines)


async def run_wan(
    config: WanConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> WanReport:
    """Execute one seeded WAN scenario; never raises on invariant
    failure — inspect :meth:`WanReport.violations`."""
    started = time.monotonic()
    plan = FaultPlan(config.seed)
    cluster = LiveCluster(
        n_sites=config.n_sites,
        method=config.method,
        data_dir=data_dir,
        faults=plan,
        fsync=config.fsync,
        suspect_after=config.suspect_after,
        heartbeat_interval=config.heartbeat_interval,
    )
    report = WanReport(config=config)
    rng = random.Random(config.seed)
    names = list(cluster.names)
    regions: Dict[str, Tuple[str, ...]] = {}
    cursor = 0
    for i, count in enumerate(config.region_sites):
        regions["region%d" % i] = tuple(names[cursor : cursor + count])
        cursor += count
    report.regions = regions
    plan.set_regions(regions)
    await cluster.start()
    try:
        clients: Dict[str, LiveClient] = {}
        for name in names:
            clients[name] = await cluster.client(
                name, request_timeout=config.request_timeout
            )

        async def spray(count: int, sites: Sequence[str]) -> int:
            acked = 0
            for _ in range(count):
                site = rng.choice(list(sites))
                key = rng.choice(config.keys)
                report.attempted[key] = report.attempted.get(key, 0) + 1
                try:
                    await clients[site].increment(key, 1)
                except (
                    LiveETFailed,
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    RequestTimeout,
                ):
                    report.update_failures += 1
                else:
                    report.acked[key] = report.acked.get(key, 0) + 1
                    acked += 1
            return acked

        # Phase 1: cross-region steady state over the modeled WAN.
        await spray(config.n_updates_before, names)
        await cluster.settle(timeout=config.settle_timeout)

        # Phase 2: sever every inter-region link and let the failure
        # detectors age the remote peers out.
        plan.partition(plan.region_groups())
        await asyncio.sleep(
            config.suspect_after + 3 * config.heartbeat_interval
        )
        probe_key = config.keys[0]
        for region, sites in sorted(regions.items()):
            probe_site = sites[0]
            t0 = time.monotonic()
            try:
                await clients[probe_site].read(
                    probe_key, epsilon=0, timeout=5.0
                )
            except LiveETFailed as exc:
                report.strict_probes[region] = (
                    time.monotonic() - t0,
                    exc.code,
                )
            except (ConnectionError, OSError) as exc:
                report.strict_probes[region] = (
                    time.monotonic() - t0,
                    type(exc).__name__,
                )
            else:
                report.strict_probes[region] = (
                    time.monotonic() - t0, ""
                )
            try:
                outcome = await clients[probe_site].query(
                    [probe_key],
                    EpsilonSpec(import_limit=config.bounded_epsilon),
                    timeout=5.0,
                )
            except (LiveETFailed, ConnectionError, OSError):
                report.bounded_probes[region] = None
            else:
                report.bounded_probes[region] = outcome["inconsistency"]
            # Asynchronous writes must keep acking region-locally.
            report.partition_acked[region] = await spray(
                config.n_updates_during, list(sites)
            )

        # Phase 3: heal and reconverge across the WAN.
        plan.heal_all()
        await spray(config.n_updates_after, names)
        await cluster.settle(timeout=config.settle_timeout)
        report.converged = await cluster.converged()
        values = await cluster.site_values()
        if values:
            any_site = next(iter(values.values()))
            report.final = {
                key: any_site.get(key, 0) for key in config.keys
            }
        if artifacts_dir is not None:
            report.artifacts = await persist_cluster_artifacts(
                cluster, pathlib.Path(artifacts_dir)
            )
    finally:
        report.fault_counts = dict(plan.counts)
        report.wall_seconds = time.monotonic() - started
        await cluster.stop()
    return report


def run_wan_sync(
    config: WanConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> WanReport:
    """Blocking wrapper for CLI / benchmark use."""
    return asyncio.run(run_wan(config, data_dir, artifacts_dir))


# -- COMPE saga / compensation-storm scenario ----------------------------------


@dataclass(frozen=True)
class SagaConfig:
    """One reproducible COMPE saga scenario.

    The victim is the last site; it is crashed (``wipe=True``
    destroys its disk — including its compensation log — forcing a
    snapshot-install rejoin whose COMPE tables come entirely from the
    donor's engine checkpoint) in the middle of the abort storm, while
    a survivor keeps deciding sagas.  The network is clean on purpose:
    every submitted update must ack, so the final store is predicted
    *exactly* and any lost or double-applied compensation shows up as
    an off-by-amount, not a tolerance miss.
    """

    seed: int = 0
    n_sites: int = 3
    method: str = "compe"
    #: plain (auto-commit) COMPE updates before the sagas.
    n_background: int = 24
    #: sagas submitted, each ``steps_per_saga`` increments.
    n_sagas: int = 10
    steps_per_saga: int = 3
    #: fraction of sagas aborted (the compensation storm).
    abort_fraction: float = 0.5
    keys: Tuple[str, ...] = ("acct0", "acct1", "acct2", "acct3")
    #: crash the victim mid-storm; ``wipe`` also destroys its disk.
    crash: bool = True
    wipe: bool = True
    fsync: bool = False
    heartbeat_interval: float = 0.15
    suspect_after: float = 0.6
    request_timeout: float = 20.0
    settle_timeout: float = 60.0
    rejoin_timeout: float = 30.0


@dataclass
class SagaReport:
    """What one saga run observed, and whether the invariants held."""

    config: SagaConfig
    #: exact predicted converged value per key (committed effects only).
    expected: Dict[str, int] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)
    attempted: Dict[str, int] = field(default_factory=dict)
    update_failures: int = 0
    sagas_committed: int = 0
    sagas_aborted: int = 0
    #: saga step tids reported compensated by abort decides.
    steps_compensated: int = 0
    #: per-replica compensations applied (engine counters), summed.
    compensations_total: int = 0
    #: per-replica compensation-log lifetime appends, summed.
    compensation_log_records_total: int = 0
    #: tids the abort-decide re-issue decided *again* (must be zero).
    reissue_decided: int = 0
    #: per-replica compensation-counter movement across the re-issue
    #: (must be zero everywhere — replay is idempotent).
    reissue_compensation_delta: int = 0
    #: the abort=True probe: (error code, tids reported compensated).
    honest_probe: Optional[Tuple[str, Tuple[str, ...]]] = None
    #: anomalies caught while driving (mismatched decide replies).
    anomalies: List[str] = field(default_factory=list)
    #: snapshot installs the wiped victim performed while rejoining.
    catchup_installs: int = 0
    converged: bool = False
    wall_seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        out: List[str] = list(self.anomalies)
        for key in sorted(set(self.expected) | set(self.final)):
            want = self.expected.get(key, 0)
            got = self.final.get(key, 0)
            if got != want:
                out.append(
                    "store mismatch: %s converged to %s, exact "
                    "prediction from committed effects is %s (lost or "
                    "double-applied update/compensation)"
                    % (key, got, want)
                )
        if self.update_failures:
            out.append(
                "%d updates failed on a clean network (every submitted "
                "update must ack)" % self.update_failures
            )
        if self.sagas_aborted and self.compensations_total == 0:
            out.append(
                "silent zero: %d sagas aborted but no replica counted "
                "a single compensation" % self.sagas_aborted
            )
        if self.sagas_aborted and self.steps_compensated == 0:
            out.append(
                "abort decides reported no compensated step tids"
            )
        if self.reissue_decided:
            out.append(
                "re-issued abort decides decided %d tid(s) again — "
                "decisions are not idempotent" % self.reissue_decided
            )
        if self.reissue_compensation_delta:
            out.append(
                "compensation counters moved by %d across the decide "
                "re-issue — a compensation was applied twice"
                % self.reissue_compensation_delta
            )
        if self.honest_probe is None:
            out.append("abort=True probe never ran")
        else:
            code, tids = self.honest_probe
            if code != "COMPENSATED":
                out.append(
                    "abort=True update failed with %r, not the typed "
                    "COMPENSATED code" % code
                )
            if not tids:
                out.append(
                    "COMPENSATED failure did not name the undone tid(s)"
                )
        if self.config.crash and self.config.wipe and (
            self.catchup_installs < 1
        ):
            out.append(
                "wiped replica rejoined without a snapshot install"
            )
        if not self.converged:
            out.append(
                "replicas did not converge after the compensation storm"
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        cfg = self.config
        lines = [
            "Saga run: seed=%d sites=%d (%d background updates, %d "
            "sagas x %d steps%s)"
            % (
                cfg.seed,
                cfg.n_sites,
                cfg.n_background,
                cfg.n_sagas,
                cfg.steps_per_saga,
                ", %s mid-storm"
                % ("disk-wipe crash" if cfg.wipe else "crash/restart")
                if cfg.crash
                else "",
            ),
            "",
            "sagas: %d committed, %d aborted (%d step tids compensated)"
            % (
                self.sagas_committed,
                self.sagas_aborted,
                self.steps_compensated,
            ),
            "compensations applied across replicas: %d "
            "(%d compensation-log records)"
            % (
                self.compensations_total,
                self.compensation_log_records_total,
            ),
            "idempotence re-issue: %d re-decided, counter delta %d"
            % (self.reissue_decided, self.reissue_compensation_delta),
        ]
        if self.honest_probe is not None:
            code, tids = self.honest_probe
            lines.append(
                "abort=True probe: %s (undone: %s)"
                % (code or "(committed?)", ", ".join(tids) or "none")
            )
        if self.config.crash:
            lines.append(
                "victim rejoin: %d snapshot install(s)"
                % self.catchup_installs
            )
        lines.append(
            "converged to exact prediction: %s"
            % ("yes" if self.converged and not self.violations() else "NO")
        )
        if self.artifacts:
            lines.append("artifacts: %s" % self.artifacts.get("dir", ""))
        lines.append("")
        problems = self.violations()
        if problems:
            lines.append("INVARIANT VIOLATIONS (%d):" % len(problems))
            lines.extend("  - " + p for p in problems)
        else:
            lines.append(
                "all invariants held: exact convergence through the "
                "mid-storm crash, idempotent compensation replay, "
                "honest COMPENSATED reporting (%.1fs wall)"
                % self.wall_seconds
            )
        return "\n".join(lines)


async def run_saga(
    config: SagaConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> SagaReport:
    """Execute one seeded saga scenario; never raises on invariant
    failure — inspect :meth:`SagaReport.violations`."""
    started = time.monotonic()
    cluster = LiveCluster(
        n_sites=config.n_sites,
        method=config.method,
        data_dir=data_dir,
        fsync=config.fsync,
        suspect_after=config.suspect_after,
        heartbeat_interval=config.heartbeat_interval,
    )
    report = SagaReport(config=config)
    rng = random.Random(config.seed)
    expected: Dict[str, int] = {key: 0 for key in config.keys}
    await cluster.start()
    try:
        names = list(cluster.names)
        victim = names[-1]
        survivors = [n for n in names if n != victim]
        clients: Dict[str, LiveClient] = {}
        for name in names:
            clients[name] = await cluster.client(
                name, request_timeout=config.request_timeout
            )

        async def one_update(site, key, amount, saga=None):
            report.attempted[key] = report.attempted.get(key, 0) + 1
            try:
                frame = await clients[site].update(
                    [IncrementOp(key, amount)], saga=saga
                )
            except (
                LiveETFailed,
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                RequestTimeout,
            ):
                report.update_failures += 1
                return None
            return frame.get("tid")

        # Phase 1: background auto-committed COMPE updates everywhere.
        for _ in range(config.n_background):
            site = rng.choice(names)
            key = rng.choice(config.keys)
            amount = rng.randint(1, 5)
            if await one_update(site, key, amount) is not None:
                expected[key] += amount

        # Phase 2: the sagas.  Every step is tagged with its saga id
        # and stays undecided; effects land optimistically everywhere.
        sagas: Dict[str, List[Tuple[str, str, int]]] = {}
        outcomes: Dict[str, str] = {}
        for i in range(config.n_sagas):
            saga_id = "saga-%d" % i
            outcomes[saga_id] = (
                "abort"
                if rng.random() < config.abort_fraction
                else "commit"
            )
            members: List[Tuple[str, str, int]] = []
            for _ in range(config.steps_per_saga):
                site = rng.choice(names)
                key = rng.choice(config.keys)
                amount = rng.randint(1, 5)
                tid = await one_update(site, key, amount, saga=saga_id)
                if tid is not None:
                    members.append((tid, key, amount))
            sagas[saga_id] = members
        # Committed sagas' effects are the only saga effects that may
        # survive to the converged store.
        for saga_id, members in sagas.items():
            if outcomes[saga_id] == "commit":
                for _, key, amount in members:
                    expected[key] += amount
        # Every step must be visible at every site before deciding —
        # decisions consult the decider's own saga-membership table.
        await cluster.settle(timeout=config.settle_timeout)

        def check_decide_reply(saga_id, reply, want_outcome):
            members = {tid for tid, _, _ in sagas[saga_id]}
            decided = set(reply.get("decided", ()))
            if decided != members:
                report.anomalies.append(
                    "decide(%s, %s) decided %s, expected exactly the "
                    "member tids %s"
                    % (
                        saga_id,
                        want_outcome,
                        sorted(decided),
                        sorted(members),
                    )
                )
            if want_outcome == "abort":
                compensated = set(reply.get("compensated", ()))
                if compensated != members:
                    report.anomalies.append(
                        "abort of %s compensated %s, expected %s"
                        % (saga_id, sorted(compensated), sorted(members))
                    )
                report.steps_compensated += len(compensated)

        # Phase 3: decide roughly half the sagas, crash the victim in
        # the middle of the storm, keep deciding at a survivor.
        order = sorted(sagas)
        rng.shuffle(order)
        midpoint = len(order) // 2
        for saga_id in order[:midpoint]:
            outcome = outcomes[saga_id]
            reply = await clients[survivors[0]].decide(
                outcome, saga=saga_id
            )
            check_decide_reply(saga_id, reply, outcome)
        if config.crash:
            if config.wipe:
                await cluster.wipe(victim)
            else:
                await cluster.kill(victim)
        for saga_id in order[midpoint:]:
            outcome = outcomes[saga_id]
            reply = await clients[survivors[0]].decide(
                outcome, saga=saga_id
            )
            check_decide_reply(saga_id, reply, outcome)
        report.sagas_aborted = sum(
            1 for o in outcomes.values() if o == "abort"
        )
        report.sagas_committed = len(outcomes) - report.sagas_aborted

        # Phase 4: heal.  A wiped victim must rejoin by snapshot
        # install (its compensation log is gone — the donor's engine
        # checkpoint is the only source of its COMPE tables); a merely
        # crashed one replays decisions from its durable channels.
        if config.crash:
            await cluster.restart(victim)
            if config.wipe:
                await cluster.wait_caught_up(
                    victim, timeout=config.rejoin_timeout
                )
            await clients[victim].close()
            clients[victim] = await cluster.client(
                victim, request_timeout=config.request_timeout
            )
        await cluster.settle(timeout=config.settle_timeout)
        if config.crash:
            report.catchup_installs = cluster.servers[
                victim
            ].catchup_installs

        # Phase 5: idempotence probe.  Re-issue every abort decide —
        # at a survivor AND at the healed victim — and require that
        # nothing is decided again and no compensation counter moves.
        before = {
            name: server.engine.compensation_count
            for name, server in cluster.servers.items()
        }
        for saga_id in sorted(sagas):
            if outcomes[saga_id] != "abort":
                continue
            for site in (survivors[0], victim if config.crash else names[0]):
                reply = await clients[site].decide(
                    "abort", saga=saga_id
                )
                report.reissue_decided += len(reply.get("decided", ()))
        await cluster.settle(timeout=config.settle_timeout)
        report.reissue_compensation_delta = sum(
            abs(server.engine.compensation_count - before[name])
            for name, server in cluster.servers.items()
        )

        # Phase 6: honest typed reporting — an abort=True update must
        # surface COMPENSATED naming the undone tid (net effect zero,
        # so ``expected`` is untouched).
        probe_key = config.keys[0]
        report.attempted[probe_key] = (
            report.attempted.get(probe_key, 0) + 1
        )
        try:
            await clients[survivors[0]].update(
                [IncrementOp(probe_key, 7)], abort=True
            )
        except LiveETFailed as exc:
            report.honest_probe = (exc.code, exc.compensated_tids)
        else:
            report.honest_probe = ("", ())

        # Phase 7: exact convergence.
        await cluster.settle(timeout=config.settle_timeout)
        report.converged = await cluster.converged()
        values = await cluster.site_values()
        if values:
            any_site = next(iter(values.values()))
            report.final = {
                key: any_site.get(key, 0) for key in config.keys
            }
        report.expected = dict(expected)
        report.compensations_total = sum(
            server.engine.compensation_count
            for server in cluster.servers.values()
        )
        report.compensation_log_records_total = sum(
            server.engine.compensation_log.records_total
            for server in cluster.servers.values()
            if getattr(server.engine, "compensation_log", None) is not None
        )
        if artifacts_dir is not None:
            report.artifacts = await persist_cluster_artifacts(
                cluster, pathlib.Path(artifacts_dir)
            )
    finally:
        report.wall_seconds = time.monotonic() - started
        await cluster.stop()
    return report


def run_saga_sync(
    config: SagaConfig,
    data_dir: Optional[pathlib.Path] = None,
    artifacts_dir: Optional[pathlib.Path] = None,
) -> SagaReport:
    """Blocking wrapper for CLI / benchmark use."""
    return asyncio.run(run_saga(config, data_dir, artifacts_dir))
