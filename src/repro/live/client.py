"""Async concurrent client for live replica servers.

Mirrors the simulator's :class:`repro.client.Client` facade — issue
epsilon-transactions with an inconsistency budget, get plain values
back — but over a real socket, with request pipelining: many
coroutines can share one :class:`LiveClient`, and responses are
matched to requests by id, so concurrent ETs genuinely overlap on the
wire.

    client = await LiveClient.connect("127.0.0.1", 7000)
    await client.increment("balance", 100)          # async update
    value = await client.read("balance", epsilon=2) # bounded error
    strict = await client.read("balance", epsilon=0)  # serializable
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Sequence

from ..core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    Operation,
    WriteOp,
)
from ..core.transactions import EpsilonSpec, UNLIMITED
from .protocol import encode_ops, encode_spec, read_frame, write_frame

__all__ = ["LiveClient", "LiveETFailed"]


class LiveETFailed(RuntimeError):
    """Raised when the server reports an ET failure."""

    def __init__(self, error: str, code: str = "") -> None:
        super().__init__(error)
        self.code = code


class LiveClient:
    """A pipelined client connection to one replica server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiting: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "LiveClient":
        reader, writer = await asyncio.open_connection(host, port)
        await write_frame(writer, {"type": "client-hello"})
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                rid = frame.get("id")
                fut = self._waiting.pop(rid, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except (ConnectionError, asyncio.CancelledError, Exception):
            pass
        finally:
            for fut in self._waiting.values():
                if not fut.done():
                    fut.set_exception(
                        ConnectionError("server connection closed")
                    )
            self._waiting.clear()

    async def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; await and unwrap its response."""
        if self._closed:
            raise ConnectionError("client is closed")
        rid = next(self._ids)
        fut = asyncio.get_event_loop().create_future()
        self._waiting[rid] = fut
        async with self._write_lock:
            await write_frame(
                self._writer,
                {"type": "request", "id": rid, "verb": verb, **fields},
            )
        frame = await fut
        if not frame.get("ok"):
            raise LiveETFailed(
                frame.get("error", "ET failed"), frame.get("code", "")
            )
        return frame

    # -- updates -------------------------------------------------------------

    async def update(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
    ) -> Dict[str, Any]:
        """Submit a (possibly multi-operation) update ET."""
        fields: Dict[str, Any] = {"ops": encode_ops(list(operations))}
        if spec is not None:
            fields["spec"] = encode_spec(spec)
        return await self.request("update", **fields)

    async def write(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.update([WriteOp(key, value)])

    async def increment(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([IncrementOp(key, amount)])

    async def decrement(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([DecrementOp(key, amount)])

    async def append(self, key: str, item: Any) -> Dict[str, Any]:
        return await self.update([AppendOp(key, item)])

    # -- queries -------------------------------------------------------------

    async def query(
        self, keys: Sequence[str], spec: Optional[EpsilonSpec] = None
    ) -> Dict[str, Any]:
        """Full-fidelity query: values plus error accounting."""
        fields: Dict[str, Any] = {"keys": list(keys)}
        if spec is not None:
            fields["spec"] = encode_spec(spec)
        return await self.request("query", **fields)

    async def read(
        self,
        key: str,
        epsilon: float = UNLIMITED,
        value_epsilon: float = UNLIMITED,
    ) -> Any:
        """Read one key with the given inconsistency budget."""
        result = await self.query(
            [key],
            EpsilonSpec(import_limit=epsilon, value_limit=value_epsilon),
        )
        return result["values"][key]

    async def read_many(
        self,
        keys: Sequence[str],
        epsilon: float = UNLIMITED,
        value_epsilon: float = UNLIMITED,
    ) -> Dict[str, Any]:
        """One query ET over several keys (a consistent unit of error)."""
        result = await self.query(
            list(keys),
            EpsilonSpec(import_limit=epsilon, value_limit=value_epsilon),
        )
        return dict(result["values"])

    # -- introspection -------------------------------------------------------

    async def values(self) -> Dict[str, Any]:
        """Full store contents at the connected replica."""
        return (await self.request("values"))["values"]

    async def stats(self) -> Dict[str, Any]:
        return (await self.request("stats"))["stats"]

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
