"""Async concurrent client for live replica servers.

Mirrors the simulator's :class:`repro.client.Client` facade — issue
epsilon-transactions with an inconsistency budget, get plain values
back — but over a real socket, with request pipelining: many
coroutines can share one :class:`LiveClient`, and responses are
matched to requests by id, so concurrent ETs genuinely overlap on the
wire.

Reads take the typed consistency surface from
:mod:`repro.consistency` (the old ``epsilon=``/``value_epsilon=``
kwargs still work but emit ``DeprecationWarning``)::

    client = await LiveClient.connect("127.0.0.1", 7000)
    await client.increment("balance", 100)
    value = await client.read("balance", Consistency.BOUNDED(2))
    strict = await client.read("balance", Consistency.STRICT)
    await client.close()

Read scaling (see docs/LIVE.md "Read scaling & session guarantees"):

* ``cache=`` installs an :class:`~repro.live.read_cache.EpsilonReadCache`
  — non-strict reads are served client-side while their accumulated
  inconsistency-import estimate stays under the budget; own writes
  invalidate their keys.
* ``fan_out=True`` spreads non-strict reads across the replicas the
  client has learned from gossiped membership, weighted by
  applied-frontier lag (a lagging replica gets proportionally less
  read traffic, and is skipped entirely while its lag exceeds the
  read's budget).  Strict (``epsilon = 0``) reads always pin to the
  primary.  Per-read ``ReadOptions(prefer=...)`` overrides the policy.
* ``client.session()`` opens a :class:`LiveSession` enforcing
  read-your-writes + monotonic reads via a session token checked
  server-side; a ``SESSION_STALE`` refusal is retried at a fresher
  replica automatically.

Robustness: requests take a per-request ``timeout``; a broken
connection is redialed automatically with jittered exponential
backoff, optionally failing over across a list of replica addresses.
Idempotent verbs (``query``, ``values``, ``stats``, ``ping``) are
retried transparently after a reconnect; updates are *not* retried by
default — a timed-out update may still have committed, and blind
re-submission would double-apply it (opt in with ``retry_updates``
when the workload is tolerant, e.g. monotonic counters checked
externally).

Primary preference: after failing over, the client does not stick to
the failover replica forever — every ``primary_retry_interval``
seconds an idle moment re-probes the primary address and rehomes the
connection when it answers, so a recovered replica wins its clients
back without manual intervention (set the interval to 0 to disable).

Failover::

    client = await LiveClient.connect(
        "127.0.0.1", 7000,
        failover=[("127.0.0.1", 7001), ("127.0.0.1", 7002)],
        request_timeout=5.0,
    )
"""

from __future__ import annotations

import asyncio
import itertools
import random
from collections.abc import Mapping
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..consistency import (
    CACHED,
    Consistency,
    ReadOptions,
    SessionToken,
    resolve_read_options,
)
from ..core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    Operation,
    WriteOp,
)
from ..core.transactions import EpsilonSpec, UNLIMITED
from ..errors import ETError, SESSION_STALE
from ..obs.registry import NULL_REGISTRY, Registry
from .protocol import (
    SUPPORTED_WIRES,
    WIRE_JSON,
    ProtocolError,
    encode_ops,
    encode_spec,
    read_frame,
    write_frame,
)
from .read_cache import EpsilonReadCache

__all__ = [
    "LiveClient",
    "LiveETFailed",
    "LiveETResult",
    "LiveSession",
    "RequestTimeout",
]

#: verbs that are safe to re-issue after a reconnect.
_IDEMPOTENT_VERBS = frozenset(
    {
        "query", "values", "stats", "ping", "order", "settle",
        "metrics", "snapshot", "snapshot-fetch", "shard-info",
        # ``decide`` is safe to re-issue: the first decision a tid sees
        # is final, so a replayed decide skips already-decided tids.
        "decide",
    }
)

#: membership statuses a fan-out read may be routed to.
_ROUTABLE_STATUSES = frozenset({"alive"})


class LiveETFailed(ETError):
    """Raised when the server reports an ET failure.

    Shares :class:`repro.errors.ETError` with the simulator's
    ``ETFailed``; ``code`` carries the server's typed error code —
    ``"UNAVAILABLE"`` means the replica honestly refused an
    ``epsilon = 0`` request while partitioned from its peers (retry
    with a relaxed budget or at another replica).

    ``frame`` is the raw error response, kept because typed refusals
    can carry structured context past the message — a ``WRONG_SHARD``
    refusal ships the newest shard map under ``frame["map"]``, a
    ``SESSION_STALE`` refusal ships the replica's current frontier
    vector under ``frame["frontiers"]``, and a ``COMPENSATED`` failure
    ships the tids COMPE's backward recovery undid under
    ``frame["compensated"]`` (also available as
    :attr:`compensated_tids`).
    """

    def __init__(
        self,
        message: str,
        code: str = "",
        frame: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, code)
        self.frame: Dict[str, Any] = frame or {}

    @property
    def compensated_tids(self) -> Tuple[str, ...]:
        """Tids undone by backward recovery (COMPENSATED failures)."""
        return tuple(self.frame.get("compensated", ()))


class LiveETResult(Mapping):
    """Typed outcome of a live query ET.

    Attribute access mirrors the simulator's ``ETResult`` (``values``,
    ``inconsistency``, ``overlap``, ``waits``) plus the live-only
    fields: ``degraded``, ``staleness`` (the serving replica's — or
    cache entry's — provable lag behind the group, in update counts),
    ``served_by`` (which replica answered), ``from_cache``, and
    ``compensated`` (tids of COMPE updates whose effects were undone by
    backward recovery, when the serving backend reports them).
    ``Mapping`` access (``result["values"]``) keeps existing
    dict-style callers working unchanged; the raw per-site applied
    frontier vector stays available as the ``frontiers`` attribute.
    """

    __slots__ = (
        "values", "inconsistency", "overlap", "waits", "degraded",
        "staleness", "served_by", "from_cache", "frontiers",
        "compensated",
    )

    def __init__(self, frame: Dict[str, Any]) -> None:
        self.values: Dict[str, Any] = dict(frame.get("values", {}))
        self.inconsistency: float = frame.get("inconsistency", 0)
        self.overlap: Tuple[str, ...] = tuple(frame.get("overlap", ()))
        self.waits: int = frame.get("waits", 0)
        #: True when the serving replica suspected a peer at answer time.
        self.degraded: bool = bool(frame.get("degraded", False))
        #: provable lag of the answer behind the group, update counts.
        self.staleness: Optional[float] = frame.get("staleness")
        #: site name of the serving replica (None when unknown).
        self.served_by: Optional[str] = frame.get("served_by")
        #: True when the client cache served this read.
        self.from_cache: bool = bool(frame.get("from_cache", False))
        #: per-site applied frontier vector at serve time.
        self.frontiers: Dict[str, int] = dict(frame.get("frontiers", {}))
        #: tids undone by COMPE backward recovery (usually empty).
        self.compensated: Tuple[str, ...] = tuple(
            frame.get("compensated", ())
        )

    def _as_dict(self) -> Dict[str, Any]:
        return {
            "values": self.values,
            "inconsistency": self.inconsistency,
            "overlap": list(self.overlap),
            "waits": self.waits,
            "degraded": self.degraded,
            "staleness": self.staleness,
            "served_by": self.served_by,
            "from_cache": self.from_cache,
            "compensated": list(self.compensated),
        }

    def __getitem__(self, key: str) -> Any:
        return self._as_dict()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._as_dict())

    def __len__(self) -> int:
        return len(self._as_dict())

    def __repr__(self) -> str:
        return "LiveETResult(%r)" % (self._as_dict(),)


class RequestTimeout(ConnectionError):
    """A request exceeded its client-side deadline.  The request may
    or may not have executed at the server."""


class LiveClient:
    """A pipelined client connection to one replica server."""

    def __init__(
        self,
        addrs: Sequence[Tuple[str, int]],
        request_timeout: Optional[float] = None,
        reconnect: bool = True,
        max_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        retry_updates: bool = False,
        primary_retry_interval: float = 5.0,
        rng: Optional[random.Random] = None,
        cache: Union[EpsilonReadCache, bool, None] = None,
        fan_out: bool = False,
        fan_out_refresh: float = 1.0,
        session_retry_wait: float = 5.0,
        registry: Optional[Registry] = None,
        wire: str = "bin1",
    ) -> None:
        if not addrs:
            raise ValueError("LiveClient needs at least one address")
        if wire != WIRE_JSON and wire not in SUPPORTED_WIRES:
            raise ValueError("unknown wire codec %r" % wire)
        #: advertise binary wire support on hellos (``wire="json"``
        #: disables the advert, pinning the connection to JSON).
        self._wire_advert = wire != WIRE_JSON
        #: codec the server accepted for this connection; informational
        #: for clients (request/response frames are always JSON — the
        #: binary codec covers the replication stream).
        self.wire = WIRE_JSON
        self._addrs: List[Tuple[str, int]] = [
            (host, int(port)) for host, port in addrs
        ]
        self._request_timeout = request_timeout
        self._reconnect = reconnect
        self._max_attempts = max(1, max_attempts)
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._retry_updates = retry_updates
        #: seconds between probes of the primary address while failed
        #: over to a secondary (0 disables rehoming).
        self._primary_retry_interval = max(0.0, primary_retry_interval)
        self._rng = rng if rng is not None else random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._waiting: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._dial_lock = asyncio.Lock()
        self._closed = False
        self._reader_task: Optional[asyncio.Task] = None
        #: observability: completed redials since construction.
        self.reconnects = 0
        #: index into the address list of the live connection (0 is
        #: the primary).
        self._active_index = 0
        self._last_primary_probe = 0.0
        #: observability: times the client moved back to the primary.
        self.rehomes = 0
        #: observability: failover-list refreshes from gossiped
        #: membership (stats replies carry the table).
        self.membership_refreshes = 0

        # -- read scaling -----------------------------------------------------
        self.registry = registry if registry is not None else NULL_REGISTRY
        if cache is True:
            cache = EpsilonReadCache(registry=self.registry)
        self.cache: Optional[EpsilonReadCache] = (
            cache if isinstance(cache, EpsilonReadCache) else None
        )
        #: spread non-strict reads across gossip-discovered replicas.
        self._fan_out = bool(fan_out)
        #: seconds between membership refreshes while fanning out.
        self._fan_out_refresh = max(0.0, fan_out_refresh)
        #: how long SESSION_STALE refusals are retried (at fresher
        #: replicas, then waiting out propagation) before surfacing.
        self._session_retry_wait = max(0.0, session_retry_wait)
        #: site name -> {"addr", "applied", "frontier", "status"},
        #: learned from gossiped membership on stats replies.
        self._replicas: Dict[str, Dict[str, Any]] = {}
        self._last_replica_refresh = 0.0
        #: per-address secondary connections used by read fan-out.
        self._pool: Dict[Tuple[str, int], LiveClient] = {}
        #: everything the client has *proved* exists: the max applied
        #: frontier vector over all responses received so far (the
        #: evidence base for cache import estimates).
        self.known_frontiers: Dict[str, int] = {}
        #: observability: reads that hit a SESSION_STALE refusal.
        self.session_stale_retries = 0
        self.m_reads_by_replica = self.registry.counter(
            "reads_by_replica_total",
            "query ETs issued by this client, by serving replica",
            labels=("replica",),
        )
        self.m_session_stale = self.registry.counter(
            "session_stale_total",
            "SESSION_STALE refusals this client retried",
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        failover: Sequence[Tuple[str, int]] = (),
        **options: Any,
    ) -> "LiveClient":
        """Dial the primary address (``failover`` addresses are used
        when redialing after a connection failure)."""
        client = cls([(host, port)] + list(failover), **options)
        await client._ensure_connected()
        return client

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    # -- connection management -----------------------------------------------

    async def _ensure_connected(self) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        if self.connected:
            await self._maybe_rehome()
            return
        async with self._dial_lock:
            if self._closed:
                raise ConnectionError("client is closed")
            if self.connected:
                return
            await self._dial()

    async def _maybe_rehome(self) -> None:
        """While failed over, periodically probe the primary address
        and move the connection back when it answers.

        The swap happens under the write lock and only while no
        responses are outstanding, so no in-flight request can be
        failed by it — at worst the probe is skipped and retried on a
        later idle moment.
        """
        if (
            self._active_index == 0
            or not self._primary_retry_interval
            or len(self._addrs) < 2
        ):
            return
        now = asyncio.get_event_loop().time()
        if now - self._last_primary_probe < self._primary_retry_interval:
            return
        self._last_primary_probe = now
        host, port = self._addrs[0]
        try:
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(writer, self._hello_frame())
        except (OSError, ConnectionError):
            return  # primary still down: stay failed over
        async with self._write_lock:
            if self._waiting or not self.connected or self._closed:
                writer.close()  # a bad moment to swap; try again later
                return
            self._teardown_connection()
            self.wire = WIRE_JSON
            self._reader = reader
            self._writer = writer
            self._active_index = 0
            self._reader_task = asyncio.ensure_future(
                self._read_loop(reader)
            )
            self.rehomes += 1

    async def _dial(self) -> None:
        """Try each address with jittered exponential backoff."""
        redial = self._reader_task is not None
        self._teardown_connection()
        last_error: Optional[BaseException] = None
        for attempt in range(self._max_attempts):
            for index, (host, port) in enumerate(self._addrs):
                if self._closed:
                    raise ConnectionError("client is closed")
                try:
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                except (OSError, ConnectionError) as exc:
                    last_error = exc
                    continue
                self.wire = WIRE_JSON
                await write_frame(writer, self._hello_frame())
                self._reader = reader
                self._writer = writer
                self._active_index = index
                self._reader_task = asyncio.ensure_future(
                    self._read_loop(reader)
                )
                if redial:
                    self.reconnects += 1
                return
            if attempt < self._max_attempts - 1:
                await asyncio.sleep(self._backoff(attempt))
        raise ConnectionError(
            "could not reach any of %r: %s" % (self._addrs, last_error)
        )

    def _hello_frame(self) -> Dict[str, Any]:
        hello: Dict[str, Any] = {"type": "client-hello"}
        if self._wire_advert:
            hello["wire"] = list(SUPPORTED_WIRES)
        return hello

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter (decorrelates a herd
        of clients redialing a recovering replica)."""
        ceiling = min(
            self._backoff_base * (2 ** attempt), self._backoff_max
        )
        return self._rng.uniform(0, ceiling)

    def _teardown_connection(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None
        self._fail_waiting(ConnectionError("connection lost"))

    def _fail_waiting(self, error: Exception) -> None:
        for fut in self._waiting.values():
            if not fut.done():
                fut.set_exception(error)
        self._waiting.clear()

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame.get("type") == "hello-ack":
                    wire = frame.get("wire")
                    if wire in SUPPORTED_WIRES:
                        self.wire = wire
                    continue
                rid = frame.get("id")
                fut = self._waiting.pop(rid, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            return  # close()/redial cancelled us; they handle cleanup
        except (ConnectionError, OSError, ProtocolError):
            pass  # the connection died; fail the waiters below
        finally:
            if self._reader is reader:
                # Mark the connection dead so the next request redials
                # instead of writing into a half-closed socket.
                self._reader = None
                if self._writer is not None:
                    self._writer.close()
                    self._writer = None
                self._fail_waiting(
                    ConnectionError("server connection closed")
                )

    # -- requests ------------------------------------------------------------

    async def request(
        self,
        verb: str,
        timeout: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Send one request; await and unwrap its response.

        ``timeout`` (or the client-wide ``request_timeout``) bounds the
        whole round trip.  Connection failures are retried with
        reconnect/failover for idempotent verbs; updates surface the
        error to the caller unless ``retry_updates`` was set.
        """
        if timeout is None:
            timeout = self._request_timeout
        retryable = self._reconnect and (
            verb in _IDEMPOTENT_VERBS or self._retry_updates
        )
        attempts = self._max_attempts if retryable else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(self._backoff(attempt - 1))
            try:
                return await self._request_once(verb, timeout, fields)
            except RequestTimeout:
                raise  # the deadline is global, never re-spent
            except (ConnectionError, OSError) as exc:
                last_error = exc
                continue
        assert last_error is not None
        raise last_error

    async def _request_once(
        self,
        verb: str,
        timeout: Optional[float],
        fields: Dict[str, Any],
    ) -> Dict[str, Any]:
        if self._closed:
            raise ConnectionError("client is closed")
        if self._reconnect:
            await self._ensure_connected()
        elif not self.connected:
            raise ConnectionError("client is not connected")
        rid = next(self._ids)
        fut: asyncio.Future = asyncio.get_event_loop().create_future()
        self._waiting[rid] = fut
        try:
            async with self._write_lock:
                await write_frame(
                    self._writer,
                    {"type": "request", "id": rid, "verb": verb, **fields},
                )
        except (ConnectionError, OSError):
            # The send never made it out: drop the orphan future so it
            # cannot leak (and cannot be resolved by a later response
            # reusing the id after a reconnect).
            self._waiting.pop(rid, None)
            raise
        try:
            if timeout is not None:
                frame = await asyncio.wait_for(fut, timeout=timeout)
            else:
                frame = await fut
        except asyncio.TimeoutError:
            self._waiting.pop(rid, None)
            raise RequestTimeout(
                "%s request exceeded %.3fs" % (verb, timeout)
            ) from None
        if not frame.get("ok"):
            raise LiveETFailed(
                frame.get("error", "ET failed"),
                frame.get("code", ""),
                frame,
            )
        return frame

    # -- updates -------------------------------------------------------------

    async def update(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        timeout: Optional[float] = None,
        saga: Optional[str] = None,
        abort: bool = False,
    ) -> Dict[str, Any]:
        """Submit a (possibly multi-operation) update ET.

        COMPE only: ``saga`` tags the update as a step of a named saga
        — it applies optimistically but stays *undecided* until
        :meth:`decide` commits or aborts the saga.  ``abort=True``
        applies the update and immediately compensates it (the
        validation-failure path), raising a ``COMPENSATED``
        :class:`LiveETFailed`.
        """
        operations = list(operations)
        fields: Dict[str, Any] = {"ops": encode_ops(operations)}
        if spec is not None:
            fields["spec"] = encode_spec(spec)
        if saga is not None:
            fields["saga"] = saga
        if abort:
            fields["abort"] = True
        frame = await self.request("update", timeout=timeout, **fields)
        # A committed write is evidence its origin's frontier reached
        # the tid's sequence — fold it into what the cache accounting
        # knows, and drop any cached copy of the written keys so the
        # client reads its own writes even through the cache.
        tid = frame.get("tid")
        if isinstance(tid, str):
            site, sep, seq = tid.rpartition(":")
            if sep and seq.isdigit():
                self._merge_known({site: int(seq)})
        if self.cache is not None:
            self.cache.invalidate(op.key for op in operations)
        return frame

    async def write(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.update([WriteOp(key, value)])

    async def increment(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([IncrementOp(key, amount)])

    async def decrement(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([DecrementOp(key, amount)])

    async def append(self, key: str, item: Any) -> Dict[str, Any]:
        return await self.update([AppendOp(key, item)])

    async def decide(
        self,
        outcome: str,
        saga: Optional[str] = None,
        tids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Decide a COMPE saga (or explicit tids) ``"commit"``/``"abort"``.

        Aborting runs backward recovery: the named steps' durable
        compensations apply in reverse submission order.  The reply
        carries ``decided`` (tids decided now), ``skipped`` (tids
        already decided — retries are idempotent) and, on abort,
        ``compensated``.
        """
        fields: Dict[str, Any] = {"outcome": outcome}
        if saga is not None:
            fields["saga"] = saga
        if tids is not None:
            fields["tids"] = list(tids)
        frame = await self.request("decide", timeout=timeout, **fields)
        if self.cache is not None and frame.get("compensated"):
            # Compensated writes changed the store again; cached copies
            # of any key are suspect only for the undone keys, which
            # the reply does not enumerate — drop conservatively.
            self.cache.clear()
        return frame

    # -- queries -------------------------------------------------------------

    async def query(
        self,
        keys: Sequence[str],
        spec: Union[EpsilonSpec, ReadOptions, Consistency, None] = None,
        timeout: Optional[float] = None,
    ) -> LiveETResult:
        """Full-fidelity query: values plus error accounting, as a
        typed :class:`LiveETResult` (dict-style access still works).

        ``spec`` accepts the typed surface (:class:`ReadOptions` or a
        :class:`Consistency` level) or a raw :class:`EpsilonSpec`.
        """
        espec, opts = self._query_plan(spec, timeout)
        return await self._query(list(keys), espec, opts)

    def _query_plan(
        self,
        spec: Union[EpsilonSpec, ReadOptions, Consistency, None],
        timeout: Optional[float],
    ) -> Tuple[EpsilonSpec, ReadOptions]:
        if isinstance(spec, (ReadOptions, Consistency)):
            opts = resolve_read_options(spec, timeout=timeout, caller="query")
            return opts.spec(), opts
        espec = spec if spec is not None else EpsilonSpec()
        return espec, ReadOptions(
            consistency=Consistency(
                epsilon=espec.import_limit, value_epsilon=espec.value_limit
            ),
            timeout=timeout,
        )

    async def read(
        self,
        key: str,
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Read one key at the given consistency.

        ``options`` is a :class:`ReadOptions` or :class:`Consistency`;
        the bare ``epsilon``/``value_epsilon`` kwargs (and a bare
        number as ``options``) are the deprecated spelling.
        """
        opts = resolve_read_options(
            options,
            epsilon=epsilon,
            value_epsilon=value_epsilon,
            timeout=timeout,
            caller="read",
        )
        result = await self._query([key], opts.spec(), opts)
        return result.values[key]

    async def read_many(
        self,
        keys: Sequence[str],
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One query ET over several keys (a consistent unit of error)."""
        opts = resolve_read_options(
            options,
            epsilon=epsilon,
            value_epsilon=value_epsilon,
            timeout=timeout,
            caller="read_many",
        )
        result = await self._query(list(keys), opts.spec(), opts)
        return dict(result.values)

    def session(self, token: Optional[SessionToken] = None) -> "LiveSession":
        """Open a session enforcing read-your-writes + monotonic reads.

        Usable as an async context manager::

            async with client.session() as s:
                await s.increment("balance", 10)
                value = await s.read("balance")   # sees the increment
                handoff = s.token.encode()        # cross-process token
        """
        return LiveSession(self, token)

    # -- read path (cache, fan-out, session) ---------------------------------

    def _merge_known(self, frontiers: Optional[Mapping]) -> None:
        if not frontiers:
            return
        known = self.known_frontiers
        for site, seq in frontiers.items():
            try:
                seq = int(seq)
            except (TypeError, ValueError):
                continue
            if seq > known.get(site, 0):
                known[site] = seq

    async def _query(
        self,
        keys: List[str],
        espec: EpsilonSpec,
        opts: ReadOptions,
    ) -> LiveETResult:
        token = opts.session
        strict = espec.is_strict
        if not strict:
            hit = self._cache_lookup(keys, espec, opts)
            if hit is not None:
                return hit
        frame = await self._issue_query(keys, espec, opts)
        self._merge_known(frame.get("frontiers"))
        if token is not None:
            token.merge(frame.get("frontiers"))
        served = frame.get("served_by")
        self.m_reads_by_replica.labels(replica=served or "unknown").inc()
        if self.cache is not None:
            now = asyncio.get_event_loop().time()
            for key in keys:
                if key in frame.get("values", {}):
                    self.cache.store(
                        key,
                        frame["values"][key],
                        frame.get("inconsistency", 0),
                        frame.get("frontiers"),
                        now,
                        served,
                    )
        return LiveETResult(frame)

    def _cache_lookup(
        self, keys: List[str], espec: EpsilonSpec, opts: ReadOptions
    ) -> Optional[LiveETResult]:
        """Serve the whole query from the cache, or None to fetch.

        Multi-key queries split the budget evenly across keys, so the
        summed per-key estimates can never exceed the query's budget.
        """
        if self.cache is None:
            return None
        ttl_only = opts.consistency.level == CACHED
        budget = espec.import_limit
        if budget != UNLIMITED and len(keys) > 1:
            budget = budget / len(keys)
        now = asyncio.get_event_loop().time()
        values: Dict[str, Any] = {}
        estimate = 0.0
        served: set = set()
        for key in keys:
            hit = self.cache.lookup(
                key,
                budget=budget,
                known_frontiers=self.known_frontiers,
                now=now,
                token=opts.session,
                ttl_only=ttl_only,
            )
            if hit is None:
                return None
            values[key] = hit.value
            estimate += hit.estimate
            served.add(hit.served_by)
            if opts.session is not None:
                opts.session.merge(hit.frontiers)
        self.m_reads_by_replica.labels(replica="cache").inc()
        return LiveETResult(
            {
                "values": values,
                "inconsistency": estimate,
                "overlap": [],
                "waits": 0,
                "degraded": False,
                "staleness": estimate,
                "served_by": served.pop() if len(served) == 1 else None,
                "from_cache": True,
            }
        )

    async def _issue_query(
        self, keys: List[str], espec: EpsilonSpec, opts: ReadOptions
    ) -> Dict[str, Any]:
        """Send the query to the chosen replica, retrying typed
        ``SESSION_STALE`` refusals at fresher replicas."""
        fields: Dict[str, Any] = {
            "keys": keys, "spec": encode_spec(espec),
        }
        token = opts.session
        if token is not None and token.frontiers:
            fields["session"] = dict(token.frontiers)
        timeout = opts.timeout
        strict = espec.is_strict
        client = await self._route(keys, espec, opts)
        loop = asyncio.get_event_loop()
        deadline = loop.time() + (
            timeout if timeout is not None else self._session_retry_wait
        )
        tried: set = set()
        while True:
            try:
                return await client.request("query", timeout=timeout, **fields)
            except LiveETFailed as exc:
                if exc.code != SESSION_STALE:
                    raise
                self.session_stale_retries += 1
                self.m_session_stale.inc()
                self._merge_known(exc.frame.get("frontiers"))
                tried.add(self._client_addr(client))
                client = await self._fresher_client(token, tried)
                if client is None:
                    if loop.time() >= deadline:
                        raise
                    # Every known replica refused: the token is ahead
                    # of the whole group's propagation (e.g. mid
                    # failover).  Wait it out at the primary.
                    await asyncio.sleep(0.05)
                    tried.clear()
                    client = self
            except (ConnectionError, OSError):
                if client is self:
                    raise
                # A fanned-out secondary died; the read is idempotent,
                # so fall back to the primary connection.
                tried.add(self._client_addr(client))
                client = self

    def _client_addr(self, client: "LiveClient") -> Tuple[str, int]:
        return client._addrs[client._active_index]

    async def _fresher_client(
        self, token: Optional[SessionToken], tried: set
    ) -> Optional["LiveClient"]:
        """The untried replica most likely to satisfy the token:
        highest gossiped applied count first, primary included."""
        candidates: List[Tuple[int, Tuple[str, int]]] = []
        primary = self._addrs[0]
        if primary not in tried and self._client_addr(self) != primary:
            candidates.append((1 << 60, primary))
        if self._client_addr(self) not in tried:
            candidates.append((1 << 60, self._client_addr(self)))
        for info in self._replicas.values():
            addr = info.get("addr")
            if not addr or addr in tried:
                continue
            if info.get("status") not in _ROUTABLE_STATUSES:
                continue
            candidates.append((int(info.get("applied", 0)), tuple(addr)))
        candidates.sort(key=lambda item: -item[0])
        for _, addr in candidates:
            try:
                return await self._pool_client(addr)
            except (ConnectionError, OSError):
                tried.add(addr)
        return None

    async def _route(
        self, keys: List[str], espec: EpsilonSpec, opts: ReadOptions
    ) -> "LiveClient":
        """Pick the connection a read goes out on.

        Strict reads and ``prefer="primary"`` pin to the main
        connection (primary + failover).  Otherwise, with fan-out on
        (client-wide flag, or ``prefer="any"`` per read) the read is
        spread across the gossip-learned replicas, weighted by
        applied-frontier lag; replicas lagging by more than the read's
        budget are skipped while a within-budget candidate exists.  A
        site name in ``prefer`` targets that replica directly.
        """
        prefer = opts.prefer
        strict = espec.is_strict
        if strict or prefer == "primary":
            return self
        if prefer not in (None, "auto", "any"):
            info = self._replicas.get(prefer)
            if info and info.get("addr"):
                try:
                    return await self._pool_client(tuple(info["addr"]))
                except (ConnectionError, OSError):
                    return self
            return self
        if not (self._fan_out or prefer == "any"):
            return self
        await self._refresh_replicas()
        candidates: List[Tuple[Tuple[str, int], float]] = []
        best_applied = 0
        infos = [
            info
            for info in self._replicas.values()
            if info.get("addr") and info.get("status") in _ROUTABLE_STATUSES
        ]
        for info in infos:
            best_applied = max(best_applied, int(info.get("applied", 0)))
        # Weight by applied-frontier lag *relative to total progress*.
        # Gossiped applied counts are delayed estimates, so absolute
        # lag is dominated by gossip staleness under write load; the
        # lag fraction separates a genuinely wedged replica (fraction
        # near 1 -> strongly derated) from one merely a gossip round
        # behind (fraction near 0 -> full weight).  The epsilon budget
        # itself is enforced server-side on every read regardless of
        # where it lands.
        for info in infos:
            lag = best_applied - int(info.get("applied", 0))
            fraction = lag / max(best_applied, 1)
            candidates.append(
                (tuple(info["addr"]), 1.0 / (1.0 + 10.0 * fraction))
            )
        if not candidates:
            return self
        addrs = [addr for addr, _ in candidates]
        weights = [weight for _, weight in candidates]
        choice = self._rng.choices(addrs, weights=weights, k=1)[0]
        if choice == self._client_addr(self):
            return self
        try:
            return await self._pool_client(choice)
        except (ConnectionError, OSError):
            return self

    async def _refresh_replicas(self) -> None:
        """Keep the fan-out view of the group reasonably fresh by
        piggybacking on the ``stats`` verb (which carries gossiped
        membership) at most every ``fan_out_refresh`` seconds."""
        now = asyncio.get_event_loop().time()
        if (
            self._replicas
            and now - self._last_replica_refresh < self._fan_out_refresh
        ):
            return
        self._last_replica_refresh = now
        try:
            await self.stats()
        except (ETError, ConnectionError, OSError):
            pass  # keep the stale view; reads still have the primary

    async def _pool_client(self, addr: Tuple[str, int]) -> "LiveClient":
        """A dedicated (cached) connection to one fan-out replica."""
        if addr == self._addrs[self._active_index]:
            return self
        client = self._pool.get(addr)
        if client is not None and not client._closed:
            return client
        client = LiveClient(
            [addr],
            request_timeout=self._request_timeout,
            reconnect=True,
            max_attempts=2,
            backoff_base=self._backoff_base,
            backoff_max=self._backoff_max,
            rng=self._rng,
        )
        await client._ensure_connected()
        # Two reads may race to dial the same replica; keep one
        # connection and close the loser, or its reader task leaks.
        existing = self._pool.get(addr)
        if existing is not None and not existing._closed:
            await client.close()
            return existing
        self._pool[addr] = client
        return client

    # -- convenience ---------------------------------------------------------

    async def settle(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Block until the connected replica has drained: outbound
        channels empty, engine quiescent, every local update fully
        acknowledged.  Server-side condition wait — no stats polling.
        """
        return await self.request(
            "settle", timeout=timeout + 5.0, wait=timeout
        )

    # -- introspection -------------------------------------------------------

    async def values(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Full store contents at the connected replica."""
        return (await self.request("values", timeout=timeout))["values"]

    async def stats(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        stats = (await self.request("stats", timeout=timeout))["stats"]
        self._learn_membership(stats.get("membership"))
        self._merge_known(
            {
                (stats["site"] if src == "_local" else src): frontier
                for src, frontier in stats.get("inbox_frontier", {}).items()
            }
            if isinstance(stats.get("inbox_frontier"), dict)
            and stats.get("site")
            else None
        )
        return stats

    def _learn_membership(self, records: Any) -> None:
        """Refresh the failover address list — and the fan-out routing
        view — from a gossiped membership block (carried on ``stats``
        replies).

        The primary and currently active addresses are preserved in
        place; every other live member address replaces the static
        constructor tail, so failover targets stay current through
        joins, leaves, and address moves."""
        if not isinstance(records, list):
            return
        learned: List[Tuple[str, int]] = []
        for rec in records:
            if not isinstance(rec, dict):
                continue
            name = rec.get("name")
            host, port = rec.get("host"), rec.get("port")
            if name:
                self._replicas[str(name)] = {
                    "addr": (str(host), int(port)) if host and port else None,
                    "applied": int(rec.get("applied", 0)),
                    "frontier": int(rec.get("frontier", 0)),
                    "status": rec.get("status", "alive"),
                }
            if rec.get("status") in ("dead", "left"):
                continue
            if host and port:
                learned.append((str(host), int(port)))
        if not learned:
            return
        keep = [self._addrs[0]]
        if self._active_index < len(self._addrs):
            active = self._addrs[self._active_index]
            if active not in keep:
                keep.append(active)
        fresh = keep + [addr for addr in learned if addr not in keep]
        if fresh != self._addrs:
            active = self._addrs[self._active_index]
            self._addrs = fresh
            self._active_index = fresh.index(active)
            self.membership_refreshes += 1

    async def refresh_membership(
        self, timeout: Optional[float] = None
    ) -> List[Tuple[str, int]]:
        """Explicitly re-learn replica addresses from the server's
        gossiped membership table; returns the refreshed list."""
        await self.stats(timeout=timeout)
        return list(self._addrs)

    async def metrics(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Scrape the replica's metrics registry.

        Returns a dict with ``prometheus`` (exposition text), ``metrics``
        (the same samples as JSON), and the trace buffer's
        ``trace_recorded``/``trace_dropped`` tallies.
        """
        frame = await self.request("metrics", timeout=timeout)
        return {
            "site": frame.get("site"),
            "prometheus": frame.get("prometheus", ""),
            "metrics": frame.get("metrics", {}),
            "trace_recorded": frame.get("trace_recorded", 0),
            "trace_dropped": frame.get("trace_dropped", 0),
        }

    async def ping(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self.request("ping", timeout=timeout)

    async def snapshot(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Ask the replica to persist a snapshot and compact its logs
        now; returns ``{"bytes", "frontiers", "compacted"}``."""
        frame = await self.request("snapshot", timeout=timeout)
        return frame["snapshot"]

    async def close(self) -> None:
        self._closed = True
        pool = list(self._pool.values())
        self._pool.clear()
        for client in pool:
            await client.close()
        task = self._reader_task
        self._reader_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._fail_waiting(ConnectionError("client closed"))
        writer = self._writer
        self._writer = None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class LiveSession:
    """Read-your-writes + monotonic-reads session over a LiveClient.

    Every update advances the session token past its committed tid;
    every read attaches the token (checked server-side) and folds the
    reply's frontier vector back in.  The token is portable:
    ``session.token.encode()`` hands the session off to another
    process, which resumes it with
    ``client.session(SessionToken.decode(text))``.
    """

    def __init__(
        self, client: LiveClient, token: Optional[SessionToken] = None
    ) -> None:
        self._client = client
        self.token = token if token is not None else SessionToken()

    async def __aenter__(self) -> "LiveSession":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        return None

    def _opts(
        self,
        options: Union[ReadOptions, Consistency, float, None],
        epsilon: Optional[float],
        value_epsilon: Optional[float],
        timeout: Optional[float],
        caller: str,
    ) -> ReadOptions:
        opts = resolve_read_options(
            options,
            epsilon=epsilon,
            value_epsilon=value_epsilon,
            timeout=timeout,
            caller=caller,
        )
        return ReadOptions(
            consistency=opts.consistency,
            session=self.token,
            prefer=opts.prefer,
            timeout=opts.timeout,
        )

    # -- reads ---------------------------------------------------------------

    async def read(
        self,
        key: str,
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        opts = self._opts(options, epsilon, value_epsilon, timeout, "read")
        result = await self._client._query([key], opts.spec(), opts)
        return result.values[key]

    async def read_many(
        self,
        keys: Sequence[str],
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        opts = self._opts(
            options, epsilon, value_epsilon, timeout, "read_many"
        )
        result = await self._client._query(list(keys), opts.spec(), opts)
        return dict(result.values)

    async def query(
        self,
        keys: Sequence[str],
        spec: Union[EpsilonSpec, ReadOptions, Consistency, None] = None,
        timeout: Optional[float] = None,
    ) -> LiveETResult:
        espec, opts = self._client._query_plan(spec, timeout)
        opts = ReadOptions(
            consistency=opts.consistency,
            session=self.token,
            prefer=opts.prefer,
            timeout=opts.timeout,
        )
        return await self._client._query(list(keys), espec, opts)

    # -- writes --------------------------------------------------------------

    async def update(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        timeout: Optional[float] = None,
        saga: Optional[str] = None,
        abort: bool = False,
    ) -> Dict[str, Any]:
        frame = await self._client.update(
            operations, spec, timeout, saga=saga, abort=abort
        )
        tid = frame.get("tid")
        if isinstance(tid, str):
            self.token.observe_write(tid)
        return frame

    async def write(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.update([WriteOp(key, value)])

    async def increment(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([IncrementOp(key, amount)])

    async def decrement(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([DecrementOp(key, amount)])

    async def append(self, key: str, item: Any) -> Dict[str, Any]:
        return await self.update([AppendOp(key, item)])
